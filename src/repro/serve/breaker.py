"""Per-shard circuit breakers for the fleet service.

The *node-level* breaker inside :class:`~repro.core.online.OnlineEstimator`
guards against one node's flapping counters.  :class:`ShardBreaker`
guards a different failure surface: the shard *operation* itself —
stepping a shard's sub-batch, writing or restoring its snapshot.  When
a shard keeps failing operationally, its breaker opens and the service
answers that shard's nodes from the stateless baseline instead of
retrying into the same fault, then probes again (half-open) after a
cooldown.  One bad shard never takes the fleet down.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["ShardBreaker", "BREAKER_STATES"]

BREAKER_STATES: Tuple[str, ...] = ("closed", "open", "half-open")


class ShardBreaker:
    """Consecutive-failure breaker with tick-based cooldown.

    ``closed`` — operations run normally.  ``open`` — operations are
    refused (``allow()`` is False) until ``cooldown_ticks`` service
    ticks pass.  ``half-open`` — exactly one probe operation is
    allowed; success closes the breaker, failure re-opens it for a
    fresh cooldown.
    """

    def __init__(
        self, *, threshold: int = 3, cooldown_ticks: int = 5
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if cooldown_ticks < 1:
            raise ValueError("cooldown_ticks must be at least 1")
        self.threshold = int(threshold)
        self.cooldown_ticks = int(cooldown_ticks)
        self._state = "closed"
        self._consecutive_failures = 0
        self._cooldown_left = 0
        self._trips = 0
        self._refused = 0

    @property
    def state(self) -> str:
        return self._state

    @property
    def trips(self) -> int:
        return self._trips

    @property
    def refused(self) -> int:
        """Operations refused while open (served stateless baseline)."""
        return self._refused

    def tick(self) -> None:
        """Advance the service clock; an open breaker cools toward
        half-open."""
        if self._state == "open":
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self._state = "half-open"

    def allow(self) -> bool:
        """May the next shard operation run?  (Counts refusals.)"""
        if self._state == "open":
            self._refused += 1
            return False
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self._state == "half-open":
            self._state = "closed"

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._state == "half-open" or (
            self._state == "closed"
            and self._consecutive_failures >= self.threshold
        ):
            self._state = "open"
            self._cooldown_left = self.cooldown_ticks
            self._trips += 1
