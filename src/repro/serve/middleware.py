"""Ingestion middleware: validate and audit samples before they queue.

The service's first line of defense.  Malformed submissions (wrong
type, missing fields, empty node id, non-finite context *types*,
NaN/infinite timestamps) are dropped **and counted** here — they never
reach the estimator.  Degraded-but-well-formed samples (NaN deltas,
non-positive voltage, backwards timestamps) pass through untouched:
judging *values* is the estimator's job, and it must see them so the
fleet path stays bit-identical to the serial
:meth:`~repro.core.online.OnlineEstimator.step` contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.serve.api import NodeSample

__all__ = ["SchemaValidator", "DuplicateAuditor"]


@dataclass
class SchemaValidator:
    """Drop structurally-invalid submissions, tallying why.

    ``validate`` returns the surviving samples; ``dropped`` maps a
    reason to how many submissions it rejected.  Dropping is always
    observable — a silent filter would make overload and fault rates
    unmeasurable downstream.
    """

    dropped: Dict[str, int] = field(default_factory=dict)

    def _drop(self, reason: str) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + 1

    @property
    def n_dropped(self) -> int:
        return sum(self.dropped.values())

    def validate(self, submissions: Sequence[object]) -> List[NodeSample]:
        out: List[NodeSample] = []
        for sub in submissions:
            if not isinstance(sub, NodeSample):
                self._drop("not-a-sample")
                continue
            if not isinstance(sub.node_id, str) or not sub.node_id:
                self._drop("bad-node-id")
                continue
            if not isinstance(sub.counter_deltas, dict):
                self._drop("bad-deltas")
                continue
            try:
                float(sub.interval_s)
                float(sub.voltage_v)
                float(sub.frequency_mhz)
            except (TypeError, ValueError):
                self._drop("non-numeric-context")
                continue
            if sub.time_s is not None:
                try:
                    t = float(sub.time_s)
                except (TypeError, ValueError):
                    self._drop("bad-timestamp")
                    continue
                if not np.isfinite(t):
                    self._drop("bad-timestamp")
                    continue
            out.append(sub)
        return out


@dataclass
class DuplicateAuditor:
    """Count duplicate node ids per submission batch (never drops).

    Duplicates are *legal* — a node may report twice in one window and
    the estimator processes both in arrival order — but a high rate is
    an ingestion-pipeline smell worth surfacing in the fleet report.
    """

    n_rows: int = 0
    n_duplicates: int = 0

    def observe(self, samples: Sequence[NodeSample]) -> None:
        seen = set()
        for sample in samples:
            self.n_rows += 1
            if sample.node_id in seen:
                self.n_duplicates += 1
            seen.add(sample.node_id)

    @property
    def duplicate_fraction(self) -> float:
        return self.n_duplicates / self.n_rows if self.n_rows else 0.0

    def counts(self) -> Tuple[int, int]:
        return self.n_rows, self.n_duplicates
