"""Fleet-wide observability: per-shard and fleet roll-up reports.

Everything the service decided — node health, quarantines, breaker
states, queue backpressure, dropped submissions — lands in one
:class:`FleetReport` so degradation is *graded* (by audit rule AU013)
instead of silently absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.report import render_counts
from repro.serve.queue import QueueStats

__all__ = ["ShardReport", "FleetReport"]


@dataclass(frozen=True)
class ShardReport:
    """Health of one state shard's nodes plus its operation breaker."""

    shard: int
    n_nodes: int
    healthy: int
    degraded: int
    """Nodes with an open node-level breaker or a latched drift detector
    (not counting quarantined ones)."""
    quarantined: int
    breaker_state: str
    breaker_trips: int
    refused_operations: int

    @property
    def healthy_fraction(self) -> float:
        return self.healthy / self.n_nodes if self.n_nodes else 1.0


@dataclass(frozen=True)
class FleetReport:
    """One service's roll-up across every shard."""

    n_nodes: int
    healthy_nodes: int
    degraded_nodes: int
    quarantined_nodes: int
    stateless_served: int
    """Samples answered by the stateless baseline (diverted overflow or
    an open shard breaker) without touching estimator state."""
    dropped_malformed: int
    duplicate_rows: int
    queue: QueueStats
    shards: Tuple[ShardReport, ...] = ()
    ticks: int = 0
    snapshot_writes: int = 0

    @property
    def degraded_fraction(self) -> float:
        """Share of nodes quarantined or degraded — what AU013 grades."""
        if self.n_nodes == 0:
            return 0.0
        return (self.degraded_nodes + self.quarantined_nodes) / self.n_nodes

    @property
    def healthy_fraction(self) -> float:
        return self.healthy_nodes / self.n_nodes if self.n_nodes else 1.0

    def summary(self) -> str:
        counts = render_counts(
            {
                "nodes": self.n_nodes,
                "healthy": self.healthy_nodes,
                "degraded": self.degraded_nodes,
                "quarantined": self.quarantined_nodes,
                "stateless_served": self.stateless_served,
                "dropped_malformed": self.dropped_malformed,
                "duplicate_rows": self.duplicate_rows,
                "queue_shed": self.queue.shed,
                "queue_rejected": self.queue.rejected,
                "queue_diverted": self.queue.diverted,
                "snapshot_writes": self.snapshot_writes,
            },
            title=f"fleet service ({self.ticks} ticks)",
        )
        lines = [counts]
        open_shards = [
            s for s in self.shards if s.breaker_state != "closed"
        ]
        for shard in open_shards:
            lines.append(
                f"shard {shard.shard}: breaker {shard.breaker_state} "
                f"({shard.breaker_trips} trips, "
                f"{shard.refused_operations} refused)"
            )
        if self.n_nodes:
            lines.append(
                f"degraded fraction {self.degraded_fraction:.1%} "
                f"(healthy {self.healthy_fraction:.1%})"
            )
        return "\n".join(lines)
