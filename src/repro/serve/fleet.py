"""Vectorized fleet-wide online estimation over (nodes × counters).

:class:`FleetEstimator` holds the state of millions of per-node
:class:`~repro.core.online.OnlineEstimator` sessions in flat numpy
arrays and advances a whole :class:`~repro.serve.api.Batch` per call.

Bit-identity contract
---------------------
``step_batch`` is **bit-identical** to looping the single-node
:meth:`OnlineEstimator.step` over the batch rows in order: every
estimate (power, EWMA, timestamp), every ``source`` / ``flags``
decision, every breaker transition, drift latch, counter tally and
warning string matches the serial path exactly.  Three things make
that possible:

* every arithmetic expression is evaluated in the *same operand
  order* as the serial code — numpy elementwise float64 ops are
  IEEE-identical to the scalar ops they replace;
* branching becomes masking: each serial branch is a boolean mask,
  and warning/flag strings are built by sparse Python loops over
  ``np.nonzero`` of *incident* rows only, so the clean fast path
  stays loop-free;
* duplicate node ids inside one batch are processed in **waves**
  (first occurrence of every node, then second, …), preserving each
  node's per-sample order — exactly what the serial loop sees.

The drift window is a fixed-size int8 ring buffer per node (the serial
list-append-and-trim, without the allocation).  Quarantine is a
fleet-level *reporting overlay* on top of the serial semantics: a node
whose drift latch fires is quarantined (seeded probation via
:func:`repro.seeding.derive_rng`) so shard health statistics exclude
it; its estimates are still produced bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import FittedPowerModel
from repro.core.online import (
    ONLINE_STATE_FORMAT,
    DriftReport,
    OnlineEstimate,
    OnlineEstimator,
    PowerEnvelope,
)
from repro.seeding import DEFAULT_SEED, derive_rng
from repro.serve.api import Batch

__all__ = ["FleetEstimator", "BatchResult"]


@dataclass
class BatchResult:
    """Row-aligned outcome of one ``step_batch`` call.

    ``produced[i]`` is False where the serial path would have returned
    ``None`` (skipped interval); ``power_w``/``smoothed_w``/``time_s``
    are NaN there.  ``flags`` is sparse: only rows with at least one
    flag appear.
    """

    node_ids: Tuple[str, ...]
    produced: np.ndarray
    power_w: np.ndarray
    smoothed_w: np.ndarray
    time_s: np.ndarray
    source_model: np.ndarray
    flags: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        return len(self.node_ids)

    @property
    def n_produced(self) -> int:
        return int(np.count_nonzero(self.produced))

    def estimate(self, i: int) -> Optional[OnlineEstimate]:
        """Row *i* as the :class:`OnlineEstimate` the serial path
        returns (``None`` for a skipped row)."""
        if not self.produced[i]:
            return None
        return OnlineEstimate(
            time_s=float(self.time_s[i]),
            power_w=float(self.power_w[i]),
            smoothed_w=float(self.smoothed_w[i]),
            source="model" if self.source_model[i] else "baseline",
            flags=self.flags.get(i, ()),
        )

    def estimates(self) -> List[Optional[OnlineEstimate]]:
        return [self.estimate(i) for i in range(self.n_rows)]


class FleetEstimator:
    """Per-node online-estimator state for a whole fleet, in arrays."""

    def __init__(
        self,
        model: FittedPowerModel,
        *,
        smoothing: float = 0.5,
        envelope: Optional[PowerEnvelope] = None,
        breaker_threshold: int = 3,
        recovery_threshold: int = 2,
        drift_window: int = 20,
        drift_tolerance: float = 0.5,
        seed: int = DEFAULT_SEED,
        quarantine_probation: int = 50,
        capacity: int = 1024,
    ) -> None:
        # The scratch estimator validates every config parameter with
        # the serial rules and later validates node-state snapshots via
        # its load_state — one validator, zero drift between paths.
        self._scratch = OnlineEstimator(
            model,
            smoothing=smoothing,
            envelope=envelope,
            breaker_threshold=breaker_threshold,
            recovery_threshold=recovery_threshold,
            drift_window=drift_window,
            drift_tolerance=drift_tolerance,
        )
        if quarantine_probation < 1:
            raise ValueError("quarantine_probation must be at least 1")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.model = model
        self.counters: Tuple[str, ...] = tuple(model.counters)
        self.smoothing = float(smoothing)
        self.envelope = envelope
        self.breaker_threshold = int(breaker_threshold)
        self.recovery_threshold = int(recovery_threshold)
        self.drift_window = int(drift_window)
        self.drift_tolerance = float(drift_tolerance)
        self.seed = int(seed)
        self.quarantine_probation = int(quarantine_probation)

        coeffs = model.coefficients
        self._alphas = [coeffs[f"alpha:{c}"] for c in self.counters]
        self._beta = coeffs["beta:V2f"]
        self._gamma = coeffs["gamma:V"]
        self._delta = coeffs["delta:Z"]

        self._index: Dict[str, int] = {}
        self._ids: List[str] = []
        self._warnings: Dict[int, List[str]] = {}
        self._dirty: set = set()
        self._allocate(int(capacity))

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    _INT_FIELDS = (
        "_seen", "_n_intervals", "_n_model", "_n_baseline", "_n_skipped",
        "_n_implausible", "_n_clipped", "_breaker_trips",
        "_breaker_open_intervals", "_consecutive_bad", "_consecutive_good",
        "_wlen", "_wpos", "_wsum", "_quarantine_release", "_n_quarantines",
    )
    _BOOL_FIELDS = (
        "_smoothed_valid", "_last_time_valid", "_breaker_open",
        "_drift_detected", "_quarantined",
    )

    def _allocate(self, capacity: int) -> None:
        self._capacity = capacity
        self._smoothed = np.full(capacity, np.nan, dtype=np.float64)
        self._last_time = np.full(capacity, np.nan, dtype=np.float64)
        for name in self._INT_FIELDS:
            setattr(self, name, np.zeros(capacity, dtype=np.int64))
        for name in self._BOOL_FIELDS:
            setattr(self, name, np.zeros(capacity, dtype=bool))
        self._ring = np.zeros((capacity, self.drift_window), dtype=np.int8)

    def _grow(self, needed: int) -> None:
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        old = {
            name: getattr(self, name)
            for name in ("_smoothed", "_last_time", "_ring")
            + self._INT_FIELDS + self._BOOL_FIELDS
        }
        n = len(self._ids)
        self._allocate(capacity)
        for name, arr in old.items():
            getattr(self, name)[:n] = arr[:n]

    @property
    def n_nodes(self) -> int:
        return len(self._ids)

    def node_ids(self) -> Tuple[str, ...]:
        return tuple(self._ids)

    def has_node(self, node_id: str) -> bool:
        return node_id in self._index

    def ensure_node(self, node_id: str) -> int:
        """Index of a node, registering it fresh on first sight."""
        idx = self._index.get(node_id)
        if idx is not None:
            return idx
        idx = len(self._ids)
        if idx >= self._capacity:
            self._grow(idx + 1)
        self._ids.append(node_id)
        self._index[node_id] = idx
        return idx

    def _node_index(self, node_id: str) -> int:
        idx = self._index.get(node_id)
        if idx is None:
            raise KeyError(f"unknown node {node_id!r}")
        return idx

    # ------------------------------------------------------------------
    # Snapshot-safe per-node state (OnlineEstimator schema)
    # ------------------------------------------------------------------
    def _window_list(self, idx: int) -> List[bool]:
        """The node's implausible window, oldest → newest."""
        wlen = int(self._wlen[idx])
        if wlen < self.drift_window:
            raw = self._ring[idx, :wlen]
        else:
            pos = int(self._wpos[idx])
            raw = np.concatenate(
                [self._ring[idx, pos:], self._ring[idx, :pos]]
            )
        return [bool(v) for v in raw]

    def node_state(self, node_id: str) -> Dict[str, object]:
        """One node's state in the exact
        :meth:`OnlineEstimator.state_dict` schema — a fleet snapshot
        restores into a single-node estimator and vice versa."""
        i = self._node_index(node_id)
        return {
            "format": ONLINE_STATE_FORMAT,
            "smoothed": (
                float(self._smoothed[i]) if self._smoothed_valid[i] else None
            ),
            "last_time": (
                float(self._last_time[i])
                if self._last_time_valid[i]
                else None
            ),
            "n_intervals": int(self._n_intervals[i]),
            "seen": int(self._seen[i]),
            "n_model": int(self._n_model[i]),
            "n_baseline": int(self._n_baseline[i]),
            "n_skipped": int(self._n_skipped[i]),
            "n_implausible": int(self._n_implausible[i]),
            "n_clipped": int(self._n_clipped[i]),
            "breaker_open": bool(self._breaker_open[i]),
            "breaker_trips": int(self._breaker_trips[i]),
            "breaker_open_intervals": int(self._breaker_open_intervals[i]),
            "consecutive_bad": int(self._consecutive_bad[i]),
            "consecutive_good": int(self._consecutive_good[i]),
            "implausible_window": self._window_list(i),
            "drift_detected": bool(self._drift_detected[i]),
            "warnings": list(self._warnings.get(i, [])),
        }

    def load_node_state(self, node_id: str, state: Dict[str, object]) -> int:
        """Restore one node from a snapshot (strict, validated).

        Validation is delegated to :meth:`OnlineEstimator.load_state`
        so the fleet accepts and rejects exactly what the serial
        estimator would; malformed snapshots raise ``ValueError`` and
        leave the node untouched.
        """
        self._scratch.load_state(state)  # raises ValueError if malformed
        src = self._scratch
        i = self.ensure_node(node_id)
        sm = src._smoothed
        self._smoothed[i] = np.nan if sm is None else float(sm)
        self._smoothed_valid[i] = sm is not None
        lt = src._last_time
        self._last_time[i] = np.nan if lt is None else float(lt)
        self._last_time_valid[i] = lt is not None
        self._n_intervals[i] = src._n_intervals
        self._seen[i] = src._seen
        self._n_model[i] = src._n_model
        self._n_baseline[i] = src._n_baseline
        self._n_skipped[i] = src._n_skipped
        self._n_implausible[i] = src._n_implausible
        self._n_clipped[i] = src._n_clipped
        self._breaker_open[i] = src._breaker_open
        self._breaker_trips[i] = src._breaker_trips
        self._breaker_open_intervals[i] = src._breaker_open_intervals
        self._consecutive_bad[i] = src._consecutive_bad
        self._consecutive_good[i] = src._consecutive_good
        self._drift_detected[i] = src._drift_detected
        window = src._implausible_window
        self._ring[i, :] = 0
        self._ring[i, : len(window)] = [int(b) for b in window]
        self._wlen[i] = len(window)
        self._wpos[i] = len(window) % self.drift_window
        self._wsum[i] = sum(window)
        if src._warnings:
            self._warnings[i] = list(src._warnings)
        else:
            self._warnings.pop(i, None)
        # Quarantine is a live overlay, not snapshot state: a restored
        # node re-earns it if its window stays implausible.
        self._quarantined[i] = False
        self._quarantine_release[i] = 0
        self._scratch.reset()
        return i

    # ------------------------------------------------------------------
    # Vectorized stepping
    # ------------------------------------------------------------------
    def _warn(self, idx: int, message: str) -> None:
        self._warnings.setdefault(idx, []).append(
            f"interval {int(self._seen[idx])}: {message}"
        )

    def step_batch(self, batch: Batch) -> BatchResult:
        """Advance every row's node by one interval (see module doc)."""
        if batch.counters != self.counters:
            raise ValueError(
                f"batch counters {batch.counters} do not match model "
                f"counters {self.counters}"
            )
        n = batch.n_rows
        out = BatchResult(
            node_ids=batch.node_ids,
            produced=np.zeros(n, dtype=bool),
            power_w=np.full(n, np.nan, dtype=np.float64),
            smoothed_w=np.full(n, np.nan, dtype=np.float64),
            time_s=np.full(n, np.nan, dtype=np.float64),
            source_model=np.zeros(n, dtype=bool),
        )
        if n == 0:
            return out
        nodes = np.empty(n, dtype=np.int64)
        occurrence = np.zeros(n, dtype=np.int64)
        occ_count: Dict[str, int] = {}
        for i, node_id in enumerate(batch.node_ids):
            nodes[i] = self.ensure_node(node_id)
            c = occ_count.get(node_id, 0)
            occurrence[i] = c
            occ_count[node_id] = c + 1
        self._dirty.update(int(v) for v in np.unique(nodes))
        if occurrence.any():
            # Duplicate reports: each node's k-th sample lands in wave
            # k, so per-node ordering matches the serial loop.
            for wave in range(int(occurrence.max()) + 1):
                sel = occurrence == wave
                self._step_wave(batch, np.nonzero(sel)[0], nodes[sel], out)
        else:
            self._step_wave(batch, np.arange(n), nodes, out)
        self._maintain_quarantine(nodes)
        return out

    def _step_wave(
        self,
        batch: Batch,
        rows: np.ndarray,
        nd: np.ndarray,
        out: BatchResult,
    ) -> None:
        """One wave: every node appears at most once in ``rows``."""
        flags: Dict[int, List[str]] = {}

        def add_flag(row: int, flag: str) -> None:
            flags.setdefault(row, []).append(flag)

        self._seen[nd] += 1
        interval = batch.interval_s[rows]
        voltage_v = batch.voltage_v[rows]
        freq_mhz = batch.frequency_mhz[rows]

        ctx_ok = (
            np.isfinite(interval) & (interval > 0)
            & np.isfinite(voltage_v) & (voltage_v > 0)
            & np.isfinite(freq_mhz) & (freq_mhz > 0)
        )
        for j in np.nonzero(~ctx_ok)[0]:
            self._n_skipped[nd[j]] += 1
            self._warn(
                int(nd[j]),
                f"skipped: invalid context (interval={float(interval[j])}, "
                f"voltage={float(voltage_v[j])}, "
                f"frequency={float(freq_mhz[j])})",
            )
        t_valid = batch.time_valid[rows]
        lt_valid = self._last_time_valid[nd]
        t_in = batch.time_s[rows]
        nonmono = (
            ctx_ok & t_valid & lt_valid & (t_in <= self._last_time[nd])
        )
        for j in np.nonzero(nonmono)[0]:
            self._n_skipped[nd[j]] += 1
            self._warn(
                int(nd[j]),
                f"skipped: non-monotonic timestamp {float(t_in[j])} "
                f"after {float(self._last_time[nd[j]])}",
            )
        live = ctx_ok & ~nonmono
        if not live.any():
            return
        rows, nd = rows[live], nd[live]
        interval, voltage_v, freq_mhz = (
            interval[live], voltage_v[live], freq_mhz[live],
        )
        t_valid, t_in = t_valid[live], t_in[live]
        m = len(rows)

        deltas = batch.deltas[rows]
        present = batch.present[rows]
        finite = np.isfinite(deltas)
        missing = ~present
        nonfinite = present & ~finite
        negative = present & finite & (deltas < 0)
        any_bad = missing | nonfinite | negative
        bad_rows = any_bad.any(axis=1)
        for j in np.nonzero(bad_rows)[0]:
            parts = []
            for k, counter in enumerate(self.counters):
                if missing[j, k]:
                    parts.append(f"{counter} missing")
                elif nonfinite[j, k]:
                    parts.append(f"{counter} non-finite")
                elif negative[j, k]:
                    parts.append(f"{counter} negative")
            joined = "; ".join(parts)
            add_flag(int(rows[j]), "degraded-counters: " + joined)
            self._warn(int(nd[j]), "degraded counters: " + joined)

        # Breaker transitions (same thresholds, same warning text).
        good_nodes = nd[~bad_rows]
        self._consecutive_good[good_nodes] += 1
        self._consecutive_bad[good_nodes] = 0
        closing = good_nodes[
            self._breaker_open[good_nodes]
            & (self._consecutive_good[good_nodes] >= self.recovery_threshold)
        ]
        self._breaker_open[closing] = False
        for node in closing:
            self._warn(
                int(node),
                f"circuit breaker closed after "
                f"{int(self._consecutive_good[node])} clean intervals",
            )
        bad_nodes = nd[bad_rows]
        self._consecutive_bad[bad_nodes] += 1
        self._consecutive_good[bad_nodes] = 0
        opening = bad_nodes[
            ~self._breaker_open[bad_nodes]
            & (self._consecutive_bad[bad_nodes] >= self.breaker_threshold)
        ]
        self._breaker_open[opening] = True
        self._breaker_trips[opening] += 1
        for node in opening:
            self._warn(
                int(node),
                f"circuit breaker opened after "
                f"{int(self._consecutive_bad[node])} degraded intervals",
            )
        is_open = self._breaker_open[nd]
        self._breaker_open_intervals[nd[is_open]] += 1
        for j in np.nonzero(is_open)[0]:
            add_flag(int(rows[j]), "breaker-open")

        # Equation 1, in the serial operand order.
        v2f = voltage_v * voltage_v * (freq_mhz / 1000.0)
        baseline = self._beta * v2f + self._gamma * voltage_v + self._delta
        power_w = baseline.copy()
        source_model = np.zeros(m, dtype=bool)
        implausible = np.zeros(m, dtype=bool)
        eligible = np.nonzero(~bad_rows & ~is_open)[0]
        if eligible.size:
            cycles = freq_mhz[eligible] * 1e6 * interval[eligible]
            v2fe = v2f[eligible]
            model_power_w = baseline[eligible].copy()
            de = deltas[eligible]
            for k, alpha in enumerate(self._alphas):
                model_power_w = (
                    model_power_w + alpha * (de[:, k] / cycles) * v2fe
                )
            plausible = np.isfinite(model_power_w)
            if self.envelope is not None:
                plausible &= (model_power_w >= self.envelope.lo_w) & (
                    model_power_w <= self.envelope.hi_w
                )
            ok = eligible[plausible]
            power_w[ok] = model_power_w[plausible]
            source_model[ok] = True
            self._n_model[nd[ok]] += 1
            bad_est = eligible[~plausible]
            implausible[bad_est] = True
            self._n_implausible[nd[bad_est]] += 1
            for j in bad_est:
                add_flag(int(rows[j]), "implausible-model-estimate")
        self._n_baseline[nd[~source_model]] += 1

        if self.envelope is not None:
            b = np.nonzero(~source_model)[0]
            if b.size:
                p = power_w[b]
                nonfin = ~np.isfinite(p)
                clipped = np.minimum(
                    np.maximum(p, self.envelope.lo_w), self.envelope.hi_w
                )
                clipped[nonfin] = 0.5 * (
                    self.envelope.lo_w + self.envelope.hi_w
                )
                changed = (clipped != p) | nonfin
                hit = b[changed]
                self._n_clipped[nd[hit]] += 1
                for j in hit:
                    add_flag(int(rows[j]), "clipped-to-envelope")
                power_w[hit] = clipped[changed]
        zeroed = np.nonzero(~np.isfinite(power_w))[0]
        for j in zeroed:
            add_flag(int(rows[j]), "non-finite-estimate-zeroed")
            self._warn(int(nd[j]), "non-finite estimate replaced by 0.0")
        power_w[zeroed] = 0.0

        # Drift window: the serial append-and-trim as a ring buffer.
        val = implausible.astype(np.int8)
        full = self._wlen[nd] == self.drift_window
        old = np.where(full, self._ring[nd, self._wpos[nd]], 0)
        self._wsum[nd] += val - old
        self._ring[nd, self._wpos[nd]] = val
        self._wpos[nd] = (self._wpos[nd] + 1) % self.drift_window
        self._wlen[nd] = np.minimum(self._wlen[nd] + 1, self.drift_window)
        fraction = self._wsum[nd] / self._wlen[nd]
        detect = (
            (self._wlen[nd] == self.drift_window)
            & ~self._drift_detected[nd]
            & (fraction > self.drift_tolerance)
        )
        detected_nodes = nd[detect]
        self._drift_detected[detected_nodes] = True
        for j in np.nonzero(detect)[0]:
            self._warn(
                int(nd[j]),
                f"drift detected: {float(fraction[j]):.0%} of the last "
                f"{self.drift_window} intervals implausible",
            )

        # Record: EWMA, timeline, interval count (serial operand order).
        sm_prev = self._smoothed[nd]
        smoothed = np.where(
            self._smoothed_valid[nd],
            self.smoothing * power_w + (1.0 - self.smoothing) * sm_prev,
            power_w,
        )
        self._smoothed[nd] = smoothed
        self._smoothed_valid[nd] = True
        t = np.where(
            t_valid,
            t_in,
            np.where(
                self._last_time_valid[nd],
                self._last_time[nd] + interval,
                interval,
            ),
        )
        self._last_time[nd] = t
        self._last_time_valid[nd] = True
        self._n_intervals[nd] += 1

        # Quarantine overlay: a freshly latched node enters probation.
        for node in detected_nodes:
            self._enter_quarantine(int(node))

        out.produced[rows] = True
        out.power_w[rows] = power_w
        out.smoothed_w[rows] = smoothed
        out.time_s[rows] = t
        out.source_model[rows] = source_model
        for row, row_flags in flags.items():
            out.flags[row] = tuple(row_flags)

    # ------------------------------------------------------------------
    # Quarantine overlay
    # ------------------------------------------------------------------
    def _enter_quarantine(self, idx: int) -> None:
        self._quarantined[idx] = True
        self._n_quarantines[idx] += 1
        rng = derive_rng(
            self.seed, "serve-quarantine", self._ids[idx],
            int(self._n_quarantines[idx]),
        )
        probation = self.quarantine_probation + int(
            rng.integers(0, self.quarantine_probation)
        )
        self._quarantine_release[idx] = int(self._n_intervals[idx]) + probation

    def _maintain_quarantine(self, nodes: np.ndarray) -> None:
        """Release quarantined nodes whose probation elapsed *and*
        whose recent window is back under the drift tolerance."""
        idx = np.unique(nodes)
        q = idx[self._quarantined[idx]]
        if q.size == 0:
            return
        served = self._n_intervals[q] >= self._quarantine_release[q]
        denom = np.maximum(self._wlen[q], 1)
        calm = self._wsum[q] / denom <= self.drift_tolerance
        self._quarantined[q[served & calm]] = False

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def warnings(self, node_id: str) -> Tuple[str, ...]:
        return tuple(self._warnings.get(self._node_index(node_id), []))

    def is_quarantined(self, node_id: str) -> bool:
        return bool(self._quarantined[self._node_index(node_id)])

    def quarantined_node_ids(self) -> Tuple[str, ...]:
        n = self.n_nodes
        hits = np.nonzero(self._quarantined[:n])[0]
        return tuple(self._ids[int(i)] for i in hits)

    def drift_report(self, node_id: str) -> DriftReport:
        """One node's session tally — identical to what the serial
        estimator's :meth:`OnlineEstimator.drift_report` would say."""
        i = self._node_index(node_id)
        wlen = int(self._wlen[i])
        fraction = float(self._wsum[i]) / wlen if wlen else 0.0
        return DriftReport(
            n_intervals=int(self._n_intervals[i]),
            n_model=int(self._n_model[i]),
            n_baseline=int(self._n_baseline[i]),
            n_skipped=int(self._n_skipped[i]),
            n_implausible=int(self._n_implausible[i]),
            n_clipped=int(self._n_clipped[i]),
            breaker_trips=int(self._breaker_trips[i]),
            breaker_open_intervals=int(self._breaker_open_intervals[i]),
            breaker_open=bool(self._breaker_open[i]),
            drift_detected=bool(self._drift_detected[i]),
            drift_fraction=fraction,
            warnings=tuple(self._warnings.get(i, [])),
        )

    def take_dirty_nodes(self) -> List[str]:
        """Node ids touched since the last call (snapshot worker's
        work-list); clears the dirty set."""
        dirty = sorted(self._dirty)
        self._dirty.clear()
        return [self._ids[i] for i in dirty]

    def health_counts(self) -> Dict[str, int]:
        """Fleet-level health tally over all registered nodes."""
        n = self.n_nodes
        quarantined = self._quarantined[:n]
        degraded = (
            (self._breaker_open[:n] | self._drift_detected[:n])
            & ~quarantined
        )
        return {
            "n_nodes": n,
            "quarantined": int(np.count_nonzero(quarantined)),
            "degraded": int(np.count_nonzero(degraded)),
            "healthy": int(
                n
                - np.count_nonzero(quarantined)
                - np.count_nonzero(degraded)
            ),
        }
