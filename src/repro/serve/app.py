"""The fleet estimation service: middleware → queue → shards → fleet.

:class:`FleetService` wires the layers together the way a backend app
composes middleware, API handlers, state stores and background tasks:

* **middleware** (:mod:`repro.serve.middleware`) validates submissions
  and audits duplicates before anything queues;
* the **bounded queue** (:mod:`repro.serve.queue`) makes overload a
  graded policy decision instead of memory growth;
* ``process()`` drains the queue once per service **tick**, groups rows
  by state shard, and steps each shard's sub-batch through the
  vectorized :class:`~repro.serve.fleet.FleetEstimator` under that
  shard's :class:`~repro.serve.breaker.ShardBreaker` — a shard whose
  operations keep failing is answered from the stateless baseline
  while the rest of the fleet runs normally;
* a cadence-driven :class:`SnapshotWorker` persists dirty nodes into
  the sharded :class:`~repro.serve.state.FleetStateStore`, a bounded
  number of shard files per tick, so snapshotting never stalls serving;
* unknown nodes are restored **lazily** from the store on first
  sight — a corrupt shard surfaces as "those nodes start fresh from
  the baseline model", never as a service abort.

Determinism: everything (including quarantine probation) is keyed off
the service seed; there are no threads and no wall-clock reads, so a
replay with the same submissions reproduces the same decisions bit for
bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.model import FittedPowerModel
from repro.core.online import PowerEnvelope
from repro.acquisition.checkpoint import shard_key
from repro.seeding import DEFAULT_SEED
from repro.serve.api import Batch, NodeSample, make_batch
from repro.serve.breaker import ShardBreaker
from repro.serve.fleet import BatchResult, FleetEstimator
from repro.serve.middleware import DuplicateAuditor, SchemaValidator
from repro.serve.queue import BoundedIngestQueue, QueueStats
from repro.serve.report import FleetReport, ShardReport
from repro.serve.state import FleetStateStore, fleet_fingerprint

__all__ = ["FleetService", "SnapshotWorker", "ProcessOutcome"]


@dataclass(frozen=True)
class ProcessOutcome:
    """What one service tick did."""

    results: Tuple[BatchResult, ...]
    stateless: Tuple[Tuple[str, float], ...]
    """(node id, power) pairs answered without estimator state
    (diverted overflow or an open shard breaker)."""
    processed_rows: int
    refused_shards: int


class SnapshotWorker:
    """Cadence-driven background snapshotter (no threads, no clocks).

    Invoked from ``process()`` every ``every_ticks`` ticks; writes at
    most ``max_shards_per_tick`` dirty shard files per invocation
    (0 = all), carrying the remainder to the next due tick so a huge
    fleet never stalls one tick on persistence.
    """

    def __init__(
        self, *, every_ticks: int = 1, max_shards_per_tick: int = 0
    ) -> None:
        if every_ticks < 1:
            raise ValueError("every_ticks must be at least 1")
        if max_shards_per_tick < 0:
            raise ValueError("max_shards_per_tick must be non-negative")
        self.every_ticks = int(every_ticks)
        self.max_shards_per_tick = int(max_shards_per_tick)
        self.pending: Dict[int, Set[str]] = {}
        self.writes = 0

    def due(self, tick: int) -> bool:
        return tick % self.every_ticks == 0

    def run(
        self,
        fleet: FleetEstimator,
        store: FleetStateStore,
        breakers: Sequence[ShardBreaker],
    ) -> int:
        """Persist dirty nodes, bounded per tick; returns shard writes."""
        for node_id in fleet.take_dirty_nodes():
            shard = store.shard_of(node_id)
            self.pending.setdefault(shard, set()).add(node_id)
        shards = sorted(self.pending)
        if self.max_shards_per_tick:
            shards = shards[: self.max_shards_per_tick]
        written = 0
        for shard in shards:
            breaker = breakers[shard]
            if not breaker.allow():
                continue  # stays pending; retried after cooldown
            node_ids = self.pending[shard]
            try:
                items = {
                    node_id: fleet.node_state(node_id)
                    for node_id in sorted(node_ids)
                }
                written += store.store_many(items)
            except Exception:  # replint: ignore[RL007] -- breaker trip is the handling; the refusal shows up in ShardReport
                breaker.record_failure()
                continue
            breaker.record_success()
            del self.pending[shard]
        self.writes += written
        return written


class FleetService:
    """Deterministic, fault-isolating estimation service for a fleet."""

    def __init__(
        self,
        model: FittedPowerModel,
        *,
        envelope: Optional[PowerEnvelope] = None,
        smoothing: float = 0.5,
        breaker_threshold: int = 3,
        recovery_threshold: int = 2,
        drift_window: int = 20,
        drift_tolerance: float = 0.5,
        n_shards: int = 8,
        queue_capacity: int = 1024,
        policy: str = "reject",
        snapshot_dir: Optional[str] = None,
        snapshot_every_ticks: int = 1,
        max_snapshot_shards_per_tick: int = 0,
        shard_breaker_threshold: int = 3,
        shard_breaker_cooldown: int = 5,
        quarantine_probation: int = 50,
        seed: int = DEFAULT_SEED,
        step_hook=None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.n_shards = int(n_shards)
        self.fleet = FleetEstimator(
            model,
            smoothing=smoothing,
            envelope=envelope,
            breaker_threshold=breaker_threshold,
            recovery_threshold=recovery_threshold,
            drift_window=drift_window,
            drift_tolerance=drift_tolerance,
            seed=seed,
            quarantine_probation=quarantine_probation,
        )
        self.queue = BoundedIngestQueue(queue_capacity, policy=policy)
        self.validator = SchemaValidator()
        self.duplicates = DuplicateAuditor()
        self.breakers = [
            ShardBreaker(
                threshold=shard_breaker_threshold,
                cooldown_ticks=shard_breaker_cooldown,
            )
            for _ in range(self.n_shards)
        ]
        self.store: Optional[FleetStateStore] = None
        if snapshot_dir is not None:
            self.store = FleetStateStore(
                snapshot_dir,
                fleet_fingerprint(
                    model,
                    smoothing=smoothing,
                    breaker_threshold=breaker_threshold,
                    recovery_threshold=recovery_threshold,
                    drift_window=drift_window,
                    drift_tolerance=drift_tolerance,
                ),
                n_shards=self.n_shards,
            )
        self.snapshot_worker = SnapshotWorker(
            every_ticks=snapshot_every_ticks,
            max_shards_per_tick=max_snapshot_shards_per_tick,
        )
        self._step_hook = step_hook
        """Test/chaos hook called as ``hook(shard, rows)`` before each
        shard sub-batch steps; an exception it raises is handled like
        any shard-operation failure (breaker + stateless fallback)."""
        self._node_shard: Dict[str, int] = {}
        self._restore_attempted: Set[str] = set()
        self._ticks = 0
        self._stateless_served = 0
        self._discarded_states = 0
        self._restored_nodes = 0

    # ------------------------------------------------------------------
    @property
    def ticks(self) -> int:
        return self._ticks

    @property
    def restored_nodes(self) -> int:
        return self._restored_nodes

    @property
    def discarded_states(self) -> int:
        """Per-node snapshots rejected as malformed at restore."""
        return self._discarded_states

    def shard_of(self, node_id: str) -> int:
        shard = self._node_shard.get(node_id)
        if shard is None:
            shard = shard_key(node_id) % self.n_shards
            self._node_shard[node_id] = shard
        return shard

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def submit(
        self, submissions: Sequence[object]
    ) -> Tuple[Tuple[str, float], ...]:
        """Validate and enqueue submissions.

        Returns the stateless baseline answers for samples the
        ``degrade-to-baseline`` policy diverted (empty under other
        policies).  Malformed submissions are dropped and counted by
        the middleware; rejected/shed samples are counted by the queue.
        """
        samples = self.validator.validate(submissions)
        self.duplicates.observe(samples)
        outcome = self.queue.offer(samples)
        stateless = self._stateless_answers(outcome.diverted)
        return stateless

    def _stateless_answers(
        self, samples: Sequence[NodeSample]
    ) -> Tuple[Tuple[str, float], ...]:
        """PMC-free baseline estimates that touch no per-node state."""
        out = []
        for sample in samples:
            power_w = self._baseline_power(
                sample.voltage_v, sample.frequency_mhz
            )
            out.append((sample.node_id, power_w))
        self._stateless_served += len(out)
        return tuple(out)

    def _baseline_power(self, voltage_v: float, frequency_mhz: float) -> float:
        coeffs = self.fleet.model.coefficients
        v2f = voltage_v * voltage_v * (frequency_mhz / 1000.0)
        power_w = (
            coeffs["beta:V2f"] * v2f
            + coeffs["gamma:V"] * voltage_v
            + coeffs["delta:Z"]
        )
        envelope = self.fleet.envelope
        if envelope is not None:
            return envelope.clip(float(power_w))
        return float(power_w) if np.isfinite(power_w) else 0.0

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    def _restore_missing(self, samples: Sequence[NodeSample]) -> None:
        """Lazily restore first-seen nodes from the state store."""
        if self.store is None:
            return
        for sample in samples:
            node_id = sample.node_id
            if node_id in self._restore_attempted:
                continue
            self._restore_attempted.add(node_id)
            if self.fleet.has_node(node_id):
                continue
            state = self.store.load(node_id)
            if state is None:
                continue  # absent, or its shard was corrupt (discarded)
            try:
                self.fleet.load_node_state(node_id, state)
                self._restored_nodes += 1
            except ValueError:
                # Malformed per-node snapshot: discard it, the node
                # restarts from the baseline model.
                self._discarded_states += 1

    def process(self, max_rows: int = 0) -> ProcessOutcome:
        """One service tick: drain, shard, step, snapshot."""
        self._ticks += 1
        for breaker in self.breakers:
            breaker.tick()
        rows = self.queue.drain(max_rows)
        by_shard: Dict[int, List[NodeSample]] = {}
        for sample in rows:
            by_shard.setdefault(self.shard_of(sample.node_id), []).append(
                sample
            )
        results: List[BatchResult] = []
        stateless: List[Tuple[str, float]] = []
        refused = 0
        for shard in sorted(by_shard):
            shard_rows = by_shard[shard]
            breaker = self.breakers[shard]
            if not breaker.allow():
                stateless.extend(self._stateless_answers(shard_rows))
                refused += 1
                continue
            try:
                if self._step_hook is not None:
                    self._step_hook(shard, shard_rows)
                self._restore_missing(shard_rows)
                batch = make_batch(shard_rows, self.fleet.counters)
                results.append(self.fleet.step_batch(batch))
            except Exception:  # replint: ignore[RL007] -- breaker trip is the handling; nodes get a counted stateless answer
                breaker.record_failure()
                stateless.extend(self._stateless_answers(shard_rows))
                continue
            breaker.record_success()
        if self.store is not None and self.snapshot_worker.due(self._ticks):
            self.snapshot_worker.run(self.fleet, self.store, self.breakers)
        return ProcessOutcome(
            results=tuple(results),
            stateless=tuple(stateless),
            processed_rows=sum(r.n_rows for r in results),
            refused_shards=refused,
        )

    def snapshot(self) -> int:
        """Force-persist all dirty nodes now; returns shard writes."""
        if self.store is None:
            return 0
        return self.snapshot_worker.run(self.fleet, self.store, self.breakers)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def report(self) -> FleetReport:
        """Roll up node health, shard breakers and queue pressure."""
        n = self.fleet.n_nodes
        per_shard_nodes: Dict[int, List[int]] = {}
        for idx, node_id in enumerate(self.fleet.node_ids()):
            per_shard_nodes.setdefault(self.shard_of(node_id), []).append(idx)
        shards = []
        for shard in range(self.n_shards):
            indices = np.asarray(
                per_shard_nodes.get(shard, []), dtype=np.int64
            )
            quarantined = (
                self.fleet._quarantined[indices] if indices.size else
                np.zeros(0, dtype=bool)
            )
            degraded = (
                (
                    self.fleet._breaker_open[indices]
                    | self.fleet._drift_detected[indices]
                )
                & ~quarantined
                if indices.size
                else np.zeros(0, dtype=bool)
            )
            n_quarantined = int(np.count_nonzero(quarantined))
            n_degraded = int(np.count_nonzero(degraded))
            breaker = self.breakers[shard]
            shards.append(
                ShardReport(
                    shard=shard,
                    n_nodes=int(indices.size),
                    healthy=int(indices.size) - n_quarantined - n_degraded,
                    degraded=n_degraded,
                    quarantined=n_quarantined,
                    breaker_state=breaker.state,
                    breaker_trips=breaker.trips,
                    refused_operations=breaker.refused,
                )
            )
        counts = self.fleet.health_counts()
        return FleetReport(
            n_nodes=n,
            healthy_nodes=counts["healthy"],
            degraded_nodes=counts["degraded"],
            quarantined_nodes=counts["quarantined"],
            stateless_served=self._stateless_served,
            dropped_malformed=self.validator.n_dropped,
            duplicate_rows=self.duplicates.n_duplicates,
            queue=self.queue.stats(),
            shards=tuple(shards),
            ticks=self._ticks,
            snapshot_writes=self.snapshot_worker.writes,
        )
