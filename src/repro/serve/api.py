"""Wire types of the fleet estimation service.

A monitored node reports one :class:`NodeSample` per sampling interval;
the service packs validated samples into column-major :class:`Batch`
matrices (nodes × counters) that :class:`repro.serve.fleet.FleetEstimator`
steps in one vectorized pass.  The batch layout preserves everything the
single-node :meth:`~repro.core.online.OnlineEstimator.step` contract
distinguishes — a *missing* counter (absent key), a *non-finite* delta
and a *negative* delta are different degradations with different
messages — so the vectorized path can reproduce the serial path bit for
bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["NodeSample", "Batch", "make_batch"]


@dataclass(frozen=True)
class NodeSample:
    """One node's counter deltas for one sampling interval."""

    node_id: str
    counter_deltas: Dict[str, float]
    """Raw event counts accumulated over the interval.  Keys the model
    needs but the node failed to report are simply absent."""
    interval_s: float
    voltage_v: float
    frequency_mhz: float
    time_s: Optional[float] = None


@dataclass(frozen=True)
class Batch:
    """Validated samples in (nodes × counters) column-major form.

    ``deltas[i, k]`` is row *i*'s delta for ``counters[k]``;
    ``present[i, k]`` is False where the sample did not carry that
    counter at all (NaN in ``deltas`` with ``present`` True means the
    node *reported* a non-finite value — a different fault).
    ``time_valid[i]`` is False where the sample carried no timestamp.
    The same ``node_id`` may appear in several rows (duplicate reports);
    row order is the arrival order the serial path would see.
    """

    counters: Tuple[str, ...]
    node_ids: Tuple[str, ...]
    deltas: np.ndarray
    present: np.ndarray
    interval_s: np.ndarray
    voltage_v: np.ndarray
    frequency_mhz: np.ndarray
    time_s: np.ndarray
    time_valid: np.ndarray

    @property
    def n_rows(self) -> int:
        return len(self.node_ids)

    def row_sample(self, i: int) -> NodeSample:
        """Row *i* back as the :class:`NodeSample` the serial estimator
        would have been fed — the identity tests step both paths from
        the same rows."""
        deltas = {
            counter: float(self.deltas[i, k])
            for k, counter in enumerate(self.counters)
            if self.present[i, k]
        }
        return NodeSample(
            node_id=self.node_ids[i],
            counter_deltas=deltas,
            interval_s=float(self.interval_s[i]),
            voltage_v=float(self.voltage_v[i]),
            frequency_mhz=float(self.frequency_mhz[i]),
            time_s=float(self.time_s[i]) if self.time_valid[i] else None,
        )


def make_batch(
    samples: Sequence[NodeSample], counters: Sequence[str]
) -> Batch:
    """Pack samples into a :class:`Batch` over the model's counters.

    Counters a sample carries beyond the model's set are ignored, like
    the serial path ignores them; absent counters become
    ``present=False`` holes.
    """
    counters = tuple(counters)
    n, k = len(samples), len(counters)
    deltas = np.full((n, k), np.nan, dtype=np.float64)
    present = np.zeros((n, k), dtype=bool)
    interval_s = np.empty(n, dtype=np.float64)
    voltage_v = np.empty(n, dtype=np.float64)
    frequency_mhz = np.empty(n, dtype=np.float64)
    time_s = np.full(n, np.nan, dtype=np.float64)
    time_valid = np.zeros(n, dtype=bool)
    node_ids = []
    for i, sample in enumerate(samples):
        node_ids.append(sample.node_id)
        for j, counter in enumerate(counters):
            if counter in sample.counter_deltas:
                present[i, j] = True
                deltas[i, j] = float(sample.counter_deltas[counter])
        interval_s[i] = float(sample.interval_s)
        voltage_v[i] = float(sample.voltage_v)
        frequency_mhz[i] = float(sample.frequency_mhz)
        if sample.time_s is not None:
            time_s[i] = float(sample.time_s)
            time_valid[i] = True
    return Batch(
        counters=counters,
        node_ids=tuple(node_ids),
        deltas=deltas,
        present=present,
        interval_s=interval_s,
        voltage_v=voltage_v,
        frequency_mhz=frequency_mhz,
        time_s=time_s,
        time_valid=time_valid,
    )
