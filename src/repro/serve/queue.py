"""Bounded ingestion queue with explicit, observable backpressure.

Overload must be a *graded state*, not unbounded memory growth.  The
queue holds at most ``capacity`` samples; what happens to sample
``capacity + 1`` is a declared policy:

``reject``
    New samples bounce (the producer is told), queued work survives.
``shed-oldest``
    New samples enqueue, the oldest queued samples are shed — freshest
    data wins, as a monitoring loop usually wants.
``degrade-to-baseline``
    Overflow samples are *diverted*: never queued, returned to the
    caller for a stateless PMC-free baseline answer.  The caller gets a
    bounded-latency estimate and per-node estimator state is untouched,
    so estimates resume cleanly once the burst passes.

Every outcome is counted in :class:`QueueStats`; nothing is dropped
silently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.serve.api import NodeSample

__all__ = ["POLICIES", "BoundedIngestQueue", "OfferOutcome", "QueueStats"]

POLICIES: Tuple[str, ...] = ("reject", "shed-oldest", "degrade-to-baseline")


@dataclass(frozen=True)
class QueueStats:
    """Counters of everything the queue ever decided."""

    capacity: int
    depth: int
    max_depth: int
    accepted: int
    rejected: int
    shed: int
    diverted: int
    """Samples diverted to the stateless baseline path
    (``degrade-to-baseline`` overflow)."""

    @property
    def overloaded_fraction(self) -> float:
        """Share of offered samples that hit a backpressure outcome."""
        offered = self.accepted + self.rejected + self.diverted
        if offered == 0:
            return 0.0
        return (self.rejected + self.shed + self.diverted) / offered


@dataclass(frozen=True)
class OfferOutcome:
    """What one ``offer`` call did with each sample."""

    accepted: int
    rejected: int
    shed: int
    diverted: Tuple[NodeSample, ...]
    """Samples the caller must answer with the stateless baseline."""


class BoundedIngestQueue:
    """FIFO of pending samples that can never exceed ``capacity``."""

    def __init__(self, capacity: int, *, policy: str = "reject") -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r}; "
                f"expected one of {POLICIES}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        # Bound enforced by explicit accounting below (shed/reject
        # decisions must be counted, which deque(maxlen=...) would
        # swallow); serve is the RL013-approved home for this.
        self._pending: deque = deque()
        self._max_depth = 0
        self._accepted = 0
        self._rejected = 0
        self._shed = 0
        self._diverted = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        return len(self._pending)

    def offer(self, samples: Sequence[NodeSample]) -> OfferOutcome:
        """Enqueue what fits; apply the backpressure policy to the rest."""
        accepted = rejected = shed = 0
        diverted: List[NodeSample] = []
        for sample in samples:
            if len(self._pending) < self.capacity:
                self._pending.append(sample)
                accepted += 1
            elif self.policy == "reject":
                rejected += 1
            elif self.policy == "shed-oldest":
                self._pending.popleft()
                self._pending.append(sample)
                accepted += 1
                shed += 1
            else:  # degrade-to-baseline
                diverted.append(sample)
            self._max_depth = max(self._max_depth, len(self._pending))
        self._accepted += accepted
        self._rejected += rejected
        self._shed += shed
        self._diverted += len(diverted)
        return OfferOutcome(
            accepted=accepted,
            rejected=rejected,
            shed=shed,
            diverted=tuple(diverted),
        )

    def drain(self, max_items: int = 0) -> List[NodeSample]:
        """Pop up to ``max_items`` pending samples (0 = everything)."""
        if max_items <= 0:
            max_items = len(self._pending)
        out = []
        while self._pending and len(out) < max_items:
            out.append(self._pending.popleft())
        return out

    def stats(self) -> QueueStats:
        return QueueStats(
            capacity=self.capacity,
            depth=len(self._pending),
            max_depth=self._max_depth,
            accepted=self._accepted,
            rejected=self._rejected,
            shed=self._shed,
            diverted=self._diverted,
        )
