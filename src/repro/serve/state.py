"""Sharded persistence of per-node estimator state.

:class:`FleetStateStore` stores :meth:`OnlineEstimator.state_dict`
snapshots keyed by node id, on top of the generic
:class:`~repro.acquisition.checkpoint.ShardedArchiveStore` — the same
atomic-write / lazy-read / corrupt-shard-discard machinery the
campaign checkpoints use.  A corrupt shard loses only its own nodes
(they restart from the baseline model); restoring *k* nodes reads at
most ``min(k, n_shards)`` shard files.

The store is fingerprinted by the model and estimator configuration
(:func:`fleet_fingerprint`): state written for a different model or a
different breaker/drift configuration is never adopted.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict

import numpy as np

from repro.acquisition.checkpoint import ShardedArchiveStore
from repro.core.model import FittedPowerModel
from repro.core.online import ONLINE_STATE_FORMAT

__all__ = ["SERVE_STATE_FORMAT", "FleetStateStore", "fleet_fingerprint"]

#: On-disk shard format of fleet state archives.  Independent of the
#: campaign checkpoint's ``SHARD_FORMAT`` and of the per-node
#: ``ONLINE_STATE_FORMAT`` carried inside each entry.
SERVE_STATE_FORMAT = 1


def fleet_fingerprint(model: FittedPowerModel, **config) -> str:
    """Identity of (model, estimator configuration) for store adoption.

    Two services share snapshots only if their coefficients, counter
    order and estimator thresholds all match bit for bit.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(str(ONLINE_STATE_FORMAT).encode())
    for counter in model.counters:
        h.update(counter.encode())
        h.update(b"\x00")
    for name, value in sorted(model.coefficients.items()):
        h.update(name.encode())
        h.update(np.float64(value).tobytes())
    for key in sorted(config):
        h.update(key.encode())
        h.update(repr(config[key]).encode())
    return h.hexdigest()


class FleetStateStore(ShardedArchiveStore):
    """Node id → estimator-state-dict archive, sharded and atomic.

    Entries are JSON documents inside the ``npz`` shard (state dicts
    are plain scalars/lists by contract); malformed JSON raises
    ``ValueError``, which the base store treats as a corrupt shard —
    discarded whole, logged, never half-trusted.
    """

    FORMAT = SERVE_STATE_FORMAT

    def _pack_shard(self, cells: Dict[str, object]) -> Dict[str, np.ndarray]:
        node_ids = list(cells)
        blobs = [json.dumps(cells[node_id]) for node_id in node_ids]
        return {
            "node_ids": np.array(node_ids, dtype=str),
            "states": np.array(blobs, dtype=str),
        }

    def _unpack_shard(self, data) -> Dict[str, object]:
        node_ids = [str(v) for v in data["node_ids"]]
        blobs = data["states"]
        if len(blobs) != len(node_ids):
            raise ValueError("shard node/state arrays disagree")
        out: Dict[str, object] = {}
        for node_id, blob in zip(node_ids, blobs):
            state = json.loads(str(blob))  # ValueError if corrupt
            if not isinstance(state, dict):
                raise ValueError("node state entry is not an object")
            out[node_id] = state
        return out
