"""Fleet-scale resilient online power estimation service.

Layered like a backend app (DESIGN.md §15):

* :mod:`repro.serve.api` — wire types (:class:`NodeSample`,
  :class:`Batch`);
* :mod:`repro.serve.middleware` — schema validation + duplicate audit;
* :mod:`repro.serve.queue` — bounded ingestion with explicit
  backpressure policies;
* :mod:`repro.serve.fleet` — vectorized per-node estimator state,
  bit-identical to the serial :class:`~repro.core.online.OnlineEstimator`;
* :mod:`repro.serve.state` — sharded atomic snapshot/restore;
* :mod:`repro.serve.breaker` — per-shard operation circuit breakers;
* :mod:`repro.serve.report` — shard and fleet health roll-ups;
* :mod:`repro.serve.app` — :class:`FleetService` tying it together.
"""

from repro.serve.api import Batch, NodeSample, make_batch
from repro.serve.app import FleetService, ProcessOutcome, SnapshotWorker
from repro.serve.breaker import BREAKER_STATES, ShardBreaker
from repro.serve.fleet import BatchResult, FleetEstimator
from repro.serve.middleware import DuplicateAuditor, SchemaValidator
from repro.serve.queue import (
    POLICIES,
    BoundedIngestQueue,
    OfferOutcome,
    QueueStats,
)
from repro.serve.report import FleetReport, ShardReport
from repro.serve.state import (
    SERVE_STATE_FORMAT,
    FleetStateStore,
    fleet_fingerprint,
)

__all__ = [
    "BREAKER_STATES",
    "POLICIES",
    "SERVE_STATE_FORMAT",
    "Batch",
    "BatchResult",
    "BoundedIngestQueue",
    "DuplicateAuditor",
    "FleetEstimator",
    "FleetReport",
    "FleetService",
    "FleetStateStore",
    "NodeSample",
    "OfferOutcome",
    "ProcessOutcome",
    "QueueStats",
    "SchemaValidator",
    "ShardBreaker",
    "ShardReport",
    "SnapshotWorker",
    "fleet_fingerprint",
    "make_batch",
]
