"""Unit tests for trace statistics."""

import math

import numpy as np
import pytest

from repro.hardware import EventSet, FIXED_COUNTERS
from repro.tracing import Trace, MetricDef, MetricStream, trace_run, trace_statistics
from repro.workloads import get_workload


class TestTraceStatistics:
    def test_region_accounting(self):
        t = Trace(meta={})
        t.record_enter("a", 0.0, 1)
        t.record_leave("a", 2.0, 1)
        t.record_enter("b", 2.0, 1)
        t.record_leave("b", 3.0, 1)
        t.record_enter("a", 3.0, 1)
        t.record_leave("a", 7.0, 1)
        stats = trace_statistics(t)
        a = stats.region("a")
        assert a.visits == 2
        assert a.total_time_s == pytest.approx(6.0)
        assert a.min_time_s == pytest.approx(2.0)
        assert a.max_time_s == pytest.approx(4.0)
        assert a.mean_time_s == pytest.approx(3.0)
        assert stats.coverage() == pytest.approx(1.0)

    def test_metric_statistics(self):
        t = Trace(meta={})
        t.record_enter("a", 0.0, 1)
        t.record_leave("a", 3.0, 1)
        t.add_metric_stream(
            MetricStream(
                MetricDef("power", "W"),
                np.array([0.5, 1.5, 2.5]),
                np.array([10.0, 20.0, 30.0]),
            )
        )
        stats = trace_statistics(t)
        m = stats.metric("power")
        assert m.mean == pytest.approx(20.0)
        assert m.minimum == 10.0 and m.maximum == 30.0
        assert m.n_samples == 3

    def test_empty_metric_stream(self):
        t = Trace(meta={})
        t.add_metric_stream(
            MetricStream(MetricDef("x", ""), np.array([]), np.array([]))
        )
        stats = trace_statistics(t)
        assert stats.metric("x").n_samples == 0
        assert math.isnan(stats.metric("x").mean)

    def test_unknown_lookups(self):
        stats = trace_statistics(Trace(meta={}))
        with pytest.raises(KeyError):
            stats.region("nope")
        with pytest.raises(KeyError):
            stats.metric("nope")

    def test_on_real_trace(self, platform):
        run = platform.execute(get_workload("md"), 2400, 24)
        trace = trace_run(
            platform,
            run,
            EventSet(events=tuple(FIXED_COUNTERS)),
            sampling_interval_s=0.5,
        )
        stats = trace_statistics(trace)
        assert stats.coverage() > 0.95
        assert stats.duration_s == pytest.approx(run.total_duration_s)
        power_stats = stats.metric("power")
        truth = np.mean([p.power_breakdown.measured_w for p in run.phases])
        assert power_stats.mean == pytest.approx(truth, rel=0.15)
        text = stats.render()
        assert "md.phase0" in text and "power" in text
