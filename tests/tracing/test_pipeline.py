"""Tests for the tracer, plugins and phase-profile extraction —
exercised together because they form the acquisition data path."""

import numpy as np
import pytest

from repro.hardware import EventSet, FIXED_COUNTERS
from repro.tracing import (
    ApapiPlugin,
    PowerPlugin,
    ScorePTracer,
    VoltagePlugin,
    haecsim_profiles,
    postprocess_profiles,
    profile_trace,
    trace_run,
)
from repro.workloads import get_workload

EVENTS = EventSet(events=tuple(FIXED_COUNTERS) + ("PRF_DM",))


@pytest.fixture(scope="module")
def roco2_trace(platform):
    run = platform.execute(get_workload("compute"), 2400, 8)
    return run, trace_run(platform, run, EVENTS, sampling_interval_s=0.1)


@pytest.fixture(scope="module")
def spec_trace(platform):
    run = platform.execute(get_workload("md"), 2400, 24)
    return run, trace_run(platform, run, EVENTS, sampling_interval_s=0.5)


class TestTracer:
    def test_metadata(self, roco2_trace):
        run, trace = roco2_trace
        assert trace.meta["workload"] == "compute"
        assert trace.meta["frequency_mhz"] == 2400
        assert trace.meta["threads"] == 8

    def test_all_plugin_metrics_present(self, roco2_trace):
        _, trace = roco2_trace
        assert "power" in trace.metrics
        assert "voltage" in trace.metrics
        for name in EVENTS.events:
            assert f"papi:{name}" in trace.metrics

    def test_sample_grid_density(self, roco2_trace):
        run, trace = roco2_trace
        n = trace.metrics["power"].times_s.size
        expected = run.total_duration_s / 0.1
        assert abs(n - expected) <= 2

    def test_samples_within_run(self, roco2_trace):
        run, trace = roco2_trace
        for stream in trace.metrics.values():
            assert np.all(stream.times_s > 0)
            assert np.all(stream.times_s <= run.total_duration_s + 1e-9)

    def test_power_samples_near_truth(self, roco2_trace):
        run, trace = roco2_trace
        truth = run.phases[0].power_breakdown.measured_w
        mean = trace.metrics["power"].values.mean()
        assert mean == pytest.approx(truth, rel=0.02)

    def test_papi_rate_near_truth(self, roco2_trace):
        run, trace = roco2_trace
        truth_per_s = run.phases[0].state.rate("TOT_INS") * run.op.frequency_hz
        mean = trace.metrics["papi:TOT_INS"].values.mean()
        assert mean == pytest.approx(truth_per_s, rel=0.05)

    def test_tracer_validation(self, platform):
        with pytest.raises(ValueError):
            ScorePTracer(platform, [], sampling_interval_s=0.1)
        with pytest.raises(ValueError):
            ScorePTracer(platform, [PowerPlugin(platform)], sampling_interval_s=0.0)

    def test_duplicate_metric_plugins_rejected(self, platform):
        with pytest.raises(ValueError, match="twice"):
            ScorePTracer(
                platform, [PowerPlugin(platform), PowerPlugin(platform)]
            )


class TestPhaseProfiles:
    def test_profile_per_phase(self, spec_trace):
        run, trace = spec_trace
        profiles = postprocess_profiles(trace)
        long_phases = [p for p in run.phases if p.duration_s >= 0.5]
        assert len(profiles) == len(long_phases)

    def test_profile_contents(self, roco2_trace):
        run, trace = roco2_trace
        (profile,) = haecsim_profiles(trace)
        assert profile.workload == "compute"
        assert profile.active_threads == 8
        assert profile.power_w == pytest.approx(
            run.phases[0].power_breakdown.measured_w, rel=0.02
        )
        assert profile.voltage_v == pytest.approx(
            run.phases[0].true_voltage_v, abs=0.005
        )
        assert set(profile.counter_rates_per_s) == set(EVENTS.events)

    def test_rate_per_cycle_normalization(self, roco2_trace):
        run, trace = roco2_trace
        (profile,) = haecsim_profiles(trace)
        # TOT_CYC per cycle must equal the active core count.
        assert profile.rate_per_cycle("TOT_CYC") == pytest.approx(8, rel=0.02)

    def test_haecsim_rejects_spec_traces(self, spec_trace):
        _, trace = spec_trace
        with pytest.raises(ValueError, match="synthetic"):
            haecsim_profiles(trace)

    def test_missing_metadata_rejected(self, roco2_trace):
        _, trace = roco2_trace
        broken = type(trace)(meta={"workload": "x"})
        with pytest.raises(ValueError, match="metadata"):
            profile_trace(broken)

    def test_short_phases_dropped(self, platform):
        run = platform.execute(get_workload("md"), 2400, 24)
        trace = trace_run(platform, run, EVENTS, sampling_interval_s=0.5)
        profiles = profile_trace(trace, min_duration_s=1e9)
        assert profiles == []
