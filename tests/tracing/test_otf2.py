"""Unit tests for the OTF2-like trace format."""

import numpy as np
import pytest

from repro.tracing import MetricDef, MetricStream, Trace


def _stream(name="power", times=(0.5, 1.5, 2.5), values=(1.0, 2.0, 3.0)):
    return MetricStream(
        definition=MetricDef(name, "W"),
        times_s=np.asarray(times, dtype=float),
        values=np.asarray(values, dtype=float),
    )


class TestMetricStream:
    def test_window_mean(self):
        s = _stream()
        assert s.window_mean(0.0, 2.0) == pytest.approx(1.5)
        assert s.window_mean(0.0, 3.0) == pytest.approx(2.0)

    def test_empty_window_is_nan(self):
        s = _stream()
        assert np.isnan(s.window_mean(10.0, 11.0))

    def test_window_boundaries_half_open(self):
        s = _stream(times=(1.0, 2.0), values=(10.0, 20.0))
        # [1.0, 2.0) includes the sample at exactly 1.0, not 2.0.
        assert s.window_mean(1.0, 2.0) == pytest.approx(10.0)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="chronological"):
            _stream(times=(2.0, 1.0), values=(1.0, 2.0))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MetricStream(MetricDef("x", ""), np.arange(3.0), np.arange(4.0))

    def test_rejects_invalid_window(self):
        with pytest.raises(ValueError):
            _stream().window_mean(2.0, 1.0)


class TestTraceEvents:
    def test_balanced_regions(self):
        t = Trace()
        t.record_enter("a", 0.0, 4)
        t.record_leave("a", 1.0, 4)
        t.record_enter("b", 1.0, 8)
        t.record_leave("b", 3.0, 8)
        assert t.phase_intervals() == [
            ("a", 0.0, 1.0, 4),
            ("b", 1.0, 3.0, 8),
        ]
        assert t.duration_s == 3.0

    def test_rejects_unbalanced_leave(self):
        t = Trace()
        t.record_enter("a", 0.0, 1)
        with pytest.raises(ValueError, match="unbalanced"):
            t.record_leave("b", 1.0, 1)

    def test_rejects_time_travel(self):
        t = Trace()
        t.record_enter("a", 5.0, 1)
        with pytest.raises(ValueError, match="chronological"):
            t.record_leave("a", 1.0, 1)

    def test_unclosed_region_detected(self):
        t = Trace()
        t.record_enter("a", 0.0, 1)
        with pytest.raises(ValueError, match="unclosed"):
            t.phase_intervals()

    def test_duplicate_metric_rejected(self):
        t = Trace()
        t.add_metric_stream(_stream())
        with pytest.raises(ValueError, match="duplicate"):
            t.add_metric_stream(_stream())


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        t = Trace(meta={"workload": "x", "frequency_mhz": 2400})
        t.record_enter("p0", 0.0, 2)
        t.record_leave("p0", 2.0, 2)
        t.add_metric_stream(_stream())
        path = tmp_path / "trace.jsonl"
        t.write(path)

        back = Trace.read(path)
        assert back.meta["workload"] == "x"
        assert back.meta["frequency_mhz"] == 2400
        assert back.phase_intervals() == t.phase_intervals()
        s = back.metrics["power"]
        assert np.array_equal(s.times_s, np.array([0.5, 1.5, 2.5]))
        assert np.array_equal(s.values, np.array([1.0, 2.0, 3.0]))
        assert s.definition.unit == "W"

    def test_read_missing_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "event", "kind": "enter", "region": "a", "time_s": 0, "active_threads": 1}\n')
        with pytest.raises(ValueError, match="meta"):
            Trace.read(path)

    def test_read_samples_for_undefined_metric(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"record": "meta"}\n'
            '{"record": "metric_samples", "name": "ghost", "times_s": [], "values": []}\n'
        )
        with pytest.raises(ValueError, match="undefined metric"):
            Trace.read(path)

    def test_unknown_record_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "meta"}\n{"record": "wat"}\n')
        with pytest.raises(ValueError, match="unknown record"):
            Trace.read(path)
