"""Property-based tests (hypothesis) for the statistics substrate.

These pin down the algebraic invariants the rest of the pipeline leans
on: OLS optimality and invariances, VIF bounds, correlation bounds, and
metric identities.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats import (
    fit_ols,
    mape,
    mean_vif,
    pearson,
    r2_score,
    rmse,
    variance_inflation_factor,
)

# Well-conditioned float strategies.
_finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
_positive = st.floats(min_value=1.0, max_value=1e3, allow_nan=False)


def _design(n_rows=st.integers(12, 40), n_cols=st.integers(1, 3)):
    return n_rows.flatmap(
        lambda n: n_cols.flatmap(
            lambda k: hnp.arrays(
                np.float64, (n, k), elements=_finite
            )
        )
    )


@st.composite
def design_and_target(draw):
    x = draw(_design())
    y = draw(
        hnp.arrays(np.float64, (x.shape[0],), elements=_finite)
    )
    # Skip degenerate designs (constant target breaks centered R²
    # interpretation; collinear designs are tested separately).
    assume(np.ptp(y) > 1e-6)
    assume(all(np.ptp(x[:, j]) > 1e-6 for j in range(x.shape[1])))
    return x, y


class TestOLSProperties:
    @given(design_and_target())
    @settings(max_examples=60, deadline=None)
    def test_r2_in_unit_interval_and_adj_below(self, data):
        x, y = data
        res = fit_ols(y, x)
        assert -1e-9 <= res.rsquared <= 1.0 + 1e-9
        assert res.rsquared_adj <= res.rsquared + 1e-9

    @given(design_and_target())
    @settings(max_examples=60, deadline=None)
    def test_residuals_orthogonal_to_fitted(self, data):
        """OLS optimality: residuals ⟂ column space of the design."""
        x, y = data
        res = fit_ols(y, x)
        scale = max(np.abs(y).max(), 1.0) * max(np.abs(x).max(), 1.0)
        assert abs(float(res.residuals @ res.fitted_values)) <= 1e-6 * scale**2 * len(y)

    @given(design_and_target(), st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_coefficient_equivariance_under_target_scaling(self, data, c):
        x, y = data
        # Scale-equivariance of the *unique* OLS solution: skip
        # rank-deficient designs where the minimum-norm solution has
        # weaker guarantees.
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        norms = np.linalg.norm(design, axis=0)
        sv = np.linalg.svd(design / norms, compute_uv=False)
        assume(sv[-1] > 1e-6)
        res1 = fit_ols(y, x)
        res2 = fit_ols(c * y, x)
        scale = max(np.abs(res1.params).max(), 1.0)
        assert np.allclose(
            res2.params, c * res1.params, rtol=1e-4, atol=1e-4 * scale
        )
        assert res2.rsquared == pytest.approx(res1.rsquared, abs=1e-6)

    @given(design_and_target())
    @settings(max_examples=40, deadline=None)
    def test_adding_regressor_never_lowers_r2(self, data):
        x, y = data
        extra = np.linspace(0.0, 1.0, x.shape[0])[:, None] ** 2
        r2_small = fit_ols(y, x).rsquared
        r2_big = fit_ols(y, np.hstack([x, extra])).rsquared
        assert r2_big >= r2_small - 1e-9


class TestVIFProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(15, 40), st.integers(2, 4)),
            elements=_finite,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_vif_at_least_one(self, x):
        assume(all(np.ptp(x[:, j]) > 1e-6 for j in range(x.shape[1])))
        for j in range(x.shape[1]):
            assert variance_inflation_factor(x, j) >= 1.0 - 1e-9

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(15, 40), st.integers(2, 4)),
            elements=_finite,
        ),
        st.floats(0.5, 20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_vif_invariant_to_column_scaling(self, x, c):
        assume(all(np.ptp(x[:, j]) > 1e-6 for j in range(x.shape[1])))
        scaled = x.copy()
        scaled[:, 0] *= c
        v1 = variance_inflation_factor(x, 0)
        v2 = variance_inflation_factor(scaled, 0)
        assume(v1 < 1e9)  # skip near-singular cases
        assert v2 == pytest.approx(v1, rel=1e-4)


class TestCorrelationProperties:
    @given(
        hnp.arrays(np.float64, st.integers(3, 60), elements=_finite),
        hnp.arrays(np.float64, st.integers(3, 60), elements=_finite),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounded_and_symmetric(self, x, y):
        n = min(len(x), len(y))
        assume(n >= 2)
        x, y = x[:n], y[:n]
        r = pearson(x, y)
        assert -1.0 <= r <= 1.0
        assert pearson(y, x) == pytest.approx(r, abs=1e-12)

    @given(hnp.arrays(np.float64, st.integers(3, 60), elements=_finite))
    @settings(max_examples=60, deadline=None)
    def test_self_correlation(self, x):
        assume(np.ptp(x) > 1e-6)
        assert pearson(x, x) == pytest.approx(1.0, abs=1e-9)


class TestMetricProperties:
    @given(
        hnp.arrays(np.float64, st.integers(1, 50), elements=_positive),
        hnp.arrays(np.float64, st.integers(1, 50), elements=_positive),
    )
    @settings(max_examples=80, deadline=None)
    def test_mape_nonnegative_and_zero_iff_equal(self, a, p):
        n = min(len(a), len(p))
        a, p = a[:n], p[:n]
        assert mape(a, p) >= 0.0
        assert mape(a, a) == 0.0

    @given(
        hnp.arrays(np.float64, st.integers(2, 50), elements=_positive),
        st.floats(1.01, 3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_mape_scales_with_relative_error(self, a, factor):
        """Predicting factor×actual gives exactly (factor-1)×100 %."""
        assert mape(a, factor * a) == pytest.approx(
            (factor - 1.0) * 100.0, rel=1e-9
        )

    @given(
        hnp.arrays(np.float64, st.integers(2, 50), elements=_positive),
    )
    @settings(max_examples=60, deadline=None)
    def test_r2_score_of_exact_prediction(self, a):
        assume(np.ptp(a) > 1e-9)
        assert r2_score(a, a) == pytest.approx(1.0)
        assert rmse(a, a) == 0.0
