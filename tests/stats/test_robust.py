"""Huber IRLS robust regression: drop-in behavior, outlier resistance,
guarded-solver integration."""

import numpy as np
import pytest

from repro.stats import fit_ols, fit_robust, mape
from repro.stats.robust import HUBER_C, huber_weights


def _clean_data(rng, n=300, k=3, noise=0.3):
    x = rng.normal(size=(n, k))
    beta = np.array([1.5, -2.0, 0.7][:k])
    y = 2.0 + x @ beta + rng.normal(scale=noise, size=n)
    return x, y, beta


def _contaminate(rng, y, fraction=0.05, magnitude=40.0):
    """Inject gross positive outliers into a fraction of the rows."""
    n_bad = max(int(round(fraction * y.shape[0])), 1)
    idx = rng.choice(y.shape[0], size=n_bad, replace=False)
    y = y.copy()
    y[idx] += magnitude
    return y, idx


class TestHuberWeights:
    def test_core_weight_is_one(self):
        r = np.array([0.0, 0.5, -0.5])
        assert np.allclose(huber_weights(r, scale=1.0), 1.0)

    def test_tail_weight_decays(self):
        w = huber_weights(np.array([10.0]), scale=1.0)
        assert w[0] == pytest.approx(HUBER_C / 10.0)

    def test_zero_scale_gives_unit_weights(self):
        assert np.allclose(huber_weights(np.array([3.0, -9.0]), 0.0), 1.0)


class TestDropIn:
    def test_matches_ols_on_clean_data(self, rng):
        x, y, beta = _clean_data(rng, noise=0.05)
        robust = fit_robust(y, x)
        ols = fit_ols(y, x)
        assert np.allclose(robust.params, ols.params, atol=0.02)
        assert robust.rsquared == pytest.approx(ols.rsquared, abs=0.01)

    def test_result_shape_is_olsresult(self, rng):
        x, y, _ = _clean_data(rng)
        res = fit_robust(y, x, exog_names=["a", "b", "c"])
        assert res.exog_names == ("const", "a", "b", "c")
        assert res.params.shape == (4,)
        assert res.bse.shape == (4,)
        assert res.fitted_values.shape == y.shape
        assert np.allclose(res.fitted_values + res.residuals, y)
        pred = res.predict(x)
        assert np.allclose(pred, res.fitted_values)

    def test_diagnostics_record_irls(self, rng):
        x, y, _ = _clean_data(rng)
        res = fit_robust(y, x)
        assert res.diagnostics is not None
        assert res.diagnostics.method == "huber-irls"
        assert res.diagnostics.converged
        assert res.diagnostics.n_iter >= 1
        assert res.diagnostics.fallback == "none"

    def test_deterministic(self, rng):
        x, y, _ = _clean_data(rng)
        a = fit_robust(y, x)
        b = fit_robust(y, x)
        assert np.array_equal(a.params, b.params)
        assert a.rsquared == b.rsquared


class TestOutlierResistance:
    def test_outliers_move_huber_less_than_ols(self, rng):
        x, y, beta = _clean_data(rng, noise=0.2)
        y_bad, _ = _contaminate(rng, y, fraction=0.05)
        robust = fit_robust(y_bad, x)
        ols = fit_ols(y_bad, x)
        err_robust = np.abs(robust.params[1:] - beta).max()
        err_ols = np.abs(ols.params[1:] - beta).max()
        assert err_robust <= err_ols

    def test_five_percent_outliers_huber_beats_ols_mape(self, rng):
        """The PR acceptance regression: with 5% injected outliers the
        robust fit must achieve strictly lower clean-holdout MAPE."""
        x, y, _ = _clean_data(rng, n=400, noise=0.2)
        # Keep a clean holdout; contaminate only the training half.
        x_train, x_test = x[:300], x[300:]
        y_train, y_test = y[:300], y[300:]
        y_train_bad, _ = _contaminate(rng, y_train, fraction=0.05)
        # Shift the target up so MAPE's denominator stays well away
        # from zero (power readings are strictly positive, too).
        offset = 50.0
        robust = fit_robust(y_train_bad + offset, x_train)
        ols = fit_ols(y_train_bad + offset, x_train)
        mape_robust = mape(y_test + offset, robust.predict(x_test))
        mape_ols = mape(y_test + offset, ols.predict(x_test))
        assert mape_robust < mape_ols

    def test_rsquared_on_original_scale(self, rng):
        """The reported R² must describe the unweighted data, not the
        IRLS-reweighted system (which would flatter the fit)."""
        x, y, _ = _clean_data(rng, noise=0.2)
        y_bad, _ = _contaminate(rng, y, fraction=0.1)
        res = fit_robust(y_bad, x)
        resid = y_bad - res.fitted_values
        ss_res = float(resid @ resid)
        centered = y_bad - y_bad.mean()
        ss_tot = float(centered @ centered)
        assert res.rsquared == pytest.approx(1.0 - ss_res / ss_tot)


class TestDegradedDesigns:
    def test_collinear_design_takes_guarded_fallback(self, rng):
        x = rng.normal(size=(100, 2))
        x = np.hstack([x, x[:, :1] * 2.0])
        y = x[:, 0] + rng.normal(size=100) * 0.1
        res = fit_robust(y, x)
        assert np.isfinite(res.params).all()
        assert res.diagnostics.fallback in ("ridge", "pinv")
        assert any("rank" in w or "ill-conditioned" in w
                   for w in res.diagnostics.warnings)

    def test_underdetermined_raises_typed(self, rng):
        with pytest.raises(ValueError, match="underdetermined"):
            fit_robust(rng.normal(size=3), rng.normal(size=(3, 5)))

    def test_nonfinite_raises_typed(self, rng):
        x = rng.normal(size=(20, 2))
        y = rng.normal(size=20)
        y[0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            fit_robust(y, x)

    def test_exact_interpolation_terminates(self, rng):
        """More than half the residuals exactly zero → MAD scale 0;
        the loop must stop converged, not divide by zero."""
        x = rng.normal(size=(50, 2))
        y = x @ np.array([1.0, -1.0])
        res = fit_robust(y, x, intercept=False)
        assert res.diagnostics.converged
        assert np.allclose(res.params, [1.0, -1.0], atol=1e-8)


class TestParameterValidation:
    def test_rejects_nonpositive_c(self, rng):
        x, y, _ = _clean_data(rng)
        with pytest.raises(ValueError, match="positive"):
            fit_robust(y, x, c=0.0)

    def test_rejects_zero_max_iter(self, rng):
        x, y, _ = _clean_data(rng)
        with pytest.raises(ValueError, match="max_iter"):
            fit_robust(y, x, max_iter=0)
