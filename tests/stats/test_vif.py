"""Unit tests for the variance inflation factor."""

import numpy as np
import pytest

from repro.stats import mean_vif, variance_inflation_factor, vif_table
from repro.stats.vif import VIF_PROBLEM_THRESHOLD


class TestVIF:
    def test_independent_columns_vif_near_one(self, rng):
        x = rng.normal(size=(2000, 4))
        for j in range(4):
            assert variance_inflation_factor(x, j) == pytest.approx(1.0, abs=0.02)

    def test_known_correlation_vif(self, rng):
        """For two regressors with correlation rho, VIF = 1/(1-rho²)."""
        rho = 0.9
        n = 200_000
        a = rng.normal(size=n)
        b = rho * a + np.sqrt(1 - rho**2) * rng.normal(size=n)
        x = np.column_stack([a, b])
        expected = 1.0 / (1.0 - rho**2)
        assert variance_inflation_factor(x, 0) == pytest.approx(expected, rel=0.02)

    def test_perfect_collinearity_is_huge(self, rng):
        a = rng.normal(size=100)
        x = np.column_stack([a, 2.0 * a, rng.normal(size=100)])
        assert variance_inflation_factor(x, 0) > 1e6

    def test_linear_combination_collinearity(self, rng):
        """A column equal to the sum of two others inflates all three —
        the CA_SNP mechanism of Section IV-A."""
        a = rng.normal(size=500)
        b = rng.normal(size=500)
        x = np.column_stack([a, b, a + b + rng.normal(scale=0.01, size=500)])
        assert mean_vif(x) > VIF_PROBLEM_THRESHOLD

    def test_single_column_vif_is_one(self, rng):
        x = rng.normal(size=(50, 1))
        assert variance_inflation_factor(x, 0) == 1.0

    def test_constant_column_vif_is_one(self, rng):
        x = np.column_stack([np.full(50, 3.0), rng.normal(size=50)])
        assert variance_inflation_factor(x, 0) == 1.0

    def test_out_of_range_column(self, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(IndexError):
            variance_inflation_factor(x, 2)


class TestMeanVIF:
    def test_single_column_is_nan(self, rng):
        # The paper prints "n/a" for the first selection step.
        assert np.isnan(mean_vif(rng.normal(size=(50, 1))))

    def test_mean_of_per_column_vifs(self, rng):
        x = rng.normal(size=(500, 3))
        per_col = [variance_inflation_factor(x, j) for j in range(3)]
        assert mean_vif(x) == pytest.approx(np.mean(per_col))

    def test_grows_with_added_collinear_column(self, rng):
        a = rng.normal(size=(300, 3))
        base = mean_vif(a)
        extended = np.hstack(
            [a, (a[:, :1] + a[:, 1:2] + rng.normal(scale=0.05, size=(300, 1)))]
        )
        assert mean_vif(extended) > base


class TestVIFTable:
    def test_names_and_values(self, rng):
        x = rng.normal(size=(200, 2))
        table = vif_table(x, names=["one", "two"])
        assert set(table) == {"one", "two"}
        assert all(v >= 1.0 - 1e-9 for v in table.values())

    def test_default_names(self, rng):
        table = vif_table(rng.normal(size=(100, 3)))
        assert set(table) == {"x0", "x1", "x2"}

    def test_name_count_mismatch(self, rng):
        with pytest.raises(ValueError):
            vif_table(rng.normal(size=(100, 3)), names=["a"])


class TestInfinityConvention:
    """Perfect collinearity reports exactly inf — cleanly, with no
    ZeroDivisionError and no runtime warning spam."""

    def test_perfect_collinearity_is_exactly_inf(self, rng):
        a = rng.normal(size=100)
        x = np.column_stack([a, 2.0 * a, rng.normal(size=100)])
        assert np.isinf(variance_inflation_factor(x, 0))
        assert np.isinf(variance_inflation_factor(x, 1))

    def test_no_warnings_emitted(self, rng):
        import warnings as _warnings

        a = rng.normal(size=100)
        x = np.column_stack([a, a])
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert np.isinf(variance_inflation_factor(x, 0))

    def test_mean_vif_is_inf_with_degenerate_column(self, rng):
        a = rng.normal(size=200)
        x = np.column_stack([a, -a, rng.normal(size=200)])
        assert np.isinf(mean_vif(x))

    def test_inf_exceeds_threshold(self, rng):
        a = rng.normal(size=50)
        x = np.column_stack([a, 3.0 * a])
        assert variance_inflation_factor(x, 0) > VIF_PROBLEM_THRESHOLD

    def test_vif_table_carries_inf(self, rng):
        a = rng.normal(size=100)
        x = np.column_stack([a, 2.0 * a, rng.normal(size=100)])
        table = vif_table(x, names=["a", "a2", "c"])
        assert np.isinf(table["a"]) and np.isinf(table["a2"])
        assert np.isfinite(table["c"])

    def test_collinear_columns_names_offenders(self, rng):
        from repro.stats import collinear_columns

        a = rng.normal(size=100)
        x = np.column_stack([a, 2.0 * a, rng.normal(size=100)])
        assert collinear_columns(x, names=["a", "a2", "c"]) == ("a", "a2")

    def test_collinear_columns_empty_when_clean(self, rng):
        from repro.stats import collinear_columns

        assert collinear_columns(rng.normal(size=(200, 3))) == ()


class TestSelectionVifRegression:
    """Pin the reproduced Table I / Table IV mean-VIF trajectories.

    The correlation-matrix VIF rewrite (shared pseudo-inverse in
    ``vifs_from_correlation``) and the fast-fit memoized VIF kernel
    must keep reproducing exactly the per-step mean VIFs the repository
    has always printed for the paper's two selection tables.  The pins
    are this repository's reproduced values (the simulated platform
    does not replay the paper's hardware numbers bit-for-bit), in the
    Table I / Table IV shape: (counter, mean VIF), first step n/a.
    """

    TABLE1_STEPS = [
        ("CA_SNP", None),
        ("FUL_ICY", 1.0055209783155437),
        ("MEM_WCY", 1.7156861255604632),
        ("RES_STL", 1.8743863305250252),
        ("L3_TCR", 4.932297388319301),
        ("STL_ICY", 4.87400328991149),
    ]
    TABLE4_STEPS = [
        ("SR_INS", None),
        ("PRF_DM", 1.0034522509746124),
        ("FUL_ICY", 2.3785839089915646),
        ("CA_CLN", 4.27473922148161),
        ("STL_ICY", 4.278299172406247),
        ("BR_MSP", 4.570522372097128),
    ]

    @staticmethod
    def assert_trajectory(result, expected):
        assert [s.counter for s in result.steps] == [c for c, _ in expected]
        for step, (_, vif) in zip(result.steps, expected):
            if vif is None:
                assert np.isnan(step.mean_vif)
            else:
                assert step.mean_vif == pytest.approx(vif, rel=1e-9)

    def test_table1_all_workloads(self, selection_dataset):
        from repro.core.selection import select_events

        self.assert_trajectory(
            select_events(selection_dataset, 6), self.TABLE1_STEPS
        )

    def test_table4_synthetic_only(self, selection_dataset):
        from repro.core.selection import select_events

        synth = selection_dataset.filter(suite="roco2")
        self.assert_trajectory(
            select_events(synth, 6), self.TABLE4_STEPS
        )
