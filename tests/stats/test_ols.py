"""Unit tests for the OLS implementation (replaces statsmodels)."""

import numpy as np
import pytest

from repro.stats import fit_ols


def _make_data(rng, n=300, k=3, noise=0.5, beta=None, intercept=2.0):
    x = rng.normal(size=(n, k))
    beta = np.asarray(beta if beta is not None else [1.5, -2.0, 0.7][:k])
    y = intercept + x @ beta + rng.normal(scale=noise, size=n)
    return x, y, beta, intercept


class TestCoefficients:
    def test_recovers_known_coefficients(self, rng):
        x, y, beta, intercept = _make_data(rng, noise=0.01)
        res = fit_ols(y, x)
        assert res.params[0] == pytest.approx(intercept, abs=0.01)
        assert np.allclose(res.params[1:], beta, atol=0.01)

    def test_exact_fit_noiseless(self, rng):
        x, y, _, _ = _make_data(rng, noise=0.0)
        res = fit_ols(y, x)
        assert res.rsquared == pytest.approx(1.0, abs=1e-12)
        assert np.allclose(res.residuals, 0.0, atol=1e-9)

    def test_no_intercept(self, rng):
        x = rng.normal(size=(100, 2))
        y = x @ np.array([3.0, -1.0])
        res = fit_ols(y, x, intercept=False)
        assert res.params.shape == (2,)
        assert np.allclose(res.params, [3.0, -1.0], atol=1e-10)

    def test_fitted_plus_residuals_is_y(self, rng):
        x, y, _, _ = _make_data(rng)
        res = fit_ols(y, x)
        assert np.allclose(res.fitted_values + res.residuals, y)

    def test_residuals_orthogonal_to_design(self, rng):
        x, y, _, _ = _make_data(rng)
        res = fit_ols(y, x)
        # Normal equations: X'u = 0 (including the intercept column).
        assert abs(res.residuals.sum()) < 1e-8
        assert np.allclose(x.T @ res.residuals, 0.0, atol=1e-7)


class TestRSquared:
    def test_r2_between_zero_and_one_for_centered_model(self, rng):
        x, y, _, _ = _make_data(rng, noise=5.0)
        res = fit_ols(y, x)
        assert 0.0 <= res.rsquared <= 1.0

    def test_adj_r2_below_r2(self, rng):
        x, y, _, _ = _make_data(rng, noise=2.0)
        res = fit_ols(y, x)
        assert res.rsquared_adj <= res.rsquared

    def test_centered_r2_with_explicit_constant_column(self, rng):
        """An explicit ones column must trigger centered R² (Equation 1
        carries its constant as delta*Z)."""
        x, y, _, _ = _make_data(rng, noise=2.0)
        x_with_const = np.hstack([x, np.ones((x.shape[0], 1))])
        res_implicit = fit_ols(y, x)
        res_explicit = fit_ols(y, x_with_const, intercept=False)
        assert res_explicit.rsquared == pytest.approx(
            res_implicit.rsquared, abs=1e-10
        )

    def test_uncentered_r2_without_constant(self, rng):
        x = rng.uniform(0.0, 1.0, size=(50, 1))
        y = 10.0 + x[:, 0]
        res = fit_ols(y, x, intercept=False)
        # Without any constant the R² is uncentered: it stays clearly
        # positive here, whereas the centered version (SS_tot around the
        # mean, var(y) ≈ 1/12) would be hugely negative.
        ss_res = float(res.residuals @ res.residuals)
        centered = 1.0 - ss_res / float(((y - y.mean()) ** 2).sum())
        assert res.rsquared > 0.5
        assert centered < 0.0

    def test_irrelevant_regressors_drop_adjusted_r2(self, rng):
        x, y, _, _ = _make_data(rng, k=1, beta=[1.0], noise=2.0)
        junk = rng.normal(size=(x.shape[0], 10))
        res_small = fit_ols(y, x)
        res_big = fit_ols(y, np.hstack([x, junk]))
        assert res_big.rsquared >= res_small.rsquared  # R2 can't drop
        # Adjusted R2 penalizes the junk columns.
        assert res_big.rsquared_adj < res_big.rsquared


class TestRobustErrors:
    def test_hc3_inflates_se_under_heteroscedasticity(self, rng):
        n = 2000
        x = rng.uniform(1.0, 10.0, size=(n, 1))
        # Error variance grows with x — HC3 should exceed nonrobust SEs.
        y = 2.0 + 3.0 * x[:, 0] + rng.normal(size=n) * x[:, 0]
        robust = fit_ols(y, x, cov_type="HC3")
        plain = fit_ols(y, x, cov_type="nonrobust")
        assert robust.bse[1] > plain.bse[1]

    def test_hc_variants_agree_asymptotically(self, rng):
        x, y, _, _ = _make_data(rng, n=5000, noise=1.0)
        results = {
            kind: fit_ols(y, x, cov_type=kind).bse
            for kind in ("HC0", "HC1", "HC2", "HC3")
        }
        for kind in ("HC1", "HC2", "HC3"):
            assert np.allclose(results["HC0"], results[kind], rtol=0.02)

    def test_hc3_largest_of_hc_family_small_sample(self, rng):
        x, y, _, _ = _make_data(rng, n=25, noise=2.0)
        bse = {
            kind: fit_ols(y, x, cov_type=kind).bse.sum()
            for kind in ("HC0", "HC2", "HC3")
        }
        assert bse["HC3"] >= bse["HC2"] >= bse["HC0"]

    def test_tvalues_and_pvalues(self, rng):
        x, y, _, _ = _make_data(rng, noise=0.1)
        res = fit_ols(y, x)
        # Strong true effects: tiny p-values.
        assert np.all(res.pvalues[1:] < 1e-6)
        assert np.all(np.abs(res.tvalues[1:]) > 10)

    def test_conf_int_contains_truth(self, rng):
        x, y, beta, intercept = _make_data(rng, n=2000, noise=0.5)
        res = fit_ols(y, x)
        ci = res.conf_int(alpha=0.01)
        truth = np.concatenate([[intercept], beta])
        assert np.all(ci[:, 0] <= truth) and np.all(truth <= ci[:, 1])

    def test_conf_int_invalid_alpha(self, rng):
        x, y, _, _ = _make_data(rng)
        res = fit_ols(y, x)
        with pytest.raises(ValueError):
            res.conf_int(alpha=1.5)


class TestPredict:
    def test_predict_matches_fitted_on_training_data(self, rng):
        x, y, _, _ = _make_data(rng)
        res = fit_ols(y, x)
        assert np.allclose(res.predict(x), res.fitted_values)

    def test_predict_wrong_width_raises(self, rng):
        x, y, _, _ = _make_data(rng, k=3)
        res = fit_ols(y, x)
        with pytest.raises(ValueError, match="columns"):
            res.predict(x[:, :2])


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_ols(np.array([]), np.empty((0, 2)))

    def test_rejects_row_mismatch(self, rng):
        with pytest.raises(ValueError, match="rows"):
            fit_ols(rng.normal(size=10), rng.normal(size=(11, 2)))

    def test_rejects_nonfinite(self, rng):
        x = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        y[3] = np.nan
        with pytest.raises(ValueError, match="finite"):
            fit_ols(y, x)

    def test_rejects_underdetermined(self, rng):
        with pytest.raises(ValueError, match="underdetermined"):
            fit_ols(rng.normal(size=3), rng.normal(size=(3, 5)))

    def test_rejects_unknown_cov_type(self, rng):
        x, y, _, _ = _make_data(rng)
        with pytest.raises(ValueError, match="cov_type"):
            fit_ols(y, x, cov_type="HC9")

    def test_rejects_bad_name_count(self, rng):
        x, y, _, _ = _make_data(rng, k=3)
        with pytest.raises(ValueError, match="names"):
            fit_ols(y, x, exog_names=["a", "b"])

    def test_collinear_design_does_not_crash(self, rng):
        """Perfectly collinear columns must yield a (minimum-norm)
        solution, as the VIF stress cases require."""
        x = rng.normal(size=(100, 2))
        x = np.hstack([x, (x[:, :1] * 2.0)])  # third = 2 * first
        y = x[:, 0] + rng.normal(size=100) * 0.1
        res = fit_ols(y, x)
        assert np.isfinite(res.params).all()
        assert res.rsquared > 0.9


class TestSummary:
    def test_summary_contains_names_and_stats(self, rng):
        x, y, _, _ = _make_data(rng)
        res = fit_ols(y, x, exog_names=["alpha", "beta", "gamma"])
        text = res.summary()
        for token in ("const", "alpha", "beta", "gamma", "R2=", "HC3"):
            assert token in text


class TestTypedErrorsAndDiagnostics:
    """DESIGN.md §10: degraded designs fit with a diagnosis or fail
    with a typed, actionable error — never a bare LinAlgError."""

    def test_underdetermined_is_typed(self, rng):
        from repro.stats import UnderdeterminedFitError

        with pytest.raises(UnderdeterminedFitError):
            fit_ols(rng.normal(size=3), rng.normal(size=(3, 5)))

    def test_nonfinite_is_typed(self, rng):
        from repro.stats import NonFiniteInputError

        x = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        x[2, 1] = np.inf
        with pytest.raises(NonFiniteInputError):
            fit_ols(y, x)

    def test_typed_errors_are_valueerrors(self):
        from repro.stats import (
            EstimationError,
            NonFiniteInputError,
            UnderdeterminedFitError,
        )

        assert issubclass(EstimationError, ValueError)
        assert issubclass(NonFiniteInputError, EstimationError)
        assert issubclass(UnderdeterminedFitError, EstimationError)

    def test_never_raises_linalgerror(self, rng):
        """Pathological designs (all-zero, duplicated, huge spread) must
        not leak numpy.linalg.LinAlgError."""
        n = 40
        y = rng.normal(size=n)
        designs = [
            np.zeros((n, 3)),
            np.tile(rng.normal(size=(n, 1)), (1, 4)),
            np.column_stack([np.ones(n) * 1e12, np.ones(n) * 1e-12]),
        ]
        for x in designs:
            try:
                res = fit_ols(y, x)
            except ValueError:
                continue  # typed rejection is fine
            assert np.isfinite(res.params).all()

    def test_clean_fit_has_clean_diagnostics(self, rng):
        x, y, _, _ = _make_data(rng)
        res = fit_ols(y, x)
        d = res.diagnostics
        assert d is not None
        assert d.method == "ols"
        assert d.clean
        assert not d.rank_deficient
        assert d.fallback == "none"
        assert np.isfinite(d.condition_number)

    def test_rank_deficient_diagnosed_with_fallback(self, rng):
        x = rng.normal(size=(100, 2))
        x = np.hstack([x, x[:, :1] * 2.0])
        y = x[:, 0] + rng.normal(size=100) * 0.1
        res = fit_ols(y, x)
        d = res.diagnostics
        assert d.rank_deficient
        assert d.fallback in ("ridge", "pinv")
        assert not d.clean
        assert d.warnings
        assert "fallback" in d.summary()

    def test_constant_column_design_fits(self, rng):
        """A constant (non-intercept) column plus intercept is rank
        deficient; the fallback must still give finite coefficients."""
        n = 80
        x = np.column_stack([np.full(n, 4.0), rng.normal(size=n)])
        y = 1.0 + 2.0 * x[:, 1] + rng.normal(size=n) * 0.1
        res = fit_ols(y, x)  # intercept + constant column collide
        assert np.isfinite(res.params).all()
        assert res.diagnostics.rank_deficient
        assert res.rsquared > 0.9

    def test_exact_n_equals_p_fits(self, rng):
        x = rng.normal(size=(3, 2))
        y = rng.normal(size=3)
        res = fit_ols(y, x)  # with intercept: n == k == 3
        assert np.isfinite(res.params).all()

    def test_severely_ill_conditioned_takes_ridge(self, rng):
        base = rng.normal(size=(200, 1))
        x = np.hstack([base, base + rng.normal(scale=1e-13, size=(200, 1))])
        y = base[:, 0] + rng.normal(size=200) * 0.1
        res = fit_ols(y, x)
        d = res.diagnostics
        assert np.isfinite(res.params).all()
        assert d.fallback != "none" or d.condition_number < 1e10
