"""Unit tests for the error metrics."""

import numpy as np
import pytest

from repro.stats import bias, mae, mape, max_ape, r2_score, rmse


class TestMape:
    def test_exact_prediction_is_zero(self):
        a = np.array([100.0, 200.0])
        assert mape(a, a) == 0.0

    def test_known_value(self):
        actual = np.array([100.0, 200.0])
        predicted = np.array([110.0, 180.0])  # 10 % and 10 %
        assert mape(actual, predicted) == pytest.approx(10.0)

    def test_asymmetric_in_arguments(self):
        a = np.array([100.0])
        p = np.array([150.0])
        assert mape(a, p) != mape(p, a)

    def test_zero_actual_raises(self):
        with pytest.raises(ValueError, match="zero"):
            mape(np.array([0.0, 1.0]), np.array([1.0, 1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mape(np.ones(3), np.ones(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mape(np.array([]), np.array([]))


class TestOtherMetrics:
    def test_max_ape_is_worst_case(self):
        actual = np.array([100.0, 100.0])
        predicted = np.array([101.0, 150.0])
        assert max_ape(actual, predicted) == pytest.approx(50.0)
        assert max_ape(actual, predicted) >= mape(actual, predicted)

    def test_mae_rmse_relation(self, rng):
        a = rng.normal(size=100) + 10
        p = a + rng.normal(size=100)
        assert rmse(a, p) >= mae(a, p)  # Jensen

    def test_rmse_known(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_bias_sign_convention(self):
        actual = np.array([100.0, 100.0])
        over = np.array([110.0, 120.0])
        # Positive bias = overestimation (Fig. 5a reading).
        assert bias(actual, over) == pytest.approx(15.0)
        assert bias(actual, actual - 5) == pytest.approx(-5.0)


class TestR2Score:
    def test_perfect(self, rng):
        a = rng.normal(size=50)
        assert r2_score(a, a) == pytest.approx(1.0)

    def test_mean_prediction_is_zero(self, rng):
        a = rng.normal(size=500)
        assert r2_score(a, np.full(500, a.mean())) == pytest.approx(0.0, abs=1e-12)

    def test_worse_than_mean_is_negative(self, rng):
        a = rng.normal(size=100)
        assert r2_score(a, -a * 3) < 0.0

    def test_constant_actual_returns_zero(self):
        assert r2_score(np.full(10, 5.0), np.arange(10.0)) == 0.0


class TestOnZero:
    def test_default_raises_on_zero_actual(self):
        with pytest.raises(ValueError, match="MAPE undefined"):
            mape(np.array([0.0, 1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError, match="APE undefined"):
            max_ape(np.array([0.0, 1.0]), np.array([1.0, 1.0]))

    def test_skip_drops_zero_actual_rows(self):
        actual = np.array([0.0, 100.0, 200.0])
        predicted = np.array([50.0, 110.0, 180.0])
        assert mape(actual, predicted, on_zero="skip") == pytest.approx(10.0)
        assert max_ape(actual, predicted, on_zero="skip") == pytest.approx(10.0)

    def test_all_zero_still_raises_in_skip_mode(self):
        with pytest.raises(ValueError, match="every actual value is zero"):
            mape(np.zeros(3), np.ones(3), on_zero="skip")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_zero"):
            mape(np.ones(3), np.ones(3), on_zero="ignore")
