"""Unit tests for the cross-validation machinery."""

import numpy as np
import pytest

from repro.stats import KFold, LeaveOneGroupOut, cross_validate


class TestKFold:
    def test_partitions_all_samples(self):
        n = 103
        seen = []
        for train, test in KFold(10, seed=1).split(n):
            seen.extend(test.tolist())
            # Train and test are disjoint and cover everything.
            assert set(train) | set(test) == set(range(n))
            assert not set(train) & set(test)
        assert sorted(seen) == list(range(n))

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in KFold(10, seed=0).split(105)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 105

    def test_shuffle_depends_on_seed(self):
        a = [test.tolist() for _, test in KFold(5, seed=1).split(50)]
        b = [test.tolist() for _, test in KFold(5, seed=2).split(50)]
        assert a != b

    def test_same_seed_reproducible(self):
        a = [test.tolist() for _, test in KFold(5, seed=7).split(50)]
        b = [test.tolist() for _, test in KFold(5, seed=7).split(50)]
        assert a == b

    def test_no_shuffle_is_contiguous(self):
        folds = [test for _, test in KFold(5, shuffle=False).split(25)]
        assert folds[0].tolist() == [0, 1, 2, 3, 4]
        assert folds[-1].tolist() == [20, 21, 22, 23, 24]

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(10).split(5))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestLeaveOneGroupOut:
    def test_holds_out_each_group(self):
        groups = ["a", "a", "b", "b", "c"]
        held = []
        for train, test, g in LeaveOneGroupOut().split(groups):
            held.append(g)
            assert all(groups[i] == g for i in test)
            assert all(groups[i] != g for i in train)
        assert held == ["a", "b", "c"]

    def test_single_group_raises(self):
        with pytest.raises(ValueError):
            list(LeaveOneGroupOut().split(["x", "x"]))


class TestCrossValidate:
    def test_summary_shape(self, rng):
        x = rng.normal(size=(200, 3))
        y = 50 + x @ np.array([1.0, 2.0, 3.0]) + rng.normal(size=200)
        result = cross_validate(y, x, n_splits=10)
        assert len(result.folds) == 10
        rows = result.summary_rows()
        assert [r[0] for r in rows] == ["R2", "Adj.R2", "MAPE"]
        for _, mn, mx, mean in rows:
            assert mn <= mean <= mx

    def test_good_model_scores_well(self, rng):
        x = rng.normal(size=(300, 2))
        y = 100 + x @ np.array([5.0, -3.0]) + rng.normal(scale=0.5, size=300)
        result = cross_validate(y, x, n_splits=5)
        assert result.rsquared["mean"] > 0.95
        assert result.mape["mean"] < 2.0

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(100, 2))
        y = 10 + x[:, 0] + rng.normal(size=100)
        a = cross_validate(y, x, seed=3)
        b = cross_validate(y, x, seed=3)
        assert a.mape == b.mape

    def test_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            cross_validate(rng.normal(size=10), rng.normal(size=(11, 2)))


class TestKFoldSeedGuard:
    def test_shuffle_without_seed_rejected(self):
        # The bugfix satellite: default_rng(None) would silently draw
        # OS entropy — irreproducible folds.
        with pytest.raises(ValueError, match="explicit seed"):
            KFold(5, shuffle=True, seed=None)

    def test_no_shuffle_without_seed_is_fine(self):
        folds = list(KFold(5, shuffle=False, seed=None).split(25))
        assert len(folds) == 5

    def test_default_seed_still_accepted(self):
        assert KFold(5).seed == 0


class TestParallelCrossValidate:
    def test_backends_bit_identical(self, rng):
        x = rng.normal(size=(120, 3))
        y = 60 + x @ np.array([1.0, -2.0, 0.5]) + rng.normal(size=120)
        reference = cross_validate(y, x, n_splits=6, parallel="serial")
        for backend in ("thread", "process"):
            result = cross_validate(
                y, x, n_splits=6, parallel=backend, max_workers=2
            )
            assert result.folds == reference.folds, backend

    def test_on_zero_forwarded_to_folds(self, rng):
        x = rng.normal(size=(40, 2))
        y = np.abs(rng.normal(size=40)) + 1.0
        y[7] = 0.0
        with pytest.raises(ValueError, match="MAPE undefined"):
            cross_validate(y, x, n_splits=4)
        result = cross_validate(y, x, n_splits=4, on_zero="skip")
        assert len(result.folds) == 4


class TestArenaCrossValidate:
    """Process-backend CV through the shared-memory arena: bit-identical
    to serial, bit-identical to the pickled fallback, zero leaks."""

    def shm_segments(self):
        import glob

        return glob.glob("/dev/shm/repro-arena-*")

    def make_problem(self, rng, n=400):
        x = rng.normal(size=(n, 5))
        y = 60 + x @ rng.normal(size=5) + rng.normal(size=n)
        return y, x

    def test_arena_bit_identical_and_leak_free(self, rng):
        y, x = self.make_problem(rng)
        # fast=False forces the fold-dispatch path the arena serves;
        # 40 folds / 4 workers clears the small-task guard (>= 8 each).
        reference = cross_validate(
            y, x, n_splits=40, fast=False, parallel="serial"
        )
        result = cross_validate(
            y, x, n_splits=40, fast=False,
            parallel="process", max_workers=4,
        )
        assert result.folds == reference.folds
        assert self.shm_segments() == []

    def test_pickled_fallback_bit_identical(self, rng, monkeypatch):
        y, x = self.make_problem(rng)
        reference = cross_validate(
            y, x, n_splits=40, fast=False, parallel="serial"
        )
        monkeypatch.setenv("REPRO_ARENA", "0")
        result = cross_validate(
            y, x, n_splits=40, fast=False,
            parallel="process", max_workers=4,
        )
        assert result.folds == reference.folds
        assert self.shm_segments() == []

    def test_robust_folds_through_arena(self, rng):
        y, x = self.make_problem(rng, n=320)
        y[::9] += 25.0  # outliers: make the Huber path do real work
        reference = cross_validate(
            y, x, n_splits=32, robust=True, parallel="serial"
        )
        result = cross_validate(
            y, x, n_splits=32, robust=True,
            parallel="process", max_workers=4,
        )
        assert result.folds == reference.folds
        assert self.shm_segments() == []
