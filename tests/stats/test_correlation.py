"""Unit tests for Pearson / Spearman correlation (Equation 2)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats import correlation_matrix, pearson, pearson_with_target, spearman


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -3 * x + 5) == pytest.approx(-1.0)

    def test_matches_scipy(self, rng):
        x = rng.normal(size=500)
        y = 0.4 * x + rng.normal(size=500)
        expected, _ = scipy_stats.pearsonr(x, y)
        assert pearson(x, y) == pytest.approx(expected, abs=1e-12)

    def test_constant_input_returns_zero(self):
        # scipy returns nan here; we define 0 (no detectable relation).
        assert pearson(np.full(10, 3.0), np.arange(10.0)) == 0.0

    def test_symmetric(self, rng):
        x, y = rng.normal(size=100), rng.normal(size=100)
        assert pearson(x, y) == pytest.approx(pearson(y, x))

    def test_invariant_to_affine_transform(self, rng):
        x, y = rng.normal(size=100), rng.normal(size=100)
        assert pearson(3 * x + 7, y) == pytest.approx(pearson(x, y))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.arange(5.0), np.arange(6.0))

    def test_too_few_observations(self):
        with pytest.raises(ValueError):
            pearson(np.array([1.0]), np.array([2.0]))


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = np.linspace(0.1, 5.0, 50)
        assert spearman(x, np.exp(x)) == pytest.approx(1.0)

    def test_matches_scipy(self, rng):
        x = rng.normal(size=300)
        y = x**3 + rng.normal(size=300)
        expected = scipy_stats.spearmanr(x, y).statistic
        assert spearman(x, y) == pytest.approx(expected, abs=1e-10)

    def test_handles_ties(self):
        x = np.array([1.0, 1.0, 2.0, 2.0, 3.0])
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        expected = scipy_stats.spearmanr(x, y).statistic
        assert spearman(x, y) == pytest.approx(expected, abs=1e-10)


class TestMatrixAndTarget:
    def test_correlation_matrix_properties(self, rng):
        x = rng.normal(size=(200, 4))
        m = correlation_matrix(x)
        assert np.allclose(np.diag(m), 1.0)
        assert np.allclose(m, m.T)
        assert np.all(np.abs(m) <= 1.0 + 1e-12)

    def test_pearson_with_target_names(self, rng):
        x = rng.normal(size=(100, 2))
        y = x[:, 0]
        out = pearson_with_target(x, y, names=["hit", "miss"])
        assert out["hit"] == pytest.approx(1.0)
        assert abs(out["miss"]) < 0.5

    def test_pearson_with_target_name_mismatch(self, rng):
        with pytest.raises(ValueError):
            pearson_with_target(rng.normal(size=(10, 2)), rng.normal(size=10), names=["a"])
