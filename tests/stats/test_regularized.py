"""Unit tests for ridge and lasso (from-scratch implementations)."""

import numpy as np
import pytest

from repro.stats import fit_ols, lasso, lasso_path, ridge


def _sparse_problem(rng, n=300, k=12, noise=0.2):
    """Only the first three features matter."""
    x = rng.normal(size=(n, k))
    beta = np.zeros(k)
    beta[:3] = [4.0, -3.0, 2.0]
    y = 7.0 + x @ beta + rng.normal(scale=noise, size=n)
    return x, y, beta


class TestRidge:
    def test_zero_alpha_matches_ols(self, rng):
        x, y, _ = _sparse_problem(rng)
        r = ridge(y, x, alpha=0.0)
        ols = fit_ols(y, x)
        assert r.intercept == pytest.approx(ols.params[0], abs=1e-8)
        assert np.allclose(r.coef, ols.params[1:], atol=1e-8)

    def test_shrinkage_monotone(self, rng):
        x, y, _ = _sparse_problem(rng)
        norms = [
            np.linalg.norm(ridge(y, x, alpha=a).coef)
            for a in (0.0, 10.0, 100.0, 1000.0)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(norms, norms[1:]))

    def test_handles_perfect_collinearity(self, rng):
        a = rng.normal(size=200)
        x = np.column_stack([a, a, rng.normal(size=200)])
        y = a * 2 + rng.normal(size=200) * 0.1
        r = ridge(y, x, alpha=1.0)
        assert np.all(np.isfinite(r.coef))
        # The two copies share the weight.
        assert r.coef[0] == pytest.approx(r.coef[1], rel=1e-6)

    def test_predict(self, rng):
        x, y, _ = _sparse_problem(rng, noise=0.01)
        r = ridge(y, x, alpha=0.1)
        assert np.corrcoef(r.predict(x), y)[0, 1] > 0.999

    def test_rejects_negative_alpha(self, rng):
        x, y, _ = _sparse_problem(rng)
        with pytest.raises(ValueError):
            ridge(y, x, alpha=-1.0)


class TestLasso:
    def test_zero_alpha_close_to_ols(self, rng):
        x, y, _ = _sparse_problem(rng)
        l = lasso(y, x, alpha=0.0, max_iter=5000)
        ols = fit_ols(y, x)
        assert np.allclose(l.coef, ols.params[1:], atol=1e-4)

    def test_recovers_sparse_support(self, rng):
        x, y, beta = _sparse_problem(rng, noise=0.1)
        l = lasso(y, x, alpha=0.05)
        support = set(l.selected_features())
        assert {0, 1, 2} <= support
        # Most noise features are dropped.
        assert len(support) <= 6

    def test_huge_alpha_zeroes_everything(self, rng):
        x, y, _ = _sparse_problem(rng)
        l = lasso(y, x, alpha=1e6)
        assert l.selected_features() == []
        assert l.intercept == pytest.approx(y.mean(), rel=1e-9)

    def test_sparsity_monotone_in_alpha(self, rng):
        x, y, _ = _sparse_problem(rng)
        counts = [
            len(lasso(y, x, alpha=a).selected_features())
            for a in (0.001, 0.05, 0.5, 5.0)
        ]
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_converges(self, rng):
        x, y, _ = _sparse_problem(rng)
        l = lasso(y, x, alpha=0.05)
        assert l.n_iter < 2000


class TestLassoPath:
    def test_path_starts_empty_and_densifies(self, rng):
        x, y, _ = _sparse_problem(rng)
        path = lasso_path(y, x, n_alphas=15)
        assert len(path[0].selected_features()) == 0
        assert len(path[-1].selected_features()) >= 3

    def test_strong_features_enter_first(self, rng):
        x, y, _ = _sparse_problem(rng, noise=0.05)
        path = lasso_path(y, x, n_alphas=25)
        first_entrants = []
        for fit in path:
            for idx in fit.selected_features():
                if idx not in first_entrants:
                    first_entrants.append(idx)
            if len(first_entrants) >= 3:
                break
        assert set(first_entrants[:3]) == {0, 1, 2}

    def test_constant_target_rejected(self, rng):
        x = rng.normal(size=(30, 2))
        with pytest.raises(ValueError):
            lasso_path(np.full(30, 5.0), x)
