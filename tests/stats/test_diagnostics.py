"""Unit tests for regression diagnostics: heteroscedasticity,
normality, conditioning, leverage and the degenerate-input contract."""

import numpy as np
import pytest

from repro.stats import breusch_pagan, condition_number, fit_ols, white_test
from repro.stats.diagnostics import (
    dagostino_k2,
    jarque_bera,
    leverage_scores,
    max_leverage,
    residual_normality,
)
from repro.stats.errors import (
    DegenerateResidualsError,
    NonFiniteInputError,
    UnderdeterminedFitError,
)


def _fit_residuals(rng, heteroscedastic: bool, n=2000):
    x = rng.uniform(1.0, 10.0, size=(n, 2))
    scale = x[:, 0] if heteroscedastic else np.ones(n)
    y = 5 + 2 * x[:, 0] - x[:, 1] + rng.normal(size=n) * scale
    res = fit_ols(y, x)
    return res.residuals, x


class TestBreuschPagan:
    def test_detects_heteroscedasticity(self, rng):
        resid, x = _fit_residuals(rng, heteroscedastic=True)
        test = breusch_pagan(resid, x)
        assert test.rejects_homoscedasticity(0.01)

    def test_accepts_homoscedastic(self, rng):
        resid, x = _fit_residuals(rng, heteroscedastic=False)
        test = breusch_pagan(resid, x)
        assert test.pvalue > 0.01

    def test_statistic_nonnegative(self, rng):
        resid, x = _fit_residuals(rng, heteroscedastic=False, n=200)
        assert breusch_pagan(resid, x).statistic >= 0.0


class TestWhite:
    def test_detects_nonlinear_heteroscedasticity(self, rng):
        n = 3000
        x = rng.normal(size=(n, 2))
        # Variance depends on x² — invisible to BP levels, visible to White.
        y = 1 + x[:, 0] + rng.normal(size=n) * (0.2 + x[:, 0] ** 2)
        res = fit_ols(y, x)
        assert white_test(res.residuals, x).rejects_homoscedasticity(0.01)

    def test_df_larger_than_bp(self, rng):
        resid, x = _fit_residuals(rng, heteroscedastic=False, n=500)
        assert white_test(resid, x).df > breusch_pagan(resid, x).df


class TestConditionNumber:
    def test_orthonormal_design_is_one(self):
        q, _ = np.linalg.qr(np.random.default_rng(0).normal(size=(100, 4)))
        assert condition_number(q) == pytest.approx(1.0, abs=1e-8)

    def test_collinear_design_is_large(self, rng):
        a = rng.normal(size=200)
        x = np.column_stack([a, a * 1.0000001])
        assert condition_number(x) > 1e4

    def test_scaling_invariance(self, rng):
        """Column scaling must not change the (scaled) condition number —
        the whole point of the Belsley pre-treatment."""
        x = rng.normal(size=(300, 3))
        scaled = x * np.array([1e-9, 1.0, 1e9])
        assert condition_number(scaled) == pytest.approx(
            condition_number(x), rel=1e-6
        )


class TestNormality:
    def test_jb_accepts_gaussian(self, rng):
        test = jarque_bera(rng.normal(size=500))
        assert not test.rejects_normality(0.01)
        assert test.n == 500

    def test_jb_rejects_heavy_tails(self, rng):
        test = jarque_bera(rng.standard_t(df=2, size=500))
        assert test.rejects_normality(0.01)
        assert test.excess_kurtosis > 0.0

    def test_jb_reports_skew_sign(self, rng):
        test = jarque_bera(rng.exponential(size=500))
        assert test.skewness > 0.0
        assert test.rejects_normality(0.01)

    def test_k2_agrees_with_jb_on_gaussian(self, rng):
        r = rng.normal(size=300)
        assert not dagostino_k2(r).rejects_normality(0.01)
        assert not jarque_bera(r).rejects_normality(0.01)

    def test_k2_minimum_n_enforced(self, rng):
        with pytest.raises(UnderdeterminedFitError, match="at least 8"):
            dagostino_k2(rng.normal(size=7))

    def test_dispatch_by_name(self, rng):
        r = rng.normal(size=100)
        assert residual_normality(r).name == "jarque-bera"
        assert residual_normality(r, "dagostino-k2").name == "dagostino-k2"

    def test_dispatch_rejects_unknown_method(self, rng):
        with pytest.raises(ValueError, match="method must be one of"):
            residual_normality(rng.normal(size=100), "shapiro")


class TestLeverage:
    def test_balanced_design_is_flat(self, rng):
        x = np.column_stack([np.ones(50), rng.normal(size=50)])
        h = leverage_scores(x)
        assert h.shape == (50,)
        assert np.all(h >= 0.0) and np.all(h <= 1.0)
        assert np.sum(h) == pytest.approx(2.0, rel=1e-8)  # trace = k

    def test_outlier_row_dominates(self, rng):
        x = np.column_stack([np.ones(30), rng.normal(size=30)])
        x[0, 1] = 100.0  # a lone extreme point pins the fit
        h = leverage_scores(x)
        assert np.argmax(h) == 0
        assert max_leverage(x) > 0.9

    def test_underdetermined_design_rejected(self, rng):
        with pytest.raises(UnderdeterminedFitError, match="n ≥ k"):
            leverage_scores(rng.normal(size=(3, 5)))


class TestDegenerateInputContract:
    """Diagnostics fail with the typed taxonomy, never silent NaN."""

    def test_constant_residuals_typed_error(self):
        with pytest.raises(DegenerateResidualsError, match="constant"):
            jarque_bera(np.zeros(50))

    def test_nan_residuals_typed_error(self, rng):
        r = rng.normal(size=50)
        r[7] = np.nan
        with pytest.raises(NonFiniteInputError, match="non-finite"):
            jarque_bera(r)

    def test_too_few_residuals_typed_error(self):
        with pytest.raises(UnderdeterminedFitError, match="at least"):
            jarque_bera(np.array([0.1, -0.2, 0.3]))

    def test_bp_rejects_nan_exog(self, rng):
        resid, x = _fit_residuals(rng, heteroscedastic=False, n=100)
        x = x.copy()
        x[3, 1] = np.inf
        with pytest.raises(NonFiniteInputError, match="exog"):
            breusch_pagan(resid, x)

    def test_bp_needs_residual_dof(self, rng):
        # n = k+2 used to produce a vacuous LM = 0; now it is an error.
        x = rng.normal(size=(4, 2))
        with pytest.raises(UnderdeterminedFitError):
            breusch_pagan(rng.normal(size=4), x)

    def test_white_constant_design_typed_error(self):
        resid = np.array([0.1, -0.2, 0.3, -0.1, 0.2, -0.3])
        x = np.ones((6, 2))
        with pytest.raises(DegenerateResidualsError, match="auxiliary"):
            white_test(resid, x)

    def test_condition_number_rejects_nan(self, rng):
        x = rng.normal(size=(20, 2))
        x[0, 0] = np.nan
        with pytest.raises(NonFiniteInputError):
            condition_number(x)
