"""Unit tests for heteroscedasticity diagnostics and conditioning."""

import numpy as np
import pytest

from repro.stats import breusch_pagan, condition_number, fit_ols, white_test


def _fit_residuals(rng, heteroscedastic: bool, n=2000):
    x = rng.uniform(1.0, 10.0, size=(n, 2))
    scale = x[:, 0] if heteroscedastic else np.ones(n)
    y = 5 + 2 * x[:, 0] - x[:, 1] + rng.normal(size=n) * scale
    res = fit_ols(y, x)
    return res.residuals, x


class TestBreuschPagan:
    def test_detects_heteroscedasticity(self, rng):
        resid, x = _fit_residuals(rng, heteroscedastic=True)
        test = breusch_pagan(resid, x)
        assert test.rejects_homoscedasticity(0.01)

    def test_accepts_homoscedastic(self, rng):
        resid, x = _fit_residuals(rng, heteroscedastic=False)
        test = breusch_pagan(resid, x)
        assert test.pvalue > 0.01

    def test_statistic_nonnegative(self, rng):
        resid, x = _fit_residuals(rng, heteroscedastic=False, n=200)
        assert breusch_pagan(resid, x).statistic >= 0.0


class TestWhite:
    def test_detects_nonlinear_heteroscedasticity(self, rng):
        n = 3000
        x = rng.normal(size=(n, 2))
        # Variance depends on x² — invisible to BP levels, visible to White.
        y = 1 + x[:, 0] + rng.normal(size=n) * (0.2 + x[:, 0] ** 2)
        res = fit_ols(y, x)
        assert white_test(res.residuals, x).rejects_homoscedasticity(0.01)

    def test_df_larger_than_bp(self, rng):
        resid, x = _fit_residuals(rng, heteroscedastic=False, n=500)
        assert white_test(resid, x).df > breusch_pagan(resid, x).df


class TestConditionNumber:
    def test_orthonormal_design_is_one(self):
        q, _ = np.linalg.qr(np.random.default_rng(0).normal(size=(100, 4)))
        assert condition_number(q) == pytest.approx(1.0, abs=1e-8)

    def test_collinear_design_is_large(self, rng):
        a = rng.normal(size=200)
        x = np.column_stack([a, a * 1.0000001])
        assert condition_number(x) > 1e4

    def test_scaling_invariance(self, rng):
        """Column scaling must not change the (scaled) condition number —
        the whole point of the Belsley pre-treatment."""
        x = rng.normal(size=(300, 3))
        scaled = x * np.array([1e-9, 1.0, 1e9])
        assert condition_number(scaled) == pytest.approx(
            condition_number(x), rel=1e-6
        )
