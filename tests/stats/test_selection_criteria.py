"""Unit tests for the AIC/BIC selection criteria (future-work ablation)."""

import numpy as np
import pytest

from repro.stats import CRITERIA, aic, bic, criterion_value, fit_ols


@pytest.fixture()
def fits(rng):
    """A good fit and the same data with junk regressors appended."""
    n = 200
    x = rng.normal(size=(n, 2))
    y = 3 + x @ np.array([1.0, -1.0]) + rng.normal(scale=0.5, size=n)
    good = fit_ols(y, x)
    bloated = fit_ols(y, np.hstack([x, rng.normal(size=(n, 12))]))
    return good, bloated


class TestInformationCriteria:
    def test_aic_penalizes_junk_regressors(self, fits):
        good, bloated = fits
        assert aic(good) < aic(bloated)

    def test_bic_penalizes_junk_harder_than_aic(self, fits):
        good, bloated = fits
        aic_gap = aic(bloated) - aic(good)
        bic_gap = bic(bloated) - bic(good)
        assert bic_gap > aic_gap  # ln(n) > 2 for n > 7

    def test_better_fit_lowers_both(self, rng):
        n = 300
        x = rng.normal(size=(n, 1))
        y = x[:, 0] * 2 + rng.normal(scale=0.1, size=n)
        res_full = fit_ols(y, x)
        res_null = fit_ols(y, np.zeros((n, 1)))
        assert aic(res_full) < aic(res_null)
        assert bic(res_full) < bic(res_null)


class TestRegistry:
    def test_r2_criterion_matches_result(self, fits):
        good, _ = fits
        assert criterion_value("r2", good) == good.rsquared
        assert criterion_value("adj_r2", good) == good.rsquared_adj

    def test_aic_bic_registered_negated(self, fits):
        good, _ = fits
        assert criterion_value("aic", good) == pytest.approx(-aic(good))
        assert criterion_value("bic", good) == pytest.approx(-bic(good))

    def test_all_criteria_larger_is_better(self, fits):
        good, bloated = fits
        for name in CRITERIA:
            if name == "r2":
                # Plain R2 cannot penalize extra regressors.
                continue
            assert criterion_value(name, good) > criterion_value(name, bloated)

    def test_unknown_criterion(self, fits):
        good, _ = fits
        with pytest.raises(ValueError, match="unknown criterion"):
            criterion_value("mystery", good)
