"""Unit tests for the Gram-cache fast-fit kernels (DESIGN.md §12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import mean_vif as slow_mean_vif
from repro.stats.fastfit import (
    DESIGN_CONDITION_MAX,
    FASTFIT_ENV,
    FoldGramSolver,
    GramCache,
    _criterion_from_ssr,
    fastfit_enabled,
)
from repro.stats.crossval import KFold
from repro.stats.linalg import CONDITION_FALLBACK_THRESHOLD, add_constant
from repro.stats.ols import fit_ols
from repro.stats.selection_criteria import criterion_value


def make_design(rng, n=60, k_cand=8):
    """Random candidate columns + V²f/V/constant structural block."""
    scales = 10.0 ** rng.uniform(-3, 3, size=k_cand)
    rates = rng.lognormal(sigma=0.8, size=(n, k_cand)) * scales
    v = rng.uniform(0.8, 1.2, size=n)
    f = rng.choice([1200.0, 2400.0], size=n)
    struct = np.column_stack([v * v * f, v, np.ones(n)])
    design = np.hstack([rates * (v * v * f)[:, None], struct])
    beta = rng.normal(size=design.shape[1])
    y = np.abs(design @ beta) + rng.uniform(1.0, 2.0, size=n)
    return y, design, rates


def slow_score(y, design, rates, base, cand, criterion):
    cols = list(base) + [cand] + list(range(rates.shape[1], design.shape[1]))
    res = fit_ols(y, design[:, cols], intercept=False, cov_type="HC3")
    return (
        criterion_value(criterion, res),
        res.rsquared,
        res.rsquared_adj,
    )


class TestFastfitEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv(FASTFIT_ENV, raising=False)
        assert fastfit_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "NO", " off "])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv(FASTFIT_ENV, value)
        assert fastfit_enabled() is False

    def test_env_other_values_enable(self, monkeypatch):
        monkeypatch.setenv(FASTFIT_ENV, "1")
        assert fastfit_enabled() is True

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(FASTFIT_ENV, "0")
        assert fastfit_enabled(True) is True
        monkeypatch.setenv(FASTFIT_ENV, "1")
        assert fastfit_enabled(False) is False


class TestCriterionFromSsr:
    def test_unknown_criterion_raises(self):
        with pytest.raises(ValueError, match="unknown criterion"):
            _criterion_from_ssr("r3", 1.0, 2.0, 10, 3)

    def test_zero_ss_tot_matches_fit_ols_edge_case(self):
        score, r2, adj = _criterion_from_ssr("r2", 0.0, 0.0, 10, 3)
        assert (score, r2, adj) == (0.0, 0.0, 0.0)


class TestGramCacheScoring:
    @pytest.mark.parametrize("criterion", ["r2", "adj_r2", "aic", "bic"])
    def test_matches_full_refit(self, rng, criterion):
        y, design, rates = make_design(rng)
        cache = GramCache(y, design, rates)
        base = [2, 5]
        remaining = [0, 1, 3, 4, 6, 7]
        scores = cache.score_candidates(base, remaining, criterion)
        assert all(s is not None for s in scores)
        for cand, fast in zip(remaining, scores):
            slow = slow_score(y, design, rates, base, cand, criterion)
            np.testing.assert_allclose(fast, slow, rtol=1e-9)

    def test_first_step_empty_base(self, rng):
        y, design, rates = make_design(rng)
        cache = GramCache(y, design, rates)
        scores = cache.score_candidates([], list(range(8)), "r2")
        for cand, fast in zip(range(8), scores):
            slow = slow_score(y, design, rates, [], cand, "r2")
            np.testing.assert_allclose(fast, slow, rtol=1e-9)

    def test_nonfinite_candidate_declined(self, rng):
        y, design, rates = make_design(rng)
        design = design.copy()
        design[3, 1] = np.nan
        cache = GramCache(y, design, rates)
        scores = cache.score_candidates([0], [1, 2], "r2")
        assert scores[0] is None
        assert scores[1] is not None

    def test_zero_candidate_column_declined(self, rng):
        y, design, rates = make_design(rng)
        design = design.copy()
        design[:, 4] = 0.0
        cache = GramCache(y, design, rates)
        scores = cache.score_candidates([0], [4, 5], "r2")
        assert scores[0] is None

    def test_duplicate_of_selected_declined(self, rng):
        # An exact copy of a selected column has bordered pivot ~0:
        # the exact path owns rank-deficient trials.
        y, design, rates = make_design(rng)
        design = design.copy()
        design[:, 6] = design[:, 0]
        cache = GramCache(y, design, rates)
        scores = cache.score_candidates([0], [6], "r2")
        assert scores == [None]

    def test_duplicate_candidates_score_bitwise_identical(self, rng):
        # Exact ties must survive the batched kernels so the selection
        # reduce reports them exactly as the slow path does.
        y, design, rates = make_design(rng)
        design = design.copy()
        rates = rates.copy()
        design[:, 3] = design[:, 2]
        rates[:, 3] = rates[:, 2]
        cache = GramCache(y, design, rates)
        a, b = cache.score_candidates([0], [2, 3], "r2")
        assert a == b

    def test_underdetermined_step_declined(self, rng):
        y, design, rates = make_design(rng, n=4)
        cache = GramCache(y, design, rates)
        assert cache.score_candidates([0], [1], "r2") == [None]

    def test_nonfinite_endog_declines_everything(self, rng):
        y, design, rates = make_design(rng)
        y = y.copy()
        y[0] = np.inf
        cache = GramCache(y, design, rates)
        assert cache.score_candidates([0], [1, 2], "r2") == [None, None]

    def test_condition_margin_under_ridge_threshold(self):
        # A fast-scored fit must be one the slow path solves directly:
        # the certified condition ceiling sits a decade inside the
        # ridge-fallback threshold.
        assert DESIGN_CONDITION_MAX * 10 <= CONDITION_FALLBACK_THRESHOLD


class TestGramCacheVif:
    def test_bitwise_equal_to_slow_mean_vif(self, rng):
        y, design, rates = make_design(rng)
        cache = GramCache(y, design, rates)
        cols = [0, 2, 5, 7]
        assert cache.mean_vif(cols) == slow_mean_vif(rates[:, cols])

    def test_single_column_is_nan(self, rng):
        y, design, rates = make_design(rng)
        cache = GramCache(y, design, rates)
        assert np.isnan(cache.mean_vif([3]))

    def test_nonfinite_rates_raise_like_slow_path(self, rng):
        y, design, rates = make_design(rng)
        rates = rates.copy()
        rates[0, 1] = np.nan
        cache = GramCache(y, design, rates)
        with pytest.raises(Exception) as fast_err:
            cache.mean_vif([0, 1])
        with pytest.raises(Exception) as slow_err:
            slow_mean_vif(rates[:, [0, 1]])
        assert str(fast_err.value) == str(slow_err.value)

    def test_constant_columns_match_slow_path(self, rng):
        y, design, rates = make_design(rng)
        rates = rates.copy()
        rates[:, 2] = 3.5
        cache = GramCache(y, design, rates)
        cols = [0, 2, 4]
        assert cache.mean_vif(cols) == slow_mean_vif(rates[:, cols])


class TestFoldGramSolver:
    def test_matches_per_fold_refit(self, rng):
        y, design, rates = make_design(rng, n=80)
        x = design[:, [0, 3, 5]]
        solver = FoldGramSolver(y, add_constant(x))
        for train, test in KFold(5, shuffle=True, seed=0).split(y.size):
            fit = solver.solve_fold(train, test)
            assert fit is not None
            slow = fit_ols(y[train], x[train], cov_type="HC3")
            np.testing.assert_allclose(
                fit.rsquared, slow.rsquared, rtol=1e-9
            )
            np.testing.assert_allclose(
                fit.rsquared_adj, slow.rsquared_adj, rtol=1e-9
            )
            np.testing.assert_allclose(
                solver.predict(fit, test),
                slow.predict(x[test]),
                rtol=1e-9,
            )

    def test_declines_nonfinite_design(self, rng):
        y, design, rates = make_design(rng, n=40)
        x = add_constant(design[:, [0, 1]])
        x[5, 1] = np.nan
        solver = FoldGramSolver(y, x)
        train = np.arange(20)
        test = np.arange(20, 40)
        assert solver.solve_fold(train, test) is None

    def test_declines_underdetermined_fold(self, rng):
        y, design, rates = make_design(rng, n=40)
        x = add_constant(design[:, [0, 1]])
        solver = FoldGramSolver(y, x)
        assert solver.solve_fold(np.arange(2), np.arange(2, 40)) is None

    def test_declines_degenerate_train_gram(self, rng):
        # The held-in rows carry a zero column: diagonal guard.
        y, design, rates = make_design(rng, n=40)
        x = add_constant(design[:, [0, 1]])
        x[:20, 2] = 0.0
        solver = FoldGramSolver(y, x)
        train = np.arange(20)
        test = np.arange(20, 40)
        assert solver.solve_fold(train, test) is None

    def test_row_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="row mismatch"):
            FoldGramSolver(np.ones(5), np.ones((6, 2)))


class TestGramCacheSharing:
    """Shared-memory reconstruction is bitwise — the contract that lets
    selection chunk one step's candidates across pool workers."""

    def build(self, rng, n=80, k_cand=10):
        y, design, rates = make_design(rng, n=n, k_cand=k_cand)
        return GramCache(y, design, rates)

    def test_from_handle_reads_identical_bytes(self, rng):
        from repro.parallel import SharedArena

        cache = self.build(rng)
        with SharedArena() as arena:
            twin = GramCache.from_handle(cache.share(arena))
            for field in ("y", "design", "rates", "gram", "xty",
                          "col_norm", "col_norm_sq"):
                assert np.array_equal(
                    getattr(twin, field), getattr(cache, field)
                ), field
            assert twin.yty == cache.yty
            assert twin.ss_tot == cache.ss_tot
            assert (twin.n, twin.n_candidates, twin.struct) == (
                cache.n, cache.n_candidates, cache.struct
            )

    def test_shared_scoring_is_bitwise(self, rng):
        from repro.parallel import SharedArena

        cache = self.build(rng)
        remaining = list(range(1, cache.n_candidates))
        with SharedArena() as arena:
            twin = GramCache.from_handle(cache.share(arena))
            assert twin.score_candidates([0], remaining, "r2") == \
                cache.score_candidates([0], remaining, "r2")
            assert twin.mean_vif([0, 2, 5]) == cache.mean_vif([0, 2, 5])

    def test_chunked_scoring_matches_batched(self, rng):
        # The separability the parallel fast path rests on: scoring the
        # remaining set in chunks concatenates to the one-shot batch.
        # Chunks must carry >= 2 candidates — BLAS computes a one-column
        # matmul through gemv, whose accumulation differs from gemm by
        # ~1 ulp, which is why selection never emits size-1 chunks.
        cache = self.build(rng, n=120, k_cand=12)
        remaining = list(range(1, cache.n_candidates))  # 11 candidates
        whole = cache.score_candidates([0], remaining, "adj_r2")
        for n_chunks in (2, 3, 5):  # min chunk sizes 5/3/2
            from repro.parallel import split_batches

            chunked = [
                s
                for chunk in split_batches(remaining, n_chunks)
                for s in cache.score_candidates([0], chunk, "adj_r2")
            ]
            assert chunked == whole, n_chunks

    def test_reconstruction_memoized_per_handle(self, rng):
        from repro.parallel import SharedArena

        cache = self.build(rng)
        with SharedArena() as arena:
            handle = cache.share(arena)
            assert GramCache.from_handle(handle) is GramCache.from_handle(
                handle
            )

    def test_share_dedupes_buffers_in_arena(self, rng):
        from repro.parallel import SharedArena

        cache = self.build(rng)
        with SharedArena() as arena:
            first = cache.share(arena)
            second = cache.share(arena)
            assert first == second  # same segment names → equal handles
