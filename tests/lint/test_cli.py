"""CLI smoke tests: exit codes, reporters, config loading."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, lint_source, render_json, render_text
from repro.lint.framework import Finding

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

BAD_FILE = """\
import numpy as np

data = np.load("cache.npz")
rng = np.random.default_rng()
"""

GOOD_FILE = """\
import numpy as np

data = np.load("cache.npz", allow_pickle=False)
rng = np.random.default_rng(12345)
"""


def run_cli(*args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
        timeout=120,
    )


class TestExitCodes:
    def test_findings_exit_1(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_FILE)
        proc = run_cli("bad.py", "--no-repo-rules", cwd=tmp_path)
        assert proc.returncode == 1
        assert "RL002" in proc.stdout and "RL001" in proc.stdout

    def test_clean_exit_0(self, tmp_path):
        (tmp_path / "good.py").write_text(GOOD_FILE)
        proc = run_cli("good.py", "--no-repo-rules", cwd=tmp_path)
        assert proc.returncode == 0
        assert "clean" in proc.stdout

    def test_missing_path_exit_2(self, tmp_path):
        proc = run_cli("no/such/dir", cwd=tmp_path)
        assert proc.returncode == 2

    def test_select_narrows_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_FILE)
        proc = run_cli(
            "bad.py", "--select", "RL002", "--no-repo-rules", cwd=tmp_path
        )
        assert proc.returncode == 1
        assert "RL002" in proc.stdout and "RL001" not in proc.stdout

    def test_disable_silences_rule(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_FILE)
        proc = run_cli(
            "bad.py", "--disable", "RL001,RL002", "--no-repo-rules", cwd=tmp_path
        )
        assert proc.returncode == 0

    def test_list_rules(self, tmp_path):
        proc = run_cli("--list-rules", cwd=tmp_path)
        assert proc.returncode == 0
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert rule_id in proc.stdout

    def test_json_format(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_FILE)
        proc = run_cli(
            "bad.py", "-f", "json", "--no-repo-rules", cwd=tmp_path
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["count"] == len(payload["findings"]) > 0
        assert {f["rule"] for f in payload["findings"]} == {"RL001", "RL002"}

    def test_syntax_error_reported_not_crash(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        proc = run_cli("broken.py", "--no-repo-rules", cwd=tmp_path)
        assert proc.returncode == 1
        assert "RL000" in proc.stdout


class TestConfigDiscovery:
    def test_pyproject_per_path_ignores(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.replint.per-path-ignores]\n"
            '"generated/*" = ["RL001", "RL002"]\n'
        )
        gen = tmp_path / "generated"
        gen.mkdir()
        (gen / "bad.py").write_text(BAD_FILE)
        proc = run_cli("generated", "--no-repo-rules", cwd=tmp_path)
        assert proc.returncode == 0

    def test_pyproject_disable(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.replint]\ndisable = [\"RL001\", \"RL002\"]\n"
        )
        (tmp_path / "bad.py").write_text(BAD_FILE)
        proc = run_cli("bad.py", "--no-repo-rules", cwd=tmp_path)
        assert proc.returncode == 0


class TestReporters:
    FINDINGS = [
        Finding(path="a.py", line=3, col=1, rule_id="RL002", message="m"),
        Finding(path="a.py", line=4, col=7, rule_id="RL001", message="n"),
    ]

    def test_text_format_is_clickable(self):
        text = render_text(self.FINDINGS, files_checked=1)
        assert "a.py:3:1: RL002 m" in text
        assert "2 findings in 1 files" in text

    def test_text_clean_summary(self):
        assert "clean" in render_text([], files_checked=5)

    def test_json_round_trips(self):
        payload = json.loads(render_json(self.FINDINGS, files_checked=1))
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["line"] == 3


class TestRepoIsClean:
    def test_replint_clean_on_this_repository(self):
        """The acceptance criterion: replint passes on src/ and tests/."""
        root = REPO_SRC.parent
        config = LintConfig.from_pyproject(root / "pyproject.toml")
        findings = lint_paths(
            [root / "src", root / "tests"],
            config,
            repo_root=root,
            run_repo_rules=False,  # working diff is exercised pre-commit
        )
        assert findings == []


class TestSuppressions:
    def test_blanket_suppression(self):
        code = 'import numpy as np\ndata = np.load("c.npz")  # replint: ignore\n'
        assert lint_source(code, Path("x.py"), LintConfig()) == []

    def test_targeted_suppression_leaves_other_rules(self):
        code = (
            "import numpy as np\n"
            'power = np.load("c.npz")  # replint: ignore[RL002]\n'
        )
        findings = lint_source(code, Path("x.py"), LintConfig())
        assert [f.rule_id for f in findings] == ["RL003"]
