"""Per-rule fixtures: every rule flags a seeded violation and passes a
known-good twin of the same code."""

from __future__ import annotations

import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_source
from repro.lint.rules import (
    CacheVersionDiscipline,
    NoFloatEquality,
    NonAtomicCacheWrite,
    NoUnseededRng,
    RequireAllowPickleFalse,
    NoHotLoopRefit,
    NoRawLinalgSolvers,
    NoUnauditedReport,
    NoRawParallelPrimitives,
    NoRawSharedMemory,
    NoRawSleepRetry,
    NoScalarHotSim,
    NoUnboundedQueue,
    SilentBroadExcept,
    UnitSuffixConsistency,
)

SRC = Path("src/repro/somewhere.py")


def run_rule(rule, code, path=SRC, config=None):
    return lint_source(
        textwrap.dedent(code), path, config or LintConfig(), [rule]
    )


def ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
class TestRL001UnseededRng:
    def test_flags_module_state_call(self):
        bad = """
            import numpy as np
            def jitter():
                return np.random.normal(0.0, 1.0)
        """
        assert ids(run_rule(NoUnseededRng(), bad)) == ["RL001"]

    def test_flags_seedless_default_rng(self):
        bad = """
            import numpy as np
            rng = np.random.default_rng()
        """
        assert ids(run_rule(NoUnseededRng(), bad)) == ["RL001"]

    def test_flags_from_import_alias(self):
        bad = """
            from numpy.random import default_rng
            rng = default_rng()
        """
        assert ids(run_rule(NoUnseededRng(), bad)) == ["RL001"]

    def test_passes_seeded_default_rng(self):
        good = """
            import numpy as np
            rng = np.random.default_rng(12345)
            draws = rng.normal(0.0, 1.0, size=10)
        """
        assert run_rule(NoUnseededRng(), good) == []

    def test_seeding_module_is_exempt(self):
        code = """
            import numpy as np
            def derive_rng(seed):
                return np.random.default_rng()
        """
        assert run_rule(NoUnseededRng(), code, path=Path("src/repro/seeding.py")) == []


# ---------------------------------------------------------------------------
class TestRL002AllowPickle:
    def test_flags_missing_kwarg(self):
        bad = """
            import numpy as np
            data = np.load("cache.npz")
        """
        assert ids(run_rule(RequireAllowPickleFalse(), bad)) == ["RL002"]

    def test_flags_allow_pickle_true(self):
        bad = """
            import numpy as np
            data = np.load("cache.npz", allow_pickle=True)
        """
        assert ids(run_rule(RequireAllowPickleFalse(), bad)) == ["RL002"]

    def test_passes_explicit_false(self):
        good = """
            import numpy as np
            data = np.load("cache.npz", allow_pickle=False)
        """
        assert run_rule(RequireAllowPickleFalse(), good) == []

    def test_resolves_import_alias(self):
        bad = """
            import numpy
            data = numpy.load("cache.npz")
        """
        assert ids(run_rule(RequireAllowPickleFalse(), bad)) == ["RL002"]


# ---------------------------------------------------------------------------
class TestRL003UnitSuffix:
    def test_flags_bare_quantity_assignment(self):
        bad = """
            power = counters @ coefficients
        """
        assert ids(run_rule(UnitSuffixConsistency(), bad)) == ["RL003"]

    def test_flags_bare_quantity_parameter_and_loop_var(self):
        bad = """
            def report(voltage, samples):
                for freq in samples:
                    pass
        """
        assert ids(run_rule(UnitSuffixConsistency(), bad)) == ["RL003", "RL003"]

    def test_flags_compound_name_ending_in_stem(self):
        bad = """
            total_power = a + b
        """
        assert ids(run_rule(UnitSuffixConsistency(), bad)) == ["RL003"]

    def test_passes_suffixed_names(self):
        good = """
            power_w = counters @ coefficients
            def report(voltage_v, frequency_mhz):
                energy_j = power_w * 2.0
        """
        assert run_rule(UnitSuffixConsistency(), good) == []

    def test_passes_non_quantity_compound(self):
        good = """
            power_breakdown = make_breakdown()
            power_model = fit()
        """
        assert run_rule(UnitSuffixConsistency(), good) == []

    def test_flags_mixed_time_base_arithmetic(self):
        bad = """
            total = rate_per_cycle + rate_per_second
        """
        found = run_rule(UnitSuffixConsistency(), bad)
        assert ids(found) == ["RL003"]
        assert "time base" in found[0].message

    def test_flags_mixed_time_base_comparison(self):
        bad = """
            ok = miss_per_cycle < miss_per_second
        """
        assert ids(run_rule(UnitSuffixConsistency(), bad)) == ["RL003"]

    def test_passes_single_time_base(self):
        good = """
            total_per_cycle = a_per_cycle + b_per_cycle
        """
        assert run_rule(UnitSuffixConsistency(), good) == []


# ---------------------------------------------------------------------------
class TestRL004FloatEquality:
    def test_flags_float_literal_comparison(self):
        bad = """
            def check(x):
                return x == 0.5
        """
        assert ids(run_rule(NoFloatEquality(), bad)) == ["RL004"]

    def test_flags_unit_suffixed_names(self):
        bad = """
            drift = measured_w != predicted_w
        """
        assert ids(run_rule(NoFloatEquality(), bad)) == ["RL004"]

    def test_passes_isclose(self):
        good = """
            import numpy as np
            def check(measured_w, predicted_w):
                return np.isclose(measured_w, predicted_w, atol=1e-9)
        """
        assert run_rule(NoFloatEquality(), good) == []

    def test_passes_integer_comparison(self):
        good = """
            ok = threads == 24 and frequency_mhz == 2400
        """
        assert run_rule(NoFloatEquality(), good) == []

    def test_inline_suppression_with_reason(self):
        code = """
            if denom == 0.0:  # replint: ignore[RL004] -- exact-zero guard
                denom = 1.0
        """
        assert run_rule(NoFloatEquality(), code) == []

    def test_pytest_approx_is_exempt(self):
        good = """
            import pytest
            assert measured_w == pytest.approx(42.0)
        """
        assert run_rule(NoFloatEquality(), good) == []


# ---------------------------------------------------------------------------
def _git(cwd, *args):
    subprocess.run(
        ["git", "-C", str(cwd), *args],
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(cwd),
            "PATH": __import__("os").environ["PATH"],
        },
    )


@pytest.fixture()
def physics_repo(tmp_path):
    """A miniature repo with physics modules and a DATA_VERSION file."""
    (tmp_path / "src/repro/hardware").mkdir(parents=True)
    (tmp_path / "src/repro/experiments").mkdir(parents=True)
    physics = tmp_path / "src/repro/hardware/power.py"
    version = tmp_path / "src/repro/experiments/data.py"
    physics.write_text("LEAKAGE_W = 1.0\n")
    version.write_text("DATA_VERSION = 3\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


class TestRL005CacheVersion:
    def test_flags_physics_change_without_bump(self, physics_repo):
        (physics_repo / "src/repro/hardware/power.py").write_text(
            "LEAKAGE_W = 2.0\n"
        )
        findings = CacheVersionDiscipline().check_repo(physics_repo, LintConfig())
        assert ids(findings) == ["RL005"]
        assert "DATA_VERSION" in findings[0].message

    def test_passes_physics_change_with_bump(self, physics_repo):
        (physics_repo / "src/repro/hardware/power.py").write_text(
            "LEAKAGE_W = 2.0\n"
        )
        (physics_repo / "src/repro/experiments/data.py").write_text(
            "DATA_VERSION = 4\n"
        )
        assert CacheVersionDiscipline().check_repo(physics_repo, LintConfig()) == []

    def test_passes_clean_tree(self, physics_repo):
        assert CacheVersionDiscipline().check_repo(physics_repo, LintConfig()) == []

    def test_passes_non_physics_change(self, physics_repo):
        (physics_repo / "README.md").write_text("docs only\n")
        _git(physics_repo, "add", "-A")
        assert CacheVersionDiscipline().check_repo(physics_repo, LintConfig()) == []

    def test_silent_outside_git(self, tmp_path):
        assert CacheVersionDiscipline().check_repo(tmp_path, LintConfig()) == []


# ---------------------------------------------------------------------------
class TestRL006AtomicWrite:
    def test_flags_direct_savez(self):
        bad = """
            import numpy as np
            def save(path, arr):
                np.savez_compressed(path, arr=arr)
        """
        assert ids(run_rule(NonAtomicCacheWrite(), bad)) == ["RL006"]

    def test_flags_open_for_write(self):
        bad = """
            def dump(path):
                with open(path, "w") as fh:
                    fh.write("x")
        """
        assert ids(run_rule(NonAtomicCacheWrite(), bad)) == ["RL006"]

    def test_flags_path_write_text(self):
        bad = """
            def dump(path):
                path.write_text("x")
        """
        assert ids(run_rule(NonAtomicCacheWrite(), bad)) == ["RL006"]

    def test_passes_read_modes(self):
        good = """
            def load(path):
                with open(path) as fh:
                    return fh.read()
        """
        assert run_rule(NonAtomicCacheWrite(), good) == []

    def test_passes_atomic_helpers(self):
        good = """
            from repro.io.atomic import atomic_open, atomic_savez
            def save(path, arr):
                atomic_savez(path, arr=arr)
                with atomic_open(path, "w") as fh:
                    fh.write("x")
        """
        assert run_rule(NonAtomicCacheWrite(), good) == []

    def test_helper_module_itself_is_exempt(self):
        code = """
            def atomic_write_text(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
        """
        assert (
            run_rule(
                NonAtomicCacheWrite(), code, path=Path("src/repro/io/atomic.py")
            )
            == []
        )


# ---------------------------------------------------------------------------
class TestRL007SilentExcept:
    def test_flags_bare_except_pass(self):
        bad = """
            def f():
                try:
                    risky()
                except:
                    pass
        """
        assert ids(run_rule(SilentBroadExcept(), bad)) == ["RL007"]

    def test_flags_broad_except_returning_default(self):
        bad = """
            def f():
                try:
                    return risky()
                except Exception:
                    return None
        """
        assert ids(run_rule(SilentBroadExcept(), bad)) == ["RL007"]

    def test_flags_broad_type_in_tuple(self):
        bad = """
            def f():
                try:
                    risky()
                except (ValueError, Exception):
                    pass
        """
        assert ids(run_rule(SilentBroadExcept(), bad)) == ["RL007"]

    def test_passes_narrow_handler(self):
        good = """
            def f(path):
                try:
                    path.unlink()
                except OSError:
                    pass
        """
        assert run_rule(SilentBroadExcept(), good) == []

    def test_passes_reraise(self):
        good = """
            def f():
                try:
                    risky()
                except Exception:
                    cleanup()
                    raise
        """
        assert run_rule(SilentBroadExcept(), good) == []

    def test_passes_raise_from(self):
        good = """
            def f():
                try:
                    risky()
                except Exception as exc:
                    raise RuntimeError("wrapped") from exc
        """
        assert run_rule(SilentBroadExcept(), good) == []

    def test_passes_logger_call(self):
        good = """
            def f(logger):
                try:
                    risky()
                except Exception:
                    logger.exception("risky() failed")
        """
        assert run_rule(SilentBroadExcept(), good) == []

    def test_passes_warnings_warn(self):
        good = """
            import warnings
            def f():
                try:
                    risky()
                except Exception as exc:
                    warnings.warn(str(exc))
        """
        assert run_rule(SilentBroadExcept(), good) == []

    def test_inline_suppression_honoured(self):
        code = """
            def f():
                try:
                    risky()
                except Exception:  # replint: ignore[RL007] -- best-effort probe
                    pass
        """
        assert run_rule(SilentBroadExcept(), code) == []


# ---------------------------------------------------------------------------
class TestRL008RawLinalg:
    def test_flags_np_linalg_solve(self):
        bad = """
            import numpy as np
            def fit(gram, rhs):
                return np.linalg.solve(gram, rhs)
        """
        assert ids(run_rule(NoRawLinalgSolvers(), bad)) == ["RL008"]

    def test_flags_inv_via_from_import(self):
        bad = """
            from numpy.linalg import inv
            def precision(cov):
                return inv(cov)
        """
        assert ids(run_rule(NoRawLinalgSolvers(), bad)) == ["RL008"]

    def test_flags_scipy_cholesky(self):
        bad = """
            import scipy.linalg as sla
            def root(gram):
                return sla.cholesky(gram)
        """
        assert ids(run_rule(NoRawLinalgSolvers(), bad)) == ["RL008"]

    def test_passes_rank_revealing_primitives(self):
        good = """
            import numpy as np
            def decompose(x, y):
                u, s, vt = np.linalg.svd(x, full_matrices=False)
                beta = np.linalg.lstsq(x, y, rcond=None)[0]
                return np.linalg.pinv(x), np.linalg.matrix_rank(x), beta
        """
        assert run_rule(NoRawLinalgSolvers(), good) == []

    def test_passes_unrelated_solve_name(self):
        good = """
            def solve(puzzle):
                return sorted(puzzle)
            answer = solve([3, 1, 2])
        """
        assert run_rule(NoRawLinalgSolvers(), good) == []

    def test_exempt_inside_guarded_layer(self):
        code = """
            import numpy as np
            def safe_solve(a, b):
                return np.linalg.solve(a, b)
        """
        exempt = Path("src/repro/stats/linalg.py")
        assert run_rule(NoRawLinalgSolvers(), code, path=exempt) == []

    def test_inline_suppression_honoured(self):
        code = """
            import numpy as np
            def kernel(a, b):
                return np.linalg.solve(a, b)  # replint: ignore[RL008] -- benchmarked hot path, inputs pre-validated
        """
        assert run_rule(NoRawLinalgSolvers(), code) == []


# ---------------------------------------------------------------------------
class TestRL009ParallelPrimitives:
    def test_flags_concurrent_futures_import(self):
        bad = """
            from concurrent.futures import ThreadPoolExecutor
            def fan_out(fn, items):
                with ThreadPoolExecutor() as pool:
                    return list(pool.map(fn, items))
        """
        assert ids(run_rule(NoRawParallelPrimitives(), bad)) == ["RL009"]

    def test_flags_plain_import(self):
        bad = """
            import concurrent.futures
            import multiprocessing
        """
        assert ids(run_rule(NoRawParallelPrimitives(), bad)) == [
            "RL009",
            "RL009",
        ]

    def test_flags_multiprocessing_submodule(self):
        bad = """
            from multiprocessing.pool import Pool
        """
        assert ids(run_rule(NoRawParallelPrimitives(), bad)) == ["RL009"]

    def test_passes_threading_and_executor_layer_use(self):
        good = """
            import threading
            from repro.parallel import resolve_executor
            def fan_out(fn, items):
                return resolve_executor("thread", 4).map(fn, items)
        """
        assert run_rule(NoRawParallelPrimitives(), good) == []

    def test_exempt_inside_parallel_layer(self):
        code = """
            from concurrent.futures import ProcessPoolExecutor
        """
        exempt = Path("src/repro/parallel/executor.py")
        assert run_rule(NoRawParallelPrimitives(), code, path=exempt) == []

    def test_inline_suppression_honoured(self):
        code = """
            import multiprocessing  # replint: ignore[RL009] -- cpu_count probe only, no fan-out
        """
        assert run_rule(NoRawParallelPrimitives(), code) == []


# ---------------------------------------------------------------------------
class TestRL010HotLoopRefit:
    HOT = Path("src/repro/core/selection.py")

    def test_flags_fit_ols_in_for_loop(self):
        bad = """
            from repro.stats.ols import fit_ols
            def score_all(y, designs):
                scores = []
                for x in designs:
                    scores.append(fit_ols(y, x).rsquared)
                return scores
        """
        assert ids(run_rule(NoHotLoopRefit(), bad, path=self.HOT)) == [
            "RL010"
        ]

    def test_flags_fit_robust_in_while_loop(self):
        bad = """
            from repro.stats import robust
            def anneal(y, x):
                k = 0
                while k < 3:
                    res = robust.fit_robust(y, x)
                    k += 1
                return res
        """
        assert ids(run_rule(NoHotLoopRefit(), bad, path=self.HOT)) == [
            "RL010"
        ]

    def test_nested_loops_flag_once_per_call(self):
        bad = """
            from repro.stats.ols import fit_ols
            def grid(y, designs):
                out = []
                for block in designs:
                    for x in block:
                        out.append(fit_ols(y, x))
                return out
        """
        assert ids(run_rule(NoHotLoopRefit(), bad, path=self.HOT)) == [
            "RL010"
        ]

    def test_passes_fit_outside_loops(self):
        good = """
            from repro.stats.ols import fit_ols
            def final_fit(y, x):
                return fit_ols(y, x, cov_type="HC3")
        """
        assert run_rule(NoHotLoopRefit(), good, path=self.HOT) == []

    def test_only_configured_hot_modules_are_checked(self):
        code = """
            from repro.stats.ols import fit_ols
            def sweep(y, designs):
                return [fit_ols(y, x) for x in designs]
        """
        cold = Path("src/repro/experiments/tables.py")
        assert run_rule(NoHotLoopRefit(), code, path=cold) == []

    def test_inline_suppression_honoured(self):
        code = """
            from repro.stats.ols import fit_ols
            def sweep(y, designs):
                out = []
                for x in designs:
                    out.append(fit_ols(y, x))  # replint: ignore[RL010] -- cold diagnostic path, runs once per report
                return out
        """
        assert run_rule(NoHotLoopRefit(), code, path=self.HOT) == []


# ---------------------------------------------------------------------------
class TestRL011UnauditedReport:
    GATED = Path("src/repro/core/report.py")

    def test_flags_gated_module_without_audit_import(self):
        bad = """
            def render_table(rows):
                return "|".join(map(str, rows))
        """
        assert ids(run_rule(NoUnauditedReport(), bad, path=self.GATED)) == [
            "RL011"
        ]

    def test_passes_with_audit_submodule_import(self):
        good = """
            from repro.audit.framework import AuditReport

            def render_audit(report: AuditReport) -> str:
                return report.verdict
        """
        assert run_rule(NoUnauditedReport(), good, path=self.GATED) == []

    def test_passes_with_plain_package_import(self):
        good = """
            import repro.audit

            def gate(model):
                return repro.audit.audit_model(model).verdict
        """
        assert run_rule(NoUnauditedReport(), good, path=self.GATED) == []

    def test_persistence_module_is_gated_by_default(self):
        bad = """
            import json

            def save_model(model, path):
                path.write_text(json.dumps(model))
        """
        gated = Path("src/repro/core/persistence.py")
        assert ids(run_rule(NoUnauditedReport(), bad, path=gated)) == [
            "RL011"
        ]

    def test_only_configured_modules_are_checked(self):
        code = """
            def helper():
                return 1
        """
        cold = Path("src/repro/core/model.py")
        assert run_rule(NoUnauditedReport(), code, path=cold) == []

    def test_audit_lookalike_import_does_not_satisfy_gate(self):
        bad = """
            import repro.auditing_helpers

            def render(rows):
                return rows
        """
        assert ids(run_rule(NoUnauditedReport(), bad, path=self.GATED)) == [
            "RL011"
        ]


class TestRL012RawSleepRetry:
    def test_flags_sleep_in_while_loop(self):
        bad = """
            import time

            def wait_for_file(path):
                while not path.exists():
                    time.sleep(0.5)
        """
        assert ids(run_rule(NoRawSleepRetry(), bad)) == ["RL012"]

    def test_flags_aliased_sleep_in_for_loop(self):
        bad = """
            import time as t

            def retry(fn, attempts):
                for _ in range(attempts):
                    try:
                        return fn()
                    except OSError:
                        t.sleep(1.0)
                raise RuntimeError
        """
        assert ids(run_rule(NoRawSleepRetry(), bad)) == ["RL012"]

    def test_passes_sleep_outside_loops(self):
        good = """
            import time

            def settle():
                time.sleep(0.1)
        """
        assert run_rule(NoRawSleepRetry(), good) == []

    def test_passes_injected_sleep_fn_in_loop(self):
        good = """
            def retry(fn, attempts, sleep_fn):
                for attempt in range(attempts):
                    try:
                        return fn()
                    except OSError:
                        sleep_fn(2.0 ** attempt)
                raise RuntimeError
        """
        assert run_rule(NoRawSleepRetry(), good) == []

    def test_scheduler_and_retry_policy_modules_are_exempt(self):
        code = """
            import time

            def poll_loop():
                while True:
                    time.sleep(5.0)
        """
        exempt = Path("src/repro/sched/scheduler.py")
        assert run_rule(NoRawSleepRetry(), code, path=exempt) == []
        owner = Path("src/repro/acquisition/campaign.py")
        assert run_rule(NoRawSleepRetry(), code, path=owner) == []

    def test_loop_else_clause_is_not_a_retry_path(self):
        good = """
            import time

            def scan(items):
                for item in items:
                    process(item)
                else:
                    time.sleep(0.1)
        """
        assert run_rule(NoRawSleepRetry(), good) == []

    def test_configured_modules_override(self):
        code = """
            import time

            def poll():
                while True:
                    time.sleep(1.0)
        """
        config = LintConfig(sleep_retry_modules=("*/custom/poller.py",))
        custom = Path("src/custom/poller.py")
        assert run_rule(NoRawSleepRetry(), code, path=custom, config=config) == []
        assert ids(run_rule(NoRawSleepRetry(), code, config=config)) == ["RL012"]


# ---------------------------------------------------------------------------
class TestRL013UnboundedQueue:
    def test_flags_capacityless_queue(self):
        bad = """
            import queue

            q = queue.Queue()
        """
        assert ids(run_rule(NoUnboundedQueue(), bad)) == ["RL013"]

    def test_flags_unbounding_constants(self):
        bad = """
            import queue

            a = queue.Queue(0)
            b = queue.Queue(maxsize=None)
            c = queue.Queue(-1)
        """
        assert ids(run_rule(NoUnboundedQueue(), bad)) == ["RL013"] * 3

    def test_flags_capacityless_deque(self):
        bad = """
            from collections import deque

            buffer = deque()
            window = deque(maxlen=None)
        """
        assert ids(run_rule(NoUnboundedQueue(), bad)) == ["RL013"] * 2

    def test_flags_aliased_and_asyncio_queues(self):
        bad = """
            import asyncio
            from queue import Queue as Q

            a = asyncio.Queue()
            b = Q()
        """
        assert ids(run_rule(NoUnboundedQueue(), bad)) == ["RL013"] * 2

    def test_flags_simplequeue_always(self):
        # SimpleQueue has no maxsize parameter at all.
        bad = """
            import queue

            q = queue.SimpleQueue()
        """
        assert ids(run_rule(NoUnboundedQueue(), bad)) == ["RL013"]

    def test_passes_bounded_constructions(self):
        good = """
            import queue
            from collections import deque

            a = queue.Queue(100)
            b = queue.Queue(maxsize=8)
            c = deque(maxlen=16)
            d = deque([1, 2], 5)
            e = deque(items, maxlen=cap)
        """
        assert run_rule(NoUnboundedQueue(), good) == []

    def test_serve_layer_is_exempt(self):
        code = """
            from collections import deque

            pending = deque()
        """
        exempt = Path("src/repro/serve/queue.py")
        assert run_rule(NoUnboundedQueue(), code, path=exempt) == []

    def test_configured_modules_override(self):
        code = """
            import queue

            q = queue.Queue()
        """
        config = LintConfig(queue_modules=("*/custom/buffer.py",))
        custom = Path("src/custom/buffer.py")
        assert run_rule(NoUnboundedQueue(), code, path=custom, config=config) == []
        assert ids(run_rule(NoUnboundedQueue(), code, config=config)) == ["RL013"]


# ---------------------------------------------------------------------------
class TestRL014RawSharedMemory:
    def test_flags_submodule_import(self):
        bad = """
            import multiprocessing.shared_memory

            seg = multiprocessing.shared_memory.SharedMemory(create=True, size=8)
        """
        assert ids(run_rule(NoRawSharedMemory(), bad)) == ["RL014"]

    def test_flags_from_multiprocessing_import(self):
        bad = """
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=8)
        """
        assert ids(run_rule(NoRawSharedMemory(), bad)) == ["RL014"]

    def test_flags_from_submodule_import(self):
        bad = """
            from multiprocessing.shared_memory import SharedMemory

            seg = SharedMemory(create=True, size=8)
        """
        assert ids(run_rule(NoRawSharedMemory(), bad)) == ["RL014"]

    def test_flags_attribute_use_through_alias(self):
        # `import multiprocessing as mp` may carry an RL009 suppression
        # (cpu_count probe); raw segment ownership through the alias
        # must still trip the narrow rule.
        bad = """
            import multiprocessing as mp

            seg = mp.shared_memory.SharedMemory(create=True, size=8)
        """
        assert ids(run_rule(NoRawSharedMemory(), bad)) == ["RL014"]

    def test_passes_arena_layer_use(self):
        good = """
            from repro.parallel import SharedArena

            def publish(arrays):
                with SharedArena() as arena:
                    return [arena.publish(a) for a in arrays]
        """
        assert run_rule(NoRawSharedMemory(), good) == []

    def test_passes_plain_multiprocessing_import(self):
        # The broad fence is RL009's job; RL014 only owns segments.
        code = """
            import multiprocessing

            n = multiprocessing.cpu_count()
        """
        assert run_rule(NoRawSharedMemory(), code) == []

    def test_exempt_inside_parallel_layer(self):
        code = """
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=8)
        """
        exempt = Path("src/repro/parallel/arena.py")
        assert run_rule(NoRawSharedMemory(), code, path=exempt) == []

    def test_inline_suppression_honoured(self):
        code = """
            from multiprocessing import shared_memory  # replint: ignore[RL014] -- attach-only probe in a diagnostic script
        """
        assert run_rule(NoRawSharedMemory(), code) == []


# ---------------------------------------------------------------------------
class TestRL015NoScalarHotSim:
    HOT = Path("src/repro/acquisition/campaign.py")

    def test_flags_evaluate_in_for_loop(self):
        bad = """
            from repro.hardware.microarch import evaluate
            def states(specs, op, cfg):
                out = []
                for spec in specs:
                    out.append(evaluate(spec.characterization, op, spec.active_threads, cfg))
                return out
        """
        assert ids(run_rule(NoScalarHotSim(), bad, path=self.HOT)) == [
            "RL015"
        ]

    def test_flags_compute_power_in_while_loop(self):
        bad = """
            from repro.hardware import power
            def drain(queue, op, cfg, params):
                while queue:
                    state = queue.pop()
                    yield power.compute_power(state.hidden, op, cfg, params)
        """
        assert ids(run_rule(NoScalarHotSim(), bad, path=self.HOT)) == [
            "RL015"
        ]

    def test_passes_platform_execute_in_loop(self):
        good = """
            def acquire(platform, cells):
                out = []
                for cell in cells:
                    out.append(platform.execute(cell.workload, cell.frequency_mhz, cell.threads))
                return out
        """
        assert run_rule(NoScalarHotSim(), good, path=self.HOT) == []

    def test_passes_call_outside_loops(self):
        good = """
            from repro.hardware.microarch import evaluate
            def one_state(spec, op, cfg):
                return evaluate(spec.characterization, op, spec.active_threads, cfg)
        """
        assert run_rule(NoScalarHotSim(), good, path=self.HOT) == []

    def test_scalar_reference_modules_are_exempt(self):
        code = """
            from repro.hardware.microarch import evaluate
            def reference(specs, op, cfg):
                return [evaluate(s.characterization, op, s.active_threads, cfg) for s in specs]
        """
        oracle = Path("src/repro/hardware/platform.py")
        assert run_rule(NoScalarHotSim(), code, path=oracle) == []

    def test_configured_modules_override(self):
        code = """
            from repro.hardware.power import compute_power
            def sweep(states, op, cfg, params):
                out = []
                for s in states:
                    out.append(compute_power(s.hidden, op, cfg, params))
                return out
        """
        cfg = LintConfig(sim_hot_modules=("*/experiments/tables.py",))
        hot = Path("src/repro/experiments/tables.py")
        assert ids(run_rule(NoScalarHotSim(), code, path=hot, config=cfg)) == [
            "RL015"
        ]
        assert run_rule(NoScalarHotSim(), code, path=self.HOT, config=cfg) == []
