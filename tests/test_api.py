"""Public-API surface tests: everything advertised must resolve."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.stats",
    "repro.hardware",
    "repro.workloads",
    "repro.tracing",
    "repro.acquisition",
    "repro.core",
    "repro.cluster",
    "repro.experiments",
]


class TestPublicSurface:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.__all__ lists missing {name}"

    def test_top_level_quickstart_symbols(self):
        import repro

        for name in (
            "Platform",
            "run_workflow",
            "PowerModel",
            "select_events",
            "all_workloads",
            "run_campaign",
            "PowerDataset",
        ):
            assert hasattr(repro, name)

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_docstrings_on_public_callables(self):
        """Every public function/class re-exported at top level must be
        documented."""
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"
