"""Greedy selection is bit-identical on every execution backend.

Candidates within one greedy step are scored in parallel, but the
reduce walks candidate order — incumbents, ties and warnings cannot
depend on completion order.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.core import select_events


def _values_equal(a, b):
    if isinstance(a, float) and isinstance(b, float):
        # Step 1 has mean_vif=nan (VIF undefined for one counter);
        # bit-identity still means "nan on every backend".
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b
    return a == b


def results_equal(a, b):
    if (a.criterion, a.warnings) != (b.criterion, b.warnings):
        return False
    if len(a.steps) != len(b.steps):
        return False
    for sa, sb in zip(a.steps, b.steps):
        da, db = dataclasses.asdict(sa), dataclasses.asdict(sb)
        if da.keys() != db.keys():
            return False
        if not all(_values_equal(da[k], db[k]) for k in da):
            return False
    return True


@pytest.fixture(scope="module")
def pool(selection_dataset):
    """A ~10-candidate subset keeps the O(steps × candidates) fan-out
    cheap while still exercising multi-candidate steps."""
    return tuple(selection_dataset.counter_names[:10])


class TestSelectionBitIdentity:
    def test_backends_agree_exactly(self, selection_dataset, pool):
        reference = select_events(
            selection_dataset, 3, candidates=pool, parallel="serial"
        )
        for backend in ("thread", "process"):
            result = select_events(
                selection_dataset, 3, candidates=pool,
                parallel=backend, max_workers=2,
            )
            assert results_equal(result, reference), backend

    def test_vif_constrained_backends_agree(self, selection_dataset, pool):
        # The VIF-skip path and any step warnings must also reduce
        # deterministically.
        reference = select_events(
            selection_dataset, 3, candidates=pool, max_vif=10.0,
            parallel="serial",
        )
        result = select_events(
            selection_dataset, 3, candidates=pool, max_vif=10.0,
            parallel="process", max_workers=2,
        )
        assert results_equal(result, reference)

    def test_matches_default_serial_entry_point(self, selection_dataset, pool):
        # No parallel argument at all (the pre-ISSUE-4 call shape) is
        # still the same algorithm.
        legacy = select_events(selection_dataset, 3, candidates=pool)
        threaded = select_events(
            selection_dataset, 3, candidates=pool,
            parallel="thread", max_workers=4,
        )
        assert threaded.selected == legacy.selected
        assert results_equal(threaded, legacy)


class TestArenaSelection:
    """Zero-copy shared-memory dispatch is invisible in the results.

    The full candidate pool clears the small-task guard, so these runs
    exercise the real process fan-out: shared Gram buffers on the fast
    path, a shared dataset with batched candidates on the slow path,
    and the pickled fallback when ``REPRO_ARENA=0``.
    """

    def shm_segments(self):
        import glob

        return glob.glob("/dev/shm/repro-arena-*")

    def test_fast_path_bit_identical_and_leak_free(self, selection_dataset):
        reference = select_events(
            selection_dataset, 2, fast=True, parallel="serial"
        )
        result = select_events(
            selection_dataset, 2, fast=True,
            parallel="process", max_workers=2,
        )
        assert results_equal(result, reference)
        assert self.shm_segments() == []

    def test_slow_path_bit_identical_and_leak_free(self, selection_dataset):
        reference = select_events(
            selection_dataset, 2, fast=False, parallel="serial"
        )
        result = select_events(
            selection_dataset, 2, fast=False,
            parallel="process", max_workers=2,
        )
        assert results_equal(result, reference)
        assert self.shm_segments() == []

    def test_pickled_fallback_bit_identical(
        self, selection_dataset, monkeypatch
    ):
        reference = select_events(
            selection_dataset, 2, fast=False, parallel="serial"
        )
        monkeypatch.setenv("REPRO_ARENA", "0")
        result = select_events(
            selection_dataset, 2, fast=False,
            parallel="process", max_workers=2,
        )
        assert results_equal(result, reference)
        assert self.shm_segments() == []
