"""Unit tests for the online (streaming) power estimator."""

import numpy as np
import pytest

from repro.core import OnlineEstimator, PowerModel, estimate_run
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def fitted(full_dataset, selected_counters):
    return PowerModel(selected_counters).fit(full_dataset)


class TestOnlineEstimator:
    def _deltas(self, fitted, dataset, row, interval_s):
        cycles = dataset.frequency_mhz[row] * 1e6 * interval_s
        return {
            c: float(dataset.column(c)[row]) * cycles
            for c in fitted.counters
        }

    def test_matches_batch_prediction(self, fitted, full_dataset):
        """Streaming evaluation of one interval must equal the batch
        model prediction for the same rates."""
        est = OnlineEstimator(fitted, smoothing=1.0)
        row = 10
        out = est.update(
            self._deltas(fitted, full_dataset, row, 0.5),
            interval_s=0.5,
            voltage_v=float(full_dataset.voltage_v[row]),
            frequency_mhz=float(full_dataset.frequency_mhz[row]),
        )
        batch = fitted.predict(full_dataset.subset(np.array([row])))[0]
        assert out.power_w == pytest.approx(batch, rel=1e-9)

    def test_smoothing_filters_jumps(self, fitted, full_dataset):
        est = OnlineEstimator(fitted, smoothing=0.2)
        rows = [0, 0, 0, 50, 50, 50]
        outs = [
            est.update(
                self._deltas(fitted, full_dataset, r, 0.5),
                interval_s=0.5,
                voltage_v=float(full_dataset.voltage_v[r]),
                frequency_mhz=float(full_dataset.frequency_mhz[r]),
            )
            for r in rows
        ]
        jump_raw = abs(outs[3].power_w - outs[2].power_w)
        jump_smooth = abs(outs[3].smoothed_w - outs[2].smoothed_w)
        if jump_raw > 1.0:
            assert jump_smooth < jump_raw

    def test_history_and_reset(self, fitted, full_dataset):
        est = OnlineEstimator(fitted)
        est.update(
            self._deltas(fitted, full_dataset, 0, 1.0),
            interval_s=1.0,
            voltage_v=0.97,
            frequency_mhz=2400,
        )
        assert len(est.history) == 1
        est.reset()
        assert est.history == ()

    def test_missing_counter_rejected(self, fitted):
        est = OnlineEstimator(fitted)
        with pytest.raises(KeyError, match="missing"):
            est.update({}, interval_s=1.0, voltage_v=0.97, frequency_mhz=2400)

    def test_invalid_inputs(self, fitted, full_dataset):
        est = OnlineEstimator(fitted)
        deltas = self._deltas(fitted, full_dataset, 0, 1.0)
        with pytest.raises(ValueError):
            est.update(deltas, interval_s=0.0, voltage_v=0.97, frequency_mhz=2400)
        with pytest.raises(ValueError):
            est.update(deltas, interval_s=1.0, voltage_v=-1.0, frequency_mhz=2400)
        with pytest.raises(ValueError):
            OnlineEstimator(fitted, smoothing=0.0)


class TestEstimateRun:
    def test_timeline_tracks_measurement(self, platform, fitted):
        run = platform.execute(get_workload("compute"), 2400, 24)
        timeline = estimate_run(platform, run, fitted, interval_s=0.5)
        assert timeline.times_s.size == pytest.approx(20, abs=2)
        assert timeline.mape() < 15.0

    def test_multi_phase_run_follows_transitions(self, platform, fitted):
        run = platform.execute(get_workload("mgrid331"), 2400, 24)
        timeline = estimate_run(platform, run, fitted, interval_s=1.0)
        # Estimates must move in the same direction as the measurement
        # across large phase transitions.
        assert timeline.tracks_phase_changes(threshold_w=10.0)

    def test_finer_interval_more_samples(self, platform, fitted):
        run = platform.execute(get_workload("compute"), 2400, 8)
        coarse = estimate_run(platform, run, fitted, interval_s=2.0)
        fine = estimate_run(platform, run, fitted, interval_s=0.25)
        assert fine.times_s.size > 3 * coarse.times_s.size

    def test_deterministic(self, platform, fitted):
        run = platform.execute(get_workload("compute"), 2400, 8)
        a = estimate_run(platform, run, fitted)
        b = estimate_run(platform, run, fitted)
        assert np.array_equal(a.estimated_w, b.estimated_w)
        assert np.array_equal(a.measured_w, b.measured_w)
