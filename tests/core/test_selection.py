"""Unit tests for Algorithm 1 (greedy PMC event selection)."""

import numpy as np
import pytest

from repro.acquisition import PowerDataset
from repro.core import PowerModel, select_events


def _dataset(n=120, seed=0, noise=0.5):
    """Power driven by three known counters with decreasing weight,
    plus a counter that duplicates another (collinearity trap)."""
    rng = np.random.default_rng(seed)
    counters = rng.uniform(0.0, 1.0, size=(n, 54))
    # Make column 5 a near-copy of column 0 (the CA_SNP-style trap).
    counters[:, 5] = counters[:, 0] * 1.5 + rng.normal(0, 0.01, n)
    v = np.full(n, 0.97)
    f = np.full(n, 2400.0)
    v2f = v * v * f / 1000.0
    power_w = (
        50.0 * counters[:, 0] * v2f
        + 20.0 * counters[:, 1] * v2f
        + 8.0 * counters[:, 2] * v2f
        + 15.0 * v2f
        + 40.0
        + rng.normal(0, noise, n)
    )
    return PowerDataset(
        counters=counters,
        power_w=power_w,
        voltage_v=v,
        frequency_mhz=f,
        threads=np.full(n, 24),
        workloads=tuple("w" for _ in range(n)),
        suites=tuple("roco2" for _ in range(n)),
        phase_names=tuple(f"p{i}" for i in range(n)),
    )


class TestGreedy:
    def test_picks_informative_counters_in_weight_order(self):
        ds = _dataset()
        result = select_events(ds, 3)
        names = ds.counter_names
        assert result.selected[0] in (names[0], names[5])
        assert names[1] in result.selected
        assert names[2] in result.selected

    def test_r2_monotone_nondecreasing(self):
        ds = _dataset()
        result = select_events(ds, 6)
        r2s = [s.rsquared for s in result.steps]
        assert all(b >= a - 1e-12 for a, b in zip(r2s, r2s[1:]))

    def test_first_step_vif_is_nan(self):
        result = select_events(_dataset(), 2)
        assert np.isnan(result.steps[0].mean_vif)
        assert not np.isnan(result.steps[1].mean_vif)

    def test_no_duplicates(self):
        result = select_events(_dataset(), 8)
        assert len(set(result.selected)) == 8

    def test_each_step_matches_refit(self):
        """Step R² must equal a fresh Equation 1 fit on the prefix."""
        ds = _dataset()
        result = select_events(ds, 4)
        for i in range(1, 5):
            refit = PowerModel(result.selected[:i]).fit(ds)
            assert result.steps[i - 1].rsquared == pytest.approx(refit.rsquared)

    def test_collinear_trap_detected(self):
        """Selecting both the counter and its near-copy must blow the
        VIF — and first_unstable_step must see it."""
        ds = _dataset()
        names = ds.counter_names
        forced = select_events(ds, 2, candidates=[names[0], names[5]])
        assert forced.steps[-1].mean_vif > 10.0
        assert forced.first_unstable_step() == 2
        assert forced.stable_prefix() == (forced.selected[0],)

    def test_stable_prefix_full_when_no_blowup(self):
        result = select_events(_dataset(), 3)
        if result.first_unstable_step() is None:
            assert result.stable_prefix() == result.selected


class TestOptions:
    def test_candidates_restriction(self):
        ds = _dataset()
        pool = list(ds.counter_names[10:20])
        result = select_events(ds, 3, candidates=pool)
        assert all(c in pool for c in result.selected)

    def test_unknown_candidate(self):
        with pytest.raises(KeyError):
            select_events(_dataset(), 1, candidates=["NOPE"])

    def test_bad_n_events(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            select_events(ds, 0)
        with pytest.raises(ValueError):
            select_events(ds, 3, candidates=list(ds.counter_names[:2]))

    def test_unknown_criterion(self):
        with pytest.raises(ValueError, match="criterion"):
            select_events(_dataset(), 2, criterion="vibes")

    def test_max_vif_constraint_avoids_trap(self):
        ds = _dataset()
        names = ds.counter_names
        constrained = select_events(
            ds, 2, candidates=[names[0], names[5], names[1]], max_vif=5.0
        )
        # The near-copy would blow VIF; the constrained greedy must
        # pick the independent counter instead.
        assert set(constrained.selected) == {names[0], names[1]} or set(
            constrained.selected
        ) == {names[5], names[1]}
        assert constrained.steps[-1].mean_vif <= 5.0

    def test_max_vif_can_exhaust_candidates(self):
        ds = _dataset()
        names = ds.counter_names
        result = select_events(
            ds, 2, candidates=[names[0], names[5]], max_vif=2.0
        )
        # Only one candidate survives the constraint.
        assert len(result.selected) == 1

    def test_alternative_criteria_run(self):
        ds = _dataset()
        for crit in ("adj_r2", "aic", "bic"):
            result = select_events(ds, 3, criterion=crit)
            assert len(result.selected) == 3
            assert result.criterion == crit

    def test_table_rows_shape(self):
        result = select_events(_dataset(), 3)
        rows = result.table_rows()
        assert len(rows) == 3
        assert all(len(r) == 4 for r in rows)


class TestDegradedSelection:
    """Algorithm 1 on degraded inputs: missing counters, exact ties,
    infinite VIF, robust estimator (DESIGN.md §10)."""

    def _dup_dataset(self):
        """Dataset whose column 7 is an exact copy of column 0 — exact
        criterion ties and infinite VIF on demand."""
        ds = _dataset()
        counters = ds.counters.copy()
        counters[:, 7] = counters[:, 0]
        return PowerDataset(
            counters=counters,
            power_w=ds.power_w,
            voltage_v=ds.voltage_v,
            frequency_mhz=ds.frequency_mhz,
            threads=ds.threads,
            workloads=ds.workloads,
            suites=ds.suites,
            phase_names=ds.phase_names,
        )

    def test_on_missing_raise_is_default(self):
        with pytest.raises(KeyError, match="NOPE"):
            select_events(_dataset(), 1, candidates=["NOPE"])

    def test_on_missing_skip_drops_and_warns(self):
        ds = _dataset()
        names = ds.counter_names
        result = select_events(
            ds, 2,
            candidates=["NOPE", names[0], names[1], names[2]],
            on_missing="skip",
        )
        assert len(result.selected) == 2
        assert "NOPE" not in result.selected
        assert any("NOPE" in w for w in result.warnings)

    def test_on_missing_skip_clamps_n_events(self):
        ds = _dataset()
        names = ds.counter_names
        result = select_events(
            ds, 5, candidates=list(names[:2]), on_missing="skip"
        )
        assert len(result.selected) == 2
        assert any("selecting all" in w for w in result.warnings)

    def test_on_missing_raise_still_rejects_small_pool(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            select_events(ds, 5, candidates=list(ds.counter_names[:2]))

    def test_exact_tie_recorded_and_broken_by_pool_order(self):
        ds = self._dup_dataset()
        names = ds.counter_names
        result = select_events(ds, 1, candidates=[names[0], names[7]])
        # The duplicate column scores identically; the earliest pool
        # entry must win and the tie must be recorded.
        assert result.selected == (names[0],)
        assert any("tie" in w for w in result.steps[0].warnings)

    def test_infinite_vif_step_warning(self):
        ds = self._dup_dataset()
        names = ds.counter_names
        result = select_events(ds, 2, candidates=[names[0], names[7]])
        assert np.isinf(result.steps[-1].mean_vif)
        assert any("infinite" in w for w in result.steps[-1].warnings)
        assert result.first_unstable_step() == 2

    def test_huber_estimator_selects(self):
        ds = _dataset()
        result = select_events(ds, 3, estimator="huber")
        assert len(result.selected) == 3
        # The informative counters still dominate under IRLS.
        names = ds.counter_names
        assert result.selected[0] in (names[0], names[5])

    def test_invalid_estimator_rejected(self):
        with pytest.raises(ValueError, match="estimator"):
            select_events(_dataset(), 1, estimator="theil-sen")

    def test_invalid_on_missing_rejected(self):
        with pytest.raises(ValueError, match="on_missing"):
            select_events(_dataset(), 1, on_missing="ignore")

    def test_degraded_selection_deterministic(self):
        ds = self._dup_dataset()
        names = ds.counter_names
        pool = ["NOPE", *names[:10]]
        a = select_events(ds, 4, candidates=pool, on_missing="skip")
        b = select_events(ds, 4, candidates=pool, on_missing="skip")
        assert a.selected == b.selected
        assert a.warnings == b.warnings
