"""Integration test of the end-to-end workflow (Fig. 1) on a reduced
campaign — the full-scale workflow is covered by the experiments."""

import pytest

from repro.core import run_workflow
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def workflow_result():
    return run_workflow(
        workloads=[
            get_workload("idle"),
            get_workload("busywait"),
            get_workload("compute"),
            get_workload("memory_read"),
            get_workload("md"),
            get_workload("swim"),
        ],
        frequencies_mhz=(1200, 2400),
        selection_frequency_mhz=2400,
        n_events=4,
    )


class TestWorkflow:
    def test_selection_at_requested_frequency(self, workflow_result):
        ds = workflow_result.selection_dataset
        assert set(ds.frequency_mhz) == {2400}

    def test_full_dataset_covers_both_frequencies(self, workflow_result):
        ds = workflow_result.full_dataset
        assert set(ds.frequency_mhz) == {1200, 2400}

    def test_selected_counter_count(self, workflow_result):
        assert len(workflow_result.selected_counters) == 4

    def test_model_fit_quality(self, workflow_result):
        assert workflow_result.model.rsquared > 0.8

    def test_validation_ran(self, workflow_result):
        assert workflow_result.validation.mape > 0
        assert len(workflow_result.validation.fold_mapes) == 10

    def test_summary_text(self, workflow_result):
        text = workflow_result.summary()
        assert "selected events" in text
        assert "MAPE" in text

    def test_selection_frequency_must_be_in_campaign(self):
        with pytest.raises(ValueError, match="selection frequency"):
            run_workflow(
                workloads=[get_workload("idle"), get_workload("compute")],
                frequencies_mhz=(1200,),
                selection_frequency_mhz=2400,
            )
