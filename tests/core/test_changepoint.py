"""Tests for CUSUM phase detection."""

import numpy as np
import pytest

from repro.core import PowerModel, estimate_run
from repro.core.changepoint import (
    cusum_changepoints,
    detect_phases,
    segment_mean,
)
from repro.workloads import get_workload


def _step_series(rng, levels=(100.0, 150.0, 120.0), n_per=40, noise=1.0):
    parts = [rng.normal(l, noise, size=n_per) for l in levels]
    return np.concatenate(parts)


class TestCusum:
    def test_detects_clear_steps(self, rng):
        x = _step_series(rng)
        changes = cusum_changepoints(x)
        assert len(changes) == 2
        # Boundaries found near the true transition points.
        assert abs(changes[0] - 40) <= 3
        assert abs(changes[1] - 80) <= 3

    def test_no_false_alarms_on_stationary_noise(self, rng):
        x = rng.normal(100.0, 1.0, size=500)
        assert cusum_changepoints(x) == []

    def test_small_shift_below_threshold_ignored(self, rng):
        x = np.concatenate(
            [rng.normal(100.0, 2.0, 50), rng.normal(100.5, 2.0, 50)]
        )
        assert cusum_changepoints(x, threshold_sigmas=8.0) == []

    def test_detects_downward_steps(self, rng):
        x = _step_series(rng, levels=(150.0, 100.0))
        changes = cusum_changepoints(x)
        assert len(changes) == 1

    def test_dead_time_respected(self, rng):
        x = _step_series(rng, levels=(100.0, 200.0, 100.0), n_per=20)
        changes = cusum_changepoints(x, min_segment=5)
        assert all(b - a >= 5 for a, b in zip([0] + changes, changes))

    def test_short_series_no_changes(self):
        assert cusum_changepoints(np.array([1.0, 2.0, 3.0])) == []

    def test_explicit_noise_sigma(self, rng):
        x = _step_series(rng, noise=0.5)
        changes = cusum_changepoints(x, noise_sigma=0.5)
        assert len(changes) == 2

    def test_invalid_params(self, rng):
        x = _step_series(rng)
        with pytest.raises(ValueError):
            cusum_changepoints(x, threshold_sigmas=0.0)


class TestSegments:
    def test_segment_means(self, rng):
        x = _step_series(rng, levels=(100.0, 150.0), noise=0.5)
        segs = segment_mean(x, [40])
        assert len(segs) == 2
        assert segs[0].mean == pytest.approx(100.0, abs=0.5)
        assert segs[1].mean == pytest.approx(150.0, abs=0.5)
        assert segs[0].length == 40

    def test_bad_changepoints(self, rng):
        with pytest.raises(ValueError):
            segment_mean(np.zeros(10), [5, 5])


class TestOnSimulatedRuns:
    @pytest.fixture(scope="class")
    def fitted(self, full_dataset, selected_counters):
        return PowerModel(selected_counters).fit(full_dataset)

    def test_recovers_spec_phase_count(self, platform, fitted):
        """Phase detection on the streamed estimate must find roughly
        the run's true number of major phases."""
        workload = get_workload("mgrid331")
        run = platform.execute(workload, 2400, 24)
        timeline = estimate_run(platform, run, fitted, interval_s=0.5)
        # Threshold well above the PMU read noise: phase shifts on this
        # run are tens of watts, read noise a couple of watts.
        segments = detect_phases(timeline, threshold_sigmas=8.0)
        true_phases = len(run.phases)
        assert true_phases * 0.5 <= len(segments) <= true_phases * 2.0

    def test_single_phase_kernel_yields_one_segment(self, platform, fitted):
        run = platform.execute(get_workload("compute"), 2400, 24)
        timeline = estimate_run(platform, run, fitted, interval_s=0.25)
        segments = detect_phases(timeline)
        assert len(segments) == 1

    def test_estimated_and_measured_agree(self, platform, fitted):
        run = platform.execute(get_workload("applu331"), 2400, 24)
        timeline = estimate_run(platform, run, fitted, interval_s=0.5)
        est = detect_phases(timeline, use="estimated")
        meas = detect_phases(timeline, use="measured")
        assert abs(len(est) - len(meas)) <= 2

    def test_invalid_stream_choice(self, platform, fitted):
        run = platform.execute(get_workload("compute"), 2400, 8)
        timeline = estimate_run(platform, run, fitted)
        with pytest.raises(ValueError):
            detect_phases(timeline, use="thermal")
