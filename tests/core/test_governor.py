"""Tests for the model-driven power-cap governor."""

import numpy as np
import pytest

from repro.core import PowerModel
from repro.core.governor import PowerCapGovernor, govern_workload
from repro.hardware import HASWELL_EP_CONFIG, PAPER_FREQUENCIES_MHZ
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def fitted(full_dataset, selected_counters):
    return PowerModel(selected_counters).fit(full_dataset)


class TestGovernor:
    def test_prediction_monotone_in_frequency(self, fitted, full_dataset):
        gov = PowerCapGovernor(
            fitted, PAPER_FREQUENCIES_MHZ, HASWELL_EP_CONFIG, cap_w=200.0
        )
        rates = {
            c: float(full_dataset.column(c)[100]) for c in fitted.counters
        }
        preds = [gov.predict_at(rates, f) for f in sorted(PAPER_FREQUENCIES_MHZ)]
        assert all(b > a for a, b in zip(preds, preds[1:]))

    def test_loose_cap_picks_max_frequency(self, fitted, full_dataset):
        gov = PowerCapGovernor(
            fitted, PAPER_FREQUENCIES_MHZ, HASWELL_EP_CONFIG, cap_w=1000.0
        )
        rates = {c: float(full_dataset.column(c)[0]) for c in fitted.counters}
        assert gov.choose_frequency(rates) == 2600

    def test_impossible_cap_falls_to_min(self, fitted, full_dataset):
        gov = PowerCapGovernor(
            fitted, PAPER_FREQUENCIES_MHZ, HASWELL_EP_CONFIG, cap_w=10.0
        )
        rates = {c: float(full_dataset.column(c)[100]) for c in fitted.counters}
        assert gov.choose_frequency(rates) == 1200

    def test_validation(self, fitted):
        with pytest.raises(ValueError):
            PowerCapGovernor(fitted, (), HASWELL_EP_CONFIG, cap_w=100.0)
        with pytest.raises(ValueError):
            PowerCapGovernor(
                fitted, PAPER_FREQUENCIES_MHZ, HASWELL_EP_CONFIG, cap_w=0.0
            )


class TestClosedLoop:
    def test_cap_respected_for_heavy_workload(self, platform, fitted):
        """compute at 24T draws ~216 W uncapped at 2600 MHz; a 160 W
        cap must force the governor down and mostly hold the cap."""
        timeline = govern_workload(
            platform, get_workload("compute"), 24, fitted, cap_w=160.0
        )
        # Steady state (after the first adjustment interval).
        steady = timeline.true_power_w[1:]
        assert np.mean(steady <= 160.0 + 5.0) > 0.9
        assert timeline.mean_frequency_mhz() < 2600

    def test_light_workload_keeps_max_frequency(self, platform, fitted):
        timeline = govern_workload(
            platform, get_workload("busywait"), 8, fitted, cap_w=250.0
        )
        assert timeline.performance_retained() == pytest.approx(1.0)
        assert timeline.violation_fraction() == 0.0

    def test_tighter_cap_lower_frequency(self, platform, fitted):
        loose = govern_workload(
            platform, get_workload("compute"), 24, fitted, cap_w=200.0
        )
        tight = govern_workload(
            platform, get_workload("compute"), 24, fitted, cap_w=130.0
        )
        assert tight.mean_frequency_mhz() < loose.mean_frequency_mhz()

    def test_phase_structured_workload_adapts(self, platform, fitted):
        """Multi-phase SPEC run: the governor must move between
        P-states as phases change."""
        timeline = govern_workload(
            platform, get_workload("mgrid331"), 24, fitted, cap_w=170.0,
            interval_s=2.0,
        )
        assert len(set(timeline.frequency_mhz.tolist())) >= 2
        assert timeline.violation_fraction(tolerance_w=8.0) < 0.2

    def test_predictions_track_truth(self, platform, fitted):
        timeline = govern_workload(
            platform, get_workload("compute"), 24, fitted, cap_w=180.0
        )
        rel_err = np.abs(
            timeline.predicted_power_w - timeline.true_power_w
        ) / timeline.true_power_w
        assert np.median(rel_err) < 0.15
