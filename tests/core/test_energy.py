"""Unit tests for energy accounting and DVFS tuning."""

import pytest

from repro.core import (
    dvfs_energy_profile,
    optimal_frequency,
    phase_energy,
    run_energy,
)
from repro.workloads import get_workload


class TestAccounting:
    def test_phase_energy_sums_power_times_time(self, platform):
        run = platform.execute(get_workload("compute"), 2400, 8)
        phases = phase_energy(run)
        assert len(phases) == 1
        name, joules = phases[0]
        expected = run.phases[0].power_breakdown.measured_w * 10.0
        assert joules == pytest.approx(expected)

    def test_run_energy_account(self, platform):
        run = platform.execute(get_workload("md"), 2400, 24)
        account = run_energy(run)
        assert account.energy_j == pytest.approx(
            sum(e for _, e in phase_energy(run))
        )
        assert account.average_power_w == pytest.approx(
            account.energy_j / account.duration_s
        )
        assert account.instructions > 1e9
        assert 0.1 < account.energy_per_instruction_nj < 1000.0

    def test_edp_definition(self, platform):
        run = platform.execute(get_workload("compute"), 2400, 8)
        account = run_energy(run)
        assert account.edp_js == pytest.approx(
            account.energy_j * account.duration_s
        )


class TestDvfsTuning:
    FREQS = (1200, 1600, 2000, 2400, 2600)

    def test_profile_is_work_normalized(self, platform):
        profile = dvfs_energy_profile(
            platform, get_workload("compute"), 24, self.FREQS
        )
        assert len(profile) == len(self.FREQS)
        # Same instruction budget at every state.
        insts = {round(a.instructions) for a in profile}
        assert len(insts) == 1

    def test_compute_bound_runtime_scales_inverse_frequency(self, platform):
        profile = dvfs_energy_profile(
            platform, get_workload("compute"), 24, (1200, 2400)
        )
        t_low, t_high = profile[0].duration_s, profile[1].duration_s
        assert t_low / t_high == pytest.approx(2.0, rel=0.05)

    def test_memory_bound_runtime_barely_improves(self, platform):
        profile = dvfs_energy_profile(
            platform, get_workload("memory_read"), 24, (1200, 2400)
        )
        t_low, t_high = profile[0].duration_s, profile[1].duration_s
        # Saturated bandwidth: doubling f buys little.
        assert t_low / t_high < 1.3

    def test_memory_bound_prefers_lower_frequency_than_compute(self, platform):
        mem = optimal_frequency(
            dvfs_energy_profile(platform, get_workload("memory_read"), 24, self.FREQS)
        )
        cpu = optimal_frequency(
            dvfs_energy_profile(platform, get_workload("compute"), 24, self.FREQS)
        )
        assert mem.frequency_mhz <= cpu.frequency_mhz

    def test_edp_objective_prefers_higher_frequency_than_energy(self, platform):
        profile = dvfs_energy_profile(
            platform, get_workload("memory_read"), 24, self.FREQS
        )
        e_opt = optimal_frequency(profile, objective="energy")
        edp_opt = optimal_frequency(profile, objective="edp")
        assert edp_opt.frequency_mhz >= e_opt.frequency_mhz

    def test_objective_validation(self, platform):
        profile = dvfs_energy_profile(
            platform, get_workload("compute"), 8, (1200, 2400)
        )
        with pytest.raises(ValueError):
            optimal_frequency(profile, objective="speed")
        with pytest.raises(ValueError):
            optimal_frequency([])
