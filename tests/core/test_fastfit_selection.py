"""Property-style equivalence: fast-fit vs exact path on seeded chaos.

The fast-fit contract (DESIGN.md §12) is behavioural, not structural:
for *any* dataset — collinear, NaN-ridden, scale-skewed, duplicated,
constant, underdetermined — ``select_events``/``cross_validate`` must
produce the identical selected sequence and warnings with ``fast=True``
and ``fast=False``, with fit statistics within 1e-9 relative
tolerance.  These tests sweep ~50 seeded random datasets with
adversarial injections and assert exactly that, so any future guard or
kernel change that silently shifts a selection fails loudly here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition.dataset import PowerDataset
from repro.core.features import design_matrix
from repro.core.selection import select_events
from repro.stats.crossval import cross_validate

SEEDS = list(range(50))


def make_chaos_dataset(seed: int) -> PowerDataset:
    """One seeded random dataset with seed-dependent degradations."""
    rng = np.random.default_rng(1_000_003 + seed)
    n = int(rng.integers(12, 140))
    k = int(rng.integers(4, 14))
    names = tuple(f"C{i:02d}" for i in range(k))
    scales = 10.0 ** rng.uniform(-4.0, 4.0, size=k)
    counters = rng.lognormal(sigma=1.0, size=(n, k)) * scales

    # Seed-dependent adversarial injections.  Each targets one guard of
    # the fast kernel: pivots (duplicates), condition certificates
    # (near-collinear + extreme scale), finiteness (NaN), degenerate
    # columns (zero/constant).
    if k >= 5 and rng.random() < 0.4:
        counters[:, 1] = counters[:, 0]  # exact duplicate → ties
    if k >= 6 and rng.random() < 0.4:
        counters[:, 2] = counters[:, 3] * (
            1.0 + 1e-10 * rng.standard_normal(n)
        )  # near-collinear → tiny bordered pivot
    if rng.random() < 0.3:
        counters[:, k - 1] = 0.0  # zero column
    if rng.random() < 0.3:
        counters[:, k - 2] = 7.25  # constant column
    if rng.random() < 0.35:
        rows = rng.integers(0, n, size=max(1, n // 20))
        cols = rng.integers(0, k, size=rows.size)
        counters[rows, cols] = np.nan  # sensor dropouts
    if rng.random() < 0.3:
        counters[:, int(rng.integers(0, k))] *= 1e12  # extreme scale

    voltage_v = rng.uniform(0.85, 1.3, size=n)
    frequency_mhz = rng.choice([1200.0, 1800.0, 2400.0], size=n)
    power_w = np.abs(
        np.nan_to_num(counters[:, : min(3, k)]).sum(axis=1) * 1e-6
        + voltage_v**2 * frequency_mhz * rng.uniform(0.01, 0.03, size=n)
    ) + rng.uniform(1.0, 5.0, size=n)
    threads = rng.integers(1, 25, size=n)
    labels = tuple(f"w{i % 7}" for i in range(n))
    return PowerDataset(
        counters=counters,
        power_w=power_w,
        voltage_v=voltage_v,
        frequency_mhz=frequency_mhz,
        threads=threads,
        workloads=labels,
        suites=tuple("roco2" for _ in range(n)),
        phase_names=labels,
        counter_names=names,
    )


def run_both(dataset, **kwargs):
    """(outcome, payload) of select_events under both paths."""
    results = []
    for fast in (False, True):
        try:
            results.append(("ok", select_events(dataset, fast=fast, **kwargs)))
        except Exception as exc:  # noqa: BLE001 - equivalence contract
            results.append(("err", (type(exc), str(exc))))
    return results


def assert_selection_equivalent(slow, fast):
    assert slow[0] == fast[0], (slow, fast)
    if slow[0] == "err":
        assert slow[1] == fast[1]
        return
    rs, rf = slow[1], fast[1]
    assert rs.selected == rf.selected
    assert rs.warnings == rf.warnings
    assert len(rs.steps) == len(rf.steps)
    for a, b in zip(rs.steps, rf.steps):
        assert a.counter == b.counter
        assert a.warnings == b.warnings
        np.testing.assert_allclose(
            a.criterion_value, b.criterion_value, rtol=1e-9
        )
        np.testing.assert_allclose(a.rsquared, b.rsquared, rtol=1e-9)
        np.testing.assert_allclose(
            a.rsquared_adj, b.rsquared_adj, rtol=1e-9
        )
        if np.isnan(a.mean_vif) or np.isnan(b.mean_vif):
            assert np.isnan(a.mean_vif) and np.isnan(b.mean_vif)
        else:
            assert a.mean_vif == b.mean_vif


class TestSelectionEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fast_and_slow_identical(self, seed):
        ds = make_chaos_dataset(seed)
        rng = np.random.default_rng(seed)
        criterion = ("r2", "adj_r2", "aic", "bic")[seed % 4]
        n_events = int(
            rng.integers(2, min(6, len(ds.counter_names)) + 1)
        )
        kwargs = dict(n_events=n_events, criterion=criterion)
        if seed % 3 == 0:
            kwargs["max_vif"] = float(rng.uniform(2.0, 50.0))
        slow, fast = run_both(ds, **kwargs)
        assert_selection_equivalent(slow, fast)

    def test_env_escape_hatch_matches_explicit_flag(self, monkeypatch):
        ds = make_chaos_dataset(7)
        expected = select_events(ds, 3, fast=False)
        monkeypatch.setenv("REPRO_FASTFIT", "0")
        via_env = select_events(ds, 3)
        assert via_env.selected == expected.selected
        for a, b in zip(expected.steps, via_env.steps):
            assert a.criterion_value == b.criterion_value


class TestCrossValidationEquivalence:
    @pytest.mark.parametrize("seed", SEEDS[::5])
    def test_fold_scores_match(self, seed):
        ds = make_chaos_dataset(seed)
        finite = [
            name
            for i, name in enumerate(ds.counter_names)
            if np.all(np.isfinite(ds.counters[:, i]))
        ][:4]
        if len(finite) < 2:
            pytest.skip("dataset degraded every candidate")
        x = design_matrix(ds, finite)[:, :-1]  # constant re-added by CV
        n_splits = min(5, ds.n_samples)
        slow = cross_validate(
            ds.power_w, x, n_splits=n_splits, fast=False
        )
        fast = cross_validate(
            ds.power_w, x, n_splits=n_splits, fast=True
        )
        for a, b in zip(slow.folds, fast.folds):
            np.testing.assert_allclose(
                [a.rsquared, a.rsquared_adj, a.mape, a.r2_oos],
                [b.rsquared, b.rsquared_adj, b.mape, b.r2_oos],
                rtol=1e-9,
            )
            assert (a.n_train, a.n_test) == (b.n_train, b.n_test)


class TestRealDatasetEquivalence:
    """The paper's own selection data, including the VIF-guarded run."""

    def test_selection_dataset_all_criteria(self, selection_dataset):
        for criterion in ("r2", "adj_r2", "aic", "bic"):
            slow, fast = run_both(
                selection_dataset, n_events=6, criterion=criterion
            )
            assert_selection_equivalent(slow, fast)

    def test_selection_dataset_vif_guarded(self, selection_dataset):
        slow, fast = run_both(selection_dataset, n_events=6, max_vif=5.0)
        assert_selection_equivalent(slow, fast)
