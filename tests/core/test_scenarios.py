"""Unit tests for the four training scenarios (on the small campaign)."""

import numpy as np
import pytest

from repro.core import (
    SCENARIO_NAMES,
    cv_out_of_fold_predictions,
    run_all_scenarios,
    scenario_cv_all,
    scenario_cv_synthetic,
    scenario_random_workloads,
    scenario_synthetic_to_spec,
)

COUNTERS = ("CA_SNP", "TOT_CYC", "PRF_DM", "STL_ICY")


class TestCvPredictions:
    def test_every_row_predicted_once(self, small_dataset):
        preds, fold_mapes, fold_fits = cv_out_of_fold_predictions(
            small_dataset, COUNTERS, n_splits=5
        )
        assert preds.shape == (small_dataset.n_samples,)
        assert np.all(np.isfinite(preds))
        assert len(fold_mapes) == 5
        assert len(fold_fits) == 5

    def test_deterministic_in_seed(self, small_dataset):
        a, _, _ = cv_out_of_fold_predictions(small_dataset, COUNTERS, seed=1)
        b, _, _ = cv_out_of_fold_predictions(small_dataset, COUNTERS, seed=1)
        assert np.array_equal(a, b)

    def test_seed_changes_folds(self, small_dataset):
        a, _, _ = cv_out_of_fold_predictions(small_dataset, COUNTERS, seed=1)
        b, _, _ = cv_out_of_fold_predictions(small_dataset, COUNTERS, seed=2)
        assert not np.array_equal(a, b)


class TestScenarios:
    def test_scenario1_split(self, small_dataset):
        r = scenario_random_workloads(
            small_dataset, COUNTERS, n_train=2, n_repeats=1
        )
        assert len(r.train_workloads) == 2
        valid_names = set(r.validation.workloads)
        assert not valid_names & set(r.train_workloads)
        assert r.mape > 0

    def test_scenario1_repeats_median(self, small_dataset):
        r = scenario_random_workloads(
            small_dataset, COUNTERS, n_train=2, n_repeats=3
        )
        assert len(r.fold_mapes) == 3
        assert r.aggregate == "median"
        import numpy as np

        assert r.mape == pytest.approx(float(np.median(r.fold_mapes)))
        # Validation parts are concatenated across draws.
        assert r.validation.n_samples > small_dataset.n_samples / 2

    def test_scenario1_needs_enough_workloads(self, small_dataset):
        with pytest.raises(ValueError):
            scenario_random_workloads(small_dataset, COUNTERS, n_train=10)

    def test_scenario2_trains_on_roco2_only(self, small_dataset):
        r = scenario_synthetic_to_spec(small_dataset, COUNTERS)
        assert set(r.validation.suites) == {"spec_omp2012"}
        assert all(w != "md" for w in r.train_workloads)

    def test_scenario3_covers_all_rows(self, small_dataset):
        r = scenario_cv_all(small_dataset, COUNTERS, n_splits=5)
        assert r.validation.n_samples == small_dataset.n_samples
        assert len(r.fold_mapes) == 5
        assert r.mape == pytest.approx(np.mean(r.fold_mapes))

    def test_scenario4_synthetic_only(self, small_dataset):
        r = scenario_cv_synthetic(small_dataset, COUNTERS, n_splits=5)
        assert set(r.validation.suites) == {"roco2"}

    def test_run_all_returns_four(self, small_dataset):
        out = run_all_scenarios(small_dataset, COUNTERS, n_train_random=2)
        assert set(out) == set(SCENARIO_NAMES)


class TestScenarioResultAnalysis:
    @pytest.fixture()
    def result(self, small_dataset):
        return scenario_cv_all(small_dataset, COUNTERS, n_splits=5)

    def test_per_workload_mape_covers_workloads(self, result, small_dataset):
        per_wl = result.per_workload_mape()
        assert set(per_wl) == set(small_dataset.workloads)
        assert all(v >= 0 for v in per_wl.values())

    def test_per_workload_bias_sign_convention(self, result):
        bias = result.per_workload_bias()
        # Biases must average (weighted) near the overall bias.
        overall = np.mean(result.predicted - result.validation.power_w)
        assert min(bias.values()) <= overall <= max(bias.values())

    def test_experiment_scatter_one_point_per_experiment(
        self, result, small_dataset
    ):
        scatter = result.experiment_scatter()
        assert len(scatter) == len(small_dataset.experiment_keys())
        for w, suite, f, t, actual, predicted in scatter:
            assert actual > 0 and predicted > 0
            assert f in (1200, 2400)
