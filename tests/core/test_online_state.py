"""State snapshot round-trip of the online estimator.

The resume contract: an estimator restored from ``state_dict()``
mid-stream must be bit-identical to one that never stopped — every
subsequent estimate, breaker decision, drift latch and the final
``DriftReport`` match exactly (``==`` on floats, not approx).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import FittedPowerModel
from repro.core.online import (
    ONLINE_STATE_FORMAT,
    OnlineEstimator,
    PowerEnvelope,
)
from repro.stats.ols import OLSResult

COUNTERS = ("instructions", "cache-misses")


def synthetic_model():
    names = tuple(f"alpha:{c}" for c in COUNTERS) + (
        "beta:V2f", "gamma:V", "delta:Z",
    )
    params = np.array([8.0, 25.0, 12.0, 4.0, 18.0])
    k = len(params)
    ols = OLSResult(
        params=params,
        bse=np.ones(k),
        cov_params=np.eye(k),
        rsquared=0.99,
        rsquared_adj=0.99,
        nobs=100,
        df_model=k - 1,
        df_resid=100 - k,
        cov_type="HC3",
        fitted_values=np.zeros(100),
        residuals=np.zeros(100),
        exog_names=names,
        has_intercept=False,
    )
    return FittedPowerModel(counters=COUNTERS, ols=ols, cov_type="HC3")


def stream(rng, tick, *, degraded=False):
    deltas = {c: float(rng.uniform(0.0, 2e7)) for c in COUNTERS}
    if degraded:
        deltas["instructions"] = float("nan")
    return dict(
        counter_deltas=deltas,
        interval_s=0.5,
        voltage_v=float(rng.uniform(0.9, 1.2)),
        frequency_mhz=float(rng.uniform(1200.0, 2600.0)),
        time_s=0.5 * (tick + 1),
    )


def step(est, sample):
    return est.step(
        sample["counter_deltas"],
        interval_s=sample["interval_s"],
        voltage_v=sample["voltage_v"],
        frequency_mhz=sample["frequency_mhz"],
        time_s=sample["time_s"],
    )


KW = dict(
    smoothing=0.5,
    envelope=PowerEnvelope(5.0, 150.0),
    breaker_threshold=2,
    recovery_threshold=2,
    drift_window=5,
    drift_tolerance=0.4,
)


class TestOnlineStateRoundtrip:
    def test_resume_is_bit_identical(self):
        """Snapshot mid-stream — including mid breaker episode — and
        resume; the continuation must match the uninterrupted run."""
        model = synthetic_model()
        continuous = OnlineEstimator(model, **KW)
        interrupted = OnlineEstimator(model, **KW)
        rng_a = np.random.default_rng(17)
        rng_b = np.random.default_rng(17)

        # Degraded ticks 6-9 leave the breaker open at the snapshot.
        for tick in range(10):
            degraded = tick >= 6
            step(continuous, stream(rng_a, tick, degraded=degraded))
            step(interrupted, stream(rng_b, tick, degraded=degraded))

        snapshot = interrupted.state_dict()
        resumed = OnlineEstimator(model, **KW)
        resumed.load_state(snapshot)

        for tick in range(10, 25):
            sample_a = stream(rng_a, tick)
            sample_b = stream(rng_b, tick)
            est_a = step(continuous, sample_a)
            est_b = step(resumed, sample_b)
            assert float(est_a.power_w) == float(est_b.power_w)
            assert float(est_a.smoothed_w) == float(est_b.smoothed_w)
            assert float(est_a.time_s) == float(est_b.time_s)
            assert est_a.source == est_b.source
            assert tuple(est_a.flags) == tuple(est_b.flags)
        assert continuous.drift_report() == resumed.drift_report()

    def test_state_dict_is_json_serialisable(self):
        import json

        est = OnlineEstimator(synthetic_model(), **KW)
        rng = np.random.default_rng(2)
        for tick in range(4):
            step(est, stream(rng, tick))
        state = est.state_dict()
        assert state["format"] == ONLINE_STATE_FORMAT
        restored = OnlineEstimator(synthetic_model(), **KW)
        restored.load_state(json.loads(json.dumps(state)))
        assert restored.state_dict() == state

    def test_unknown_format_rejected(self):
        est = OnlineEstimator(synthetic_model(), **KW)
        state = est.state_dict()
        state["format"] = 99
        with pytest.raises(ValueError, match="format"):
            est.load_state(state)

    def test_malformed_state_rejected(self):
        est = OnlineEstimator(synthetic_model(), **KW)
        with pytest.raises(ValueError, match="dict"):
            est.load_state("not a dict")
        state = est.state_dict()
        del state["seen"]
        with pytest.raises(ValueError, match="malformed"):
            est.load_state(state)

    def test_invalid_values_rejected(self):
        est = OnlineEstimator(synthetic_model(), **KW)
        rng = np.random.default_rng(4)
        for tick in range(3):
            step(est, stream(rng, tick))
        bad_ewma = est.state_dict()
        bad_ewma["smoothed"] = float("inf")
        with pytest.raises(ValueError, match="EWMA"):
            est.load_state(bad_ewma)
        bad_counter = est.state_dict()
        bad_counter["seen"] = -1
        with pytest.raises(ValueError, match="non-negative"):
            est.load_state(bad_counter)
        long_window = est.state_dict()
        long_window["implausible_window"] = [False] * (KW["drift_window"] + 1)
        with pytest.raises(ValueError, match="window"):
            est.load_state(long_window)

    def test_rejected_load_leaves_estimator_usable(self):
        """A failed load must not half-apply: the estimator still
        steps and reports afterwards."""
        est = OnlineEstimator(synthetic_model(), **KW)
        rng = np.random.default_rng(6)
        step(est, stream(rng, 0))
        state = est.state_dict()
        state["format"] = 99
        with pytest.raises(ValueError):
            est.load_state(state)
        out = step(est, stream(rng, 1))
        assert np.isfinite(out.power_w)
