"""Tests for model prediction intervals (HC3-based)."""

import numpy as np
import pytest

from repro.core import PowerModel


class TestPredictInterval:
    @pytest.fixture(scope="class")
    def fitted(self, full_dataset, selected_counters):
        return PowerModel(selected_counters).fit(full_dataset)

    def test_shape_and_ordering(self, fitted, full_dataset):
        ci = fitted.predict_interval(full_dataset)
        assert ci.shape == (full_dataset.n_samples, 2)
        assert np.all(ci[:, 0] <= ci[:, 1])

    def test_centered_on_prediction(self, fitted, full_dataset):
        ci = fitted.predict_interval(full_dataset)
        pred = fitted.predict(full_dataset)
        assert np.allclose((ci[:, 0] + ci[:, 1]) / 2, pred)

    def test_wider_at_lower_confidence_level(self, fitted, full_dataset):
        narrow = fitted.predict_interval(full_dataset, alpha=0.32)
        wide = fitted.predict_interval(full_dataset, alpha=0.01)
        assert np.all(
            (wide[:, 1] - wide[:, 0]) >= (narrow[:, 1] - narrow[:, 0])
        )

    def test_mean_interval_narrower_than_power_spread(
        self, fitted, full_dataset
    ):
        """Coefficient uncertainty over 645 rows must be small relative
        to the signal (otherwise the model learned nothing)."""
        ci = fitted.predict_interval(full_dataset)
        widths = ci[:, 1] - ci[:, 0]
        assert widths.mean() < 0.2 * full_dataset.power_w.std()

    def test_invalid_alpha(self, fitted, full_dataset):
        with pytest.raises(ValueError):
            fitted.predict_interval(full_dataset, alpha=0.0)
        with pytest.raises(ValueError):
            fitted.predict_interval(full_dataset, alpha=1.0)
