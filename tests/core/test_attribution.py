"""Unit tests for power attribution."""

import numpy as np
import pytest

from repro.core import PowerModel, attribute, attribute_dataset
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def fitted(full_dataset, selected_counters):
    return PowerModel(selected_counters).fit(full_dataset)


class TestAttribute:
    def _rates(self, fitted, dataset, row):
        return {c: float(dataset.column(c)[row]) for c in fitted.counters}

    def test_terms_sum_to_prediction(self, fitted, full_dataset):
        for row in (0, 25, 100):
            att = attribute(
                fitted,
                counter_rates=self._rates(fitted, full_dataset, row),
                voltage_v=float(full_dataset.voltage_v[row]),
                frequency_mhz=float(full_dataset.frequency_mhz[row]),
            )
            pred = fitted.predict(full_dataset.subset(np.array([row])))[0]
            assert att.total_w == pytest.approx(pred, rel=1e-9)
            assert att.check_consistency()

    def test_family_rollup_sums(self, fitted, full_dataset):
        att = attribute(
            fitted,
            counter_rates=self._rates(fitted, full_dataset, 0),
            voltage_v=0.97,
            frequency_mhz=2400.0,
        )
        fam = att.by_family()
        assert sum(fam.values()) == pytest.approx(att.total_w, rel=1e-9)
        assert "static+system" in fam and "residual-dynamic" in fam

    def test_memory_bound_attributes_more_to_memory(
        self, fitted, full_dataset
    ):
        """Attribution must reflect workload character: streaming
        kernels put more watts on memory-family counters than compute
        kernels at equal thread count."""
        def family_memory(workload):
            sub = full_dataset.filter(workloads=[workload], frequency_mhz=2400)
            i = int(np.argmax(sub.threads))
            att = attribute(
                fitted,
                counter_rates={
                    c: float(sub.column(c)[i]) for c in fitted.counters
                },
                voltage_v=float(sub.voltage_v[i]),
                frequency_mhz=2400.0,
            )
            return att.by_family().get("memory", 0.0)

        assert family_memory("memory_read") > family_memory("busywait") + 5.0

    def test_missing_rate_rejected(self, fitted):
        with pytest.raises(KeyError):
            attribute(fitted, counter_rates={}, voltage_v=0.97, frequency_mhz=2400)

    def test_invalid_operating_point(self, fitted, full_dataset):
        rates = self._rates(fitted, full_dataset, 0)
        with pytest.raises(ValueError):
            attribute(fitted, counter_rates=rates, voltage_v=0.0, frequency_mhz=2400)


class TestAttributeDataset:
    def test_one_attribution_per_row(self, fitted, full_dataset):
        sub = full_dataset.filter(workloads=["compute"])
        atts = attribute_dataset(fitted, sub)
        assert len(atts) == sub.n_samples
        preds = fitted.predict(sub)
        for att, pred in zip(atts, preds):
            assert att.total_w == pytest.approx(pred, rel=1e-9)

    def test_dynamic_share_tracks_truth(self, fitted, platform, full_dataset):
        """The attributed dynamic share must rank workloads like the
        simulator's hidden dynamic/static decomposition."""
        shares = {}
        truth = {}
        for name in ("busywait", "compute", "idle"):
            sub = full_dataset.filter(workloads=[name], frequency_mhz=2400)
            i = int(np.argmax(sub.threads))
            att = attribute_dataset(fitted, sub.subset(np.array([i])))[0]
            shares[name] = att.dynamic_w / att.total_w
            run = platform.execute(
                get_workload(name), 2400, int(sub.threads[i])
            )
            p = run.phases[0].power_breakdown
            truth[name] = sum(p.dynamic_core_w) / p.measured_w
        # Ranking must agree: compute > busywait > idle.
        assert shares["compute"] > shares["busywait"] > shares["idle"]
        assert truth["compute"] > truth["busywait"] > truth["idle"]
