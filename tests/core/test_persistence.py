"""Unit tests for model persistence."""

import json

import numpy as np
import pytest

from repro.core import (
    OnlineEstimator,
    PowerModel,
    attribute,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)


@pytest.fixture(scope="module")
def fitted(full_dataset, selected_counters):
    return PowerModel(selected_counters).fit(full_dataset)


class TestRoundtrip:
    def test_predictions_identical(self, fitted, full_dataset, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted, path)
        restored = load_model(path)
        assert np.allclose(
            restored.predict(full_dataset), fitted.predict(full_dataset)
        )

    def test_metadata_preserved(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted, path)
        restored = load_model(path)
        assert restored.counters == fitted.counters
        assert restored.cov_type == fitted.cov_type
        assert restored.rsquared == pytest.approx(fitted.rsquared)
        assert np.allclose(restored.ols.bse, fitted.ols.bse)

    def test_file_is_self_describing_json(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-power-model/1"
        assert "beta:V2f" in payload["coefficients"]

    def test_restored_model_attributes(self, fitted, full_dataset, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted, path)
        restored = load_model(path)
        rates = {c: float(full_dataset.column(c)[0]) for c in restored.counters}
        att = attribute(
            restored,
            counter_rates=rates,
            voltage_v=float(full_dataset.voltage_v[0]),
            frequency_mhz=float(full_dataset.frequency_mhz[0]),
        )
        assert att.check_consistency()

    def test_restored_model_streams(self, fitted, full_dataset, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted, path)
        restored = load_model(path)
        est = OnlineEstimator(restored)
        cycles = 2.4e9
        deltas = {
            c: float(full_dataset.column(c)[0]) * cycles
            for c in restored.counters
        }
        out = est.update(
            deltas, interval_s=1.0, voltage_v=0.97, frequency_mhz=2400
        )
        assert out.power_w > 0


class TestValidation:
    def test_wrong_format_rejected(self, fitted):
        payload = model_to_dict(fitted)
        payload["format"] = "something-else/9"
        with pytest.raises(ValueError, match="unsupported model format"):
            model_from_dict(payload)

    def test_missing_coefficient_rejected(self, fitted):
        payload = model_to_dict(fitted)
        del payload["coefficients"]["beta:V2f"]
        with pytest.raises(ValueError, match="missing coefficients"):
            model_from_dict(payload)

    def test_inconsistent_bse_rejected(self, fitted):
        payload = model_to_dict(fitted)
        payload["fit"]["bse"] = [1.0]
        with pytest.raises(ValueError, match="standard-error"):
            model_from_dict(payload)
