"""Hardened online estimation: step(), circuit breaker, envelope
plausibility, drift detection (DESIGN.md §10)."""

import numpy as np
import pytest

from repro.core import (
    OnlineEstimator,
    PowerEnvelope,
    PowerModel,
    estimate_run,
    estimate_run_degraded,
)
from repro.faults import CounterLossPlan, OnlineFaultInjector
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def fitted(full_dataset, selected_counters):
    return PowerModel(selected_counters).fit(full_dataset)


@pytest.fixture(scope="module")
def envelope(full_dataset):
    return PowerEnvelope.from_dataset(full_dataset)


def row_inputs(fitted, dataset, row=10, interval_s=0.5):
    """One interval's (deltas, context) reconstructed from a dataset
    row, so the model estimate is in-distribution by construction."""
    cycles = float(dataset.frequency_mhz[row]) * 1e6 * interval_s
    deltas = {
        c: float(dataset.column(c)[row]) * cycles for c in fitted.counters
    }
    ctx = {
        "interval_s": interval_s,
        "voltage_v": float(dataset.voltage_v[row]),
        "frequency_mhz": float(dataset.frequency_mhz[row]),
    }
    return deltas, ctx


class _FakeDataset:
    power_w = np.array([100.0, 200.0])


class TestPowerEnvelope:
    def test_from_dataset_spans_measurements(self, full_dataset, envelope):
        assert envelope.lo_w <= full_dataset.power_w.min()
        assert envelope.hi_w >= full_dataset.power_w.max()

    def test_contains_and_clip(self):
        env = PowerEnvelope(lo_w=50.0, hi_w=400.0)
        assert env.contains(100.0)
        assert not env.contains(1000.0)
        assert not env.contains(float("nan"))
        assert env.clip(1000.0) == pytest.approx(400.0)
        assert env.clip(-5.0) == pytest.approx(50.0)
        # Non-finite input lands mid-range rather than propagating.
        assert env.clip(float("nan")) == pytest.approx(225.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="below"):
            PowerEnvelope(lo_w=10.0, hi_w=10.0)
        with pytest.raises(ValueError, match="finite"):
            PowerEnvelope(lo_w=float("nan"), hi_w=10.0)
        with pytest.raises(ValueError, match="margin"):
            PowerEnvelope.from_dataset(_FakeDataset(), margin=-1.0)


class TestStepSkipsBadInput:
    def test_invalid_context_skipped_not_raised(self, fitted, full_dataset):
        est = OnlineEstimator(fitted)
        deltas, ctx = row_inputs(fitted, full_dataset)
        bad = [
            dict(ctx, interval_s=0.0),
            dict(ctx, voltage_v=-1.0),
            dict(ctx, frequency_mhz=float("nan")),
        ]
        for kwargs in bad:
            assert est.step(deltas, **kwargs) is None
        report = est.drift_report()
        assert report.n_skipped == 3
        assert report.n_intervals == 0
        assert len(report.warnings) == 3

    def test_non_monotonic_timestamp_skipped(self, fitted, full_dataset):
        est = OnlineEstimator(fitted)
        deltas, ctx = row_inputs(fitted, full_dataset)
        assert est.step(deltas, **ctx, time_s=1.0) is not None
        assert est.step(deltas, **ctx, time_s=0.5) is None
        assert est.step(deltas, **ctx, time_s=1.5) is not None
        report = est.drift_report()
        assert report.n_skipped == 1
        assert any("non-monotonic" in w for w in report.warnings)

    def test_nan_delta_falls_back_to_baseline(self, fitted, full_dataset):
        est = OnlineEstimator(fitted)
        deltas, ctx = row_inputs(fitted, full_dataset)
        deltas[fitted.counters[0]] = float("nan")
        out = est.step(deltas, **ctx)
        assert out is not None
        assert out.source == "baseline"
        assert np.isfinite(out.power_w) and np.isfinite(out.smoothed_w)
        assert any("non-finite" in f for f in out.flags)

    def test_negative_delta_falls_back_to_baseline(self, fitted, full_dataset):
        est = OnlineEstimator(fitted)
        deltas, ctx = row_inputs(fitted, full_dataset)
        deltas[fitted.counters[1]] = -10.0
        out = est.step(deltas, **ctx)
        assert out.source == "baseline"
        assert any("negative" in f for f in out.flags)

    def test_missing_counter_falls_back_to_baseline(self, fitted, full_dataset):
        est = OnlineEstimator(fitted)
        _, ctx = row_inputs(fitted, full_dataset)
        out = est.step({}, **ctx)
        assert out is not None
        assert out.source == "baseline"
        assert np.isfinite(out.smoothed_w)

    def test_smoothed_stays_finite_through_garbage(self, fitted, full_dataset):
        est = OnlineEstimator(fitted, smoothing=0.3)
        clean, ctx = row_inputs(fitted, full_dataset)
        for i in range(20):
            deltas = dict(clean)
            if i % 3 == 0:
                deltas[fitted.counters[0]] = float("nan")
            elif i % 3 == 1:
                deltas[fitted.counters[0]] = -1.0
            est.step(deltas, **ctx)
        assert all(np.isfinite(h.smoothed_w) for h in est.history)
        assert all(np.isfinite(h.power_w) for h in est.history)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self, fitted, full_dataset):
        est = OnlineEstimator(
            fitted, breaker_threshold=3, recovery_threshold=2
        )
        clean, ctx = row_inputs(fitted, full_dataset)
        for _ in range(3):
            est.step({}, **ctx)  # all counters missing
        assert est.breaker_open
        # First clean interval: breaker still open, stays on baseline.
        out = est.step(clean, **ctx)
        assert out.source == "baseline"
        assert "breaker-open" in out.flags
        # Second clean interval closes it; estimate back on the model.
        est.step(clean, **ctx)
        assert not est.breaker_open
        out = est.step(clean, **ctx)
        assert out.source == "model"
        report = est.drift_report()
        assert report.breaker_trips == 1
        # Open for the tripping interval plus one clean interval.
        assert report.breaker_open_intervals == 2
        assert not report.breaker_open

    def test_short_glitch_does_not_trip(self, fitted, full_dataset):
        est = OnlineEstimator(fitted, breaker_threshold=3)
        clean, ctx = row_inputs(fitted, full_dataset)
        for _ in range(2):
            est.step({}, **ctx)
        est.step(clean, **ctx)
        assert not est.breaker_open
        assert est.drift_report().breaker_trips == 0

    def test_parameter_validation(self, fitted):
        with pytest.raises(ValueError):
            OnlineEstimator(fitted, breaker_threshold=0)
        with pytest.raises(ValueError):
            OnlineEstimator(fitted, recovery_threshold=0)
        with pytest.raises(ValueError):
            OnlineEstimator(fitted, drift_window=0)
        with pytest.raises(ValueError):
            OnlineEstimator(fitted, drift_tolerance=1.5)


class TestEnvelopeAndDrift:
    def test_implausible_estimate_replaced_by_baseline(
        self, fitted, full_dataset, envelope
    ):
        est = OnlineEstimator(fitted, envelope=envelope)
        deltas, ctx = row_inputs(fitted, full_dataset)
        # Blow one counter up by six orders of magnitude: the Equation 1
        # output leaves the plausible power range.
        deltas[fitted.counters[0]] *= 1e6
        out = est.step(deltas, **ctx)
        assert out.source == "baseline"
        assert "implausible-model-estimate" in out.flags
        assert envelope.lo_w <= out.power_w <= envelope.hi_w
        assert est.drift_report().n_implausible == 1

    def test_drift_detected_after_sustained_implausibility(
        self, fitted, full_dataset, envelope
    ):
        est = OnlineEstimator(
            fitted, envelope=envelope, drift_window=6, drift_tolerance=0.5
        )
        deltas, ctx = row_inputs(fitted, full_dataset)
        deltas[fitted.counters[0]] *= 1e6
        for _ in range(8):
            est.step(deltas, **ctx)
        report = est.drift_report()
        assert report.drift_detected
        assert report.drift_fraction > 0.5
        assert any("drift" in w for w in report.warnings)

    def test_no_drift_on_clean_stream(self, fitted, full_dataset, envelope):
        est = OnlineEstimator(fitted, envelope=envelope, drift_window=5)
        clean, ctx = row_inputs(fitted, full_dataset)
        for _ in range(20):
            est.step(clean, **ctx)
        report = est.drift_report()
        assert not report.drift_detected
        assert report.clean
        assert report.n_model == 20

    def test_report_summary_renders(self, fitted, full_dataset, envelope):
        est = OnlineEstimator(fitted, envelope=envelope)
        clean, ctx = row_inputs(fitted, full_dataset)
        est.step(clean, **ctx)
        est.step({}, **ctx)
        text = est.drift_report().summary()
        assert "intervals=2" in text
        assert "baseline=1" in text


class TestDegradedRunDriver:
    @pytest.fixture(scope="class")
    def run(self, platform):
        return platform.execute(get_workload("compute"), 2400, 8)

    def test_matches_strict_driver_without_faults(self, platform, run, fitted):
        """With an inactive fault plan the degraded driver must produce
        the exact timeline of the strict driver."""
        base = estimate_run(platform, run, fitted, interval_s=0.5)
        timeline, report = estimate_run_degraded(
            platform, run, fitted, faults=CounterLossPlan(), interval_s=0.5
        )
        assert np.array_equal(base.estimated_w, timeline.estimated_w)
        assert report.n_baseline == 0
        assert report.n_model == report.n_intervals

    def test_degraded_run_is_finite_and_reported(
        self, platform, run, fitted, full_dataset
    ):
        plan = CounterLossPlan.chaos(0.5, fault_seed=7)
        envelope = PowerEnvelope.from_dataset(full_dataset)
        timeline, report = estimate_run_degraded(
            platform, run, fitted, faults=plan, envelope=envelope
        )
        assert np.all(np.isfinite(timeline.estimated_w))
        assert np.all(np.isfinite(timeline.smoothed_w))
        assert report.n_intervals == timeline.estimated_w.shape[0]
        assert report.n_baseline > 0  # the chaos plan must actually bite

    def test_bit_identical_across_reruns(self, platform, run, fitted):
        plan = CounterLossPlan.chaos(0.3, fault_seed=3)
        t1, r1 = estimate_run_degraded(platform, run, fitted, faults=plan)
        t2, r2 = estimate_run_degraded(platform, run, fitted, faults=plan)
        assert np.array_equal(t1.estimated_w, t2.estimated_w)
        assert np.array_equal(t1.smoothed_w, t2.smoothed_w)
        assert r1 == r2

    def test_different_fault_seeds_differ(self, platform, run, fitted):
        # Mild intensity keeps a mix of model and baseline intervals
        # (heavy chaos latches the breaker open, and then every interval
        # is the same baseline regardless of the fault stream).
        a, ra = estimate_run_degraded(
            platform, run, fitted,
            faults=CounterLossPlan.chaos(0.15, fault_seed=1),
        )
        b, rb = estimate_run_degraded(
            platform, run, fitted,
            faults=CounterLossPlan.chaos(0.15, fault_seed=2),
        )
        assert ra != rb
        assert not np.array_equal(a.estimated_w, b.estimated_w)


class TestCounterLossPlan:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="nan_rate"):
            CounterLossPlan(nan_rate=1.5)

    def test_chaos_scales(self):
        assert not CounterLossPlan.chaos(0.0).any_active
        assert CounterLossPlan.chaos(0.2).any_active

    def test_describe(self):
        assert "inactive" in CounterLossPlan().describe()
        assert "nan_rate" in CounterLossPlan(nan_rate=0.1).describe()

    def test_injector_deterministic(self):
        plan = CounterLossPlan.chaos(0.6, fault_seed=11)
        inj1 = OnlineFaultInjector(plan, root_seed=42)
        inj2 = OnlineFaultInjector(plan, root_seed=42)
        deltas = {"A": 1.0, "B": 2.0, "C": 3.0}
        for i in range(50):
            a = inj1.corrupt(deltas, i)
            b = inj2.corrupt(deltas, i)
            assert list(a) == list(b)
            for k in a:
                assert (a[k] == b[k]) or (np.isnan(a[k]) and np.isnan(b[k]))

    def test_injector_does_not_mutate_input(self):
        plan = CounterLossPlan.chaos(1.0, fault_seed=0)
        deltas = {"A": 1.0}
        OnlineFaultInjector(plan, 0).corrupt(deltas, 0)
        assert deltas == {"A": 1.0}
