"""Unit tests for the Equation 1 design matrix and PowerModel."""

import numpy as np
import pytest

from repro.acquisition import PowerDataset
from repro.core import PowerModel, design_matrix, feature_names


def _dataset(n=40, seed=0):
    rng = np.random.default_rng(seed)
    counters = rng.uniform(0.0, 2.0, size=(n, 54))
    # Three distinct (V, f) operating points so the structural terms
    # (V2f, V, 1) are linearly independent and identifiable.
    choice = rng.integers(0, 3, size=n)
    v = np.array([0.70, 0.87, 0.97])[choice]
    f = np.array([1200.0, 2000.0, 2400.0])[choice]
    # Ground truth that Equation 1 can express exactly:
    # P = 3*E0*V²f + 10*V²f + 12*V + 40  (f in GHz)
    v2f = v * v * (f / 1000.0)
    power_w = 3.0 * counters[:, 0] * v2f + 10.0 * v2f + 12.0 * v + 40.0
    return PowerDataset(
        counters=counters,
        power_w=power_w,
        voltage_v=v,
        frequency_mhz=f,
        threads=np.full(n, 24),
        workloads=tuple("w" for _ in range(n)),
        suites=tuple("roco2" for _ in range(n)),
        phase_names=tuple(f"p{i}" for i in range(n)),
    )


class TestDesignMatrix:
    def test_column_structure(self):
        ds = _dataset()
        x = design_matrix(ds, ["TOT_CYC", "PRF_DM"])
        assert x.shape == (ds.n_samples, 5)  # 2 alphas + beta + gamma + delta
        names = feature_names(["TOT_CYC", "PRF_DM"])
        assert names == [
            "alpha:TOT_CYC",
            "alpha:PRF_DM",
            "beta:V2f",
            "gamma:V",
            "delta:Z",
        ]

    def test_alpha_column_is_rate_times_v2f(self):
        ds = _dataset()
        x = design_matrix(ds, ["TOT_CYC"])
        v2f = ds.voltage_v**2 * ds.frequency_mhz / 1000.0
        assert np.allclose(x[:, 0], ds.column("TOT_CYC") * v2f)
        assert np.allclose(x[:, 1], v2f)
        assert np.allclose(x[:, 2], ds.voltage_v)
        assert np.allclose(x[:, 3], 1.0)

    def test_empty_counter_list(self):
        ds = _dataset()
        x = design_matrix(ds, [])
        assert x.shape == (ds.n_samples, 3)


class TestPowerModel:
    def test_recovers_exact_coefficients(self):
        ds = _dataset()
        first = ds.counter_names[0]
        fitted = PowerModel([first]).fit(ds)
        assert fitted.alpha(first) == pytest.approx(3.0, abs=1e-6)
        assert fitted.beta == pytest.approx(10.0, abs=1e-6)
        assert fitted.gamma == pytest.approx(12.0, abs=1e-6)
        assert fitted.delta == pytest.approx(40.0, abs=1e-6)
        assert fitted.rsquared == pytest.approx(1.0, abs=1e-12)

    def test_predict_matches_truth(self):
        ds = _dataset()
        fitted = PowerModel([ds.counter_names[0]]).fit(ds)
        assert np.allclose(fitted.predict(ds), ds.power_w, atol=1e-6)

    def test_predict_on_unseen_dataset(self):
        fitted = PowerModel([_dataset().counter_names[0]]).fit(_dataset(seed=0))
        other = _dataset(seed=1)
        assert np.allclose(fitted.predict(other), other.power_w, atol=1e-6)

    def test_evaluate_metrics(self):
        ds = _dataset()
        fitted = PowerModel([ds.counter_names[0]]).fit(ds)
        scores = fitted.evaluate(ds)
        assert scores["mape"] == pytest.approx(0.0, abs=1e-6)
        assert scores["r2"] == pytest.approx(1.0, abs=1e-9)

    def test_alpha_of_unknown_counter(self):
        ds = _dataset()
        fitted = PowerModel(["TOT_CYC"]).fit(ds)
        with pytest.raises(KeyError):
            fitted.alpha("PRF_DM")

    def test_duplicate_counters_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            PowerModel(["TOT_CYC", "TOT_CYC"])

    def test_summary_names_coefficients(self):
        ds = _dataset()
        text = PowerModel(["TOT_CYC"]).fit(ds).summary()
        for token in ("alpha:TOT_CYC", "beta:V2f", "gamma:V", "delta:Z"):
            assert token in text

    def test_hc3_default_cov(self):
        ds = _dataset()
        fitted = PowerModel(["TOT_CYC"]).fit(ds)
        assert fitted.cov_type == "HC3"
        assert fitted.ols.cov_type == "HC3"
