"""Unit tests for the PCC analysis and report rendering."""

import numpy as np
import pytest

from repro.core import counter_power_pcc, significance_report
from repro.core.report import fmt, render_series, render_table


class TestCounterPCC:
    def test_all_counters_scored(self, small_dataset):
        sig = counter_power_pcc(small_dataset)
        assert set(sig.pcc) == set(small_dataset.counter_names)
        assert all(-1.0 <= v <= 1.0 for v in sig.pcc.values())

    def test_table_subsets(self, small_dataset):
        sig = counter_power_pcc(small_dataset)
        table = sig.table(["PRF_DM", "BR_MSP"])
        assert [name for name, _ in table] == ["PRF_DM", "BR_MSP"]

    def test_sorted_by_strength_descending(self, small_dataset):
        sig = counter_power_pcc(small_dataset)
        strengths = [abs(v) for _, v in sig.sorted_by_strength()]
        assert strengths == sorted(strengths, reverse=True)
        assert sig.strongest()[0] == sig.sorted_by_strength()[0][0]

    def test_significance_report_text(self, small_dataset):
        text = significance_report(small_dataset, ["PRF_DM", "BR_MSP"])
        assert "PRF_DM" in text
        assert "Table III" in text


class TestRendering:
    def test_fmt_nan_is_na(self):
        assert fmt(float("nan")) == "n/a"
        assert fmt(1.23456, 2) == "1.23"

    def test_render_table_alignment(self):
        out = render_table(
            ["name", "value"],
            [("alpha", 1.5), ("b", float("nan"))],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "alpha" in out and "n/a" in out
        # Header separator present.
        assert set(lines[2]) <= {"-", " "}

    def test_render_series_bars(self):
        out = render_series({"a": 10.0, "b": -5.0}, title="S", unit="%")
        assert "a" in out and "#" in out
        # Negative values carry a sign marker.
        assert "-" in out.splitlines()[2]

    def test_render_series_empty(self):
        assert render_series({}, title="nothing") == "nothing"
