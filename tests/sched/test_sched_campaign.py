"""ScheduledCampaign: the bit-identity invariant under cluster chaos.

Per-cell results are a pure function of ``(root_seed, cell)`` — nodes,
deaths, stragglers, reassignment order and resume points shape *when*
and *where* a cell runs, never what it measures.  Every test here is a
face of that invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition import CampaignPlan, ResilientCampaign, RetryPolicy
from repro.cluster.nodes import build_cluster
from repro.faults.plan import FaultPlan
from repro.hardware import COUNTER_NAMES, FIXED_COUNTERS
from repro.sched.campaign import ScheduledCampaign
from repro.workloads import get_workload

#: The CI chaos matrix seeds — all three must hold in one process.
FAULT_SEEDS = (0, 1, 20170529)

PROG = tuple(c for c in COUNTER_NAMES if c not in FIXED_COUNTERS)[:8]
EVENTS = tuple(FIXED_COUNTERS) + PROG


def chaos_plan(fault_seed):
    """Kill ~half the cluster mid-campaign, slow ~30% of it."""
    return FaultPlan(
        node_death_rate=0.5, straggler_rate=0.3, fault_seed=fault_seed
    )


def small_plan():
    return CampaignPlan(
        workloads=(get_workload("compute"), get_workload("memory_read")),
        frequencies_mhz=(1200, 2400),
        events=EVENTS,
        thread_counts_override=(4, 8),
    )


def datasets_equal(a, b):
    if a is None or b is None:
        return a is None and b is None
    return (
        a.counter_names == b.counter_names
        and a.workloads == b.workloads
        and a.phase_names == b.phase_names
        and np.array_equal(a.counters, b.counters)
        and np.array_equal(a.power_w, b.power_w)
        and np.array_equal(a.voltage_v, b.voltage_v)
    )


@pytest.fixture(scope="module")
def serial_result(platform):
    """The fault-free serial reference every cluster run must match."""
    return ResilientCampaign(
        platform, small_plan(), retry=RetryPolicy(max_attempts=4)
    ).run()


class TestBitIdentity:
    @pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
    def test_cluster_chaos_dataset_matches_serial(
        self, platform, serial_result, fault_seed
    ):
        nodes = build_cluster(16, seed=platform.seed)
        result = ScheduledCampaign(
            platform,
            small_plan(),
            nodes,
            faults=chaos_plan(fault_seed),
            retry=RetryPolicy(max_attempts=4),
        ).run()
        sched = result.report.scheduling

        # The chaos is real: ≥25% of the 16 nodes die mid-campaign.
        deaths = sum(1 for n in sched.nodes if n.died_at_s is not None)
        assert deaths >= 4
        assert sched.reassignments > 0
        # ...and the dataset does not care.
        assert not sched.quarantined
        assert result.report.completed_cells == result.report.total_cells
        assert datasets_equal(result.dataset, serial_result.dataset)

    def test_scheduler_chaos_leaves_acquisition_ledger_alone(
        self, platform, serial_result
    ):
        # Node deaths are placement events, not measurement faults: the
        # retry/backoff ledger must read exactly like the serial run's.
        result = ScheduledCampaign(
            platform,
            small_plan(),
            build_cluster(16, seed=platform.seed),
            faults=chaos_plan(0),
            retry=RetryPolicy(max_attempts=4),
        ).run()
        assert result.report.retries == serial_result.report.retries
        assert result.report.total_backoff_s == pytest.approx(
            serial_result.report.total_backoff_s
        )
        assert (
            result.report.faults_observed
            == serial_result.report.faults_observed
        )

    def test_placement_cost_is_seeded_per_cell(self, platform):
        campaign = ScheduledCampaign(
            platform, small_plan(), build_cluster(4, seed=platform.seed)
        )
        cells = campaign.cells()
        costs = [campaign.cell_cost_s(c) for c in cells]
        assert costs == [campaign.cell_cost_s(c) for c in cells]
        assert len(set(costs)) > 1  # heterogeneous, not constant
        assert all(c > 0 for c in costs)


class TestKillAndResume:
    def _campaign(self, platform, tmp_path, fault_seed):
        # Pinned serial for the same reason as the resilient-campaign
        # resume test: the interrupt lands between cell checkpoints.
        return ScheduledCampaign(
            platform,
            small_plan(),
            build_cluster(16, seed=platform.seed),
            faults=chaos_plan(fault_seed),
            retry=RetryPolicy(max_attempts=4),
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_shards=8,
            parallel="serial",
        )

    @pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
    def test_killed_campaign_resumes_bit_identical(
        self, platform, serial_result, tmp_path, fault_seed
    ):
        cell_msgs = []

        def interrupting(msg):
            # Placement narration ("sched: ...") rides the same hook;
            # the kill must land mid-acquisition, after 3 cells.
            if msg.startswith("cell "):
                cell_msgs.append(msg)
                if len(cell_msgs) == 4:
                    raise KeyboardInterrupt

        first = self._campaign(platform, tmp_path, fault_seed)
        with pytest.raises(KeyboardInterrupt):
            first.run(progress=interrupting)
        stored = first.checkpoint.completed_cells()
        assert len(stored) == 3

        second = self._campaign(platform, tmp_path, fault_seed)
        result = second.run()
        assert result.report.resumed_cells == 3
        assert result.report.completed_cells == result.report.total_cells
        assert datasets_equal(result.dataset, serial_result.dataset)
        # Resume read only the dirty shards holding the 3 dead-run
        # cells — never the whole manifest.
        dirty = {second.checkpoint.shard_of(cid) for cid in stored}
        assert 1 <= second.checkpoint.shard_reads <= len(dirty)

    def test_corrupt_shard_cells_are_regenerated(
        self, platform, serial_result, tmp_path
    ):
        first = self._campaign(platform, tmp_path, 0)
        first.run()
        stored = first.checkpoint.completed_cells()
        assert stored
        victim = first.checkpoint.shard_path(
            first.checkpoint.shard_of(stored[0])
        )
        victim.write_bytes(b"not a zip archive")

        second = self._campaign(platform, tmp_path, 0)
        result = second.run()
        # Only the corrupt shard's cells re-ran; the rest resumed.
        assert 0 < result.report.resumed_cells < result.report.total_cells
        assert result.report.completed_cells == result.report.total_cells
        assert datasets_equal(result.dataset, serial_result.dataset)
        assert any(
            e["kind"] == "corrupt-shard-discarded"
            for e in second.checkpoint.events()
        )


class TestReportWiring:
    def test_scheduling_story_reaches_report_and_audit(self, platform):
        result = ScheduledCampaign(
            platform,
            small_plan(),
            build_cluster(16, seed=platform.seed),
            faults=chaos_plan(0),
            retry=RetryPolicy(max_attempts=4),
        ).run()
        sched = result.report.scheduling
        assert sched is not None
        assert sched.total_cells == result.report.total_cells
        assert sched.completed_cells == result.report.completed_cells
        assert "AU012" in result.report.audit.rules_run
        # The rendered report tells the scheduling story.
        text = result.report.summary()
        assert "scheduling:" in text

    def test_unplaceable_cells_land_in_quarantine(self, platform):
        # A cluster that entirely dies under the campaign: whatever
        # placement could not finish is quarantined with the placement
        # reason, never silently dropped.
        result = ScheduledCampaign(
            platform,
            small_plan(),
            build_cluster(3, seed=platform.seed),
            faults=FaultPlan(node_death_rate=1.0, fault_seed=1),
            retry=RetryPolicy(max_attempts=3),
        ).run()
        report = result.report
        assert report.quarantined  # the 3-node cluster did die
        assert (
            report.completed_cells + len(report.quarantined)
            == report.total_cells
        )
        assert len(report.scheduling.quarantined) == len(report.quarantined)
        assert report.audit is not None
        assert report.audit.verdict != "pass"

    def test_serial_campaign_report_has_no_scheduling(self, platform):
        result = ResilientCampaign(
            platform,
            CampaignPlan(
                workloads=(get_workload("idle"),),
                frequencies_mhz=(2400,),
                events=EVENTS,
                thread_counts_override=(8,),
            ),
        ).run()
        assert result.report.scheduling is None
