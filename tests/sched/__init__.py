"""Cluster scheduler tests."""
