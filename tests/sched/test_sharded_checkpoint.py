"""ShardedManifest: atomic shards, lazy dirty-shard resume, loss of
exactly one shard on corruption.

The shard file is the unit of both atomicity and loss — these tests
pin that boundary from both sides.
"""

from __future__ import annotations

import json

import pytest

from repro.acquisition.checkpoint import ShardedManifest, cell_id
from repro.tracing.phases import PhaseProfile

FP = "fingerprint-a"


def profile(power_w=42.0, phase_name="main"):
    return PhaseProfile(
        workload="compute",
        suite="synthetic",
        frequency_mhz=2400,
        threads=8,
        run_index=0,
        phase_name=phase_name,
        start_s=0.0,
        end_s=1.0,
        active_threads=8,
        power_w=power_w,
        voltage_v=1.05,
        counter_rates_per_s={"TOT_INS": 1e9},
    )


def cids(n):
    return [
        cell_id("compute", 2400, 8, i, ("TOT_INS", "TOT_CYC"))
        for i in range(n)
    ]


def store_cells(manifest, ids):
    for i, cid in enumerate(ids):
        manifest.store(cid, [profile(power_w=40.0 + i)])


class TestRoundTrip:
    def test_store_load_roundtrip(self, tmp_path):
        m = ShardedManifest(tmp_path, FP, n_shards=4)
        ids = cids(12)
        store_cells(m, ids)

        fresh = ShardedManifest(tmp_path, FP, n_shards=4)
        assert fresh.completed_cells() == sorted(ids)
        for i, cid in enumerate(ids):
            [prof] = fresh.load(cid)
            assert prof.power_w == pytest.approx(40.0 + i)
        assert fresh.load("feedface") is None

    def test_cells_spread_across_shard_files(self, tmp_path):
        m = ShardedManifest(tmp_path, FP, n_shards=4)
        store_cells(m, cids(32))
        shard_files = sorted(p.name for p in tmp_path.glob("shard_*.npz"))
        assert len(shard_files) > 1
        assert all(name.startswith("shard_") for name in shard_files)
        # Every cell hashes to the shard file it was stored in.
        for cid in cids(32):
            assert m.shard_path(m.shard_of(cid)).exists()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedManifest(tmp_path, FP, n_shards=0)


class TestLazyResume:
    def test_load_touches_only_the_cells_shard(self, tmp_path):
        m = ShardedManifest(tmp_path, FP, n_shards=8)
        ids = cids(32)
        store_cells(m, ids)

        fresh = ShardedManifest(tmp_path, FP, n_shards=8)
        assert fresh.shard_reads == 0
        fresh.load(ids[0])
        assert fresh.shard_reads == 1
        # Same shard again: served from cache, no second file read.
        fresh.load(ids[0])
        assert fresh.has(ids[0])
        assert fresh.shard_reads == 1
        other = next(c for c in ids if fresh.shard_of(c) != fresh.shard_of(ids[0]))
        fresh.load(other)
        assert fresh.shard_reads == 2

    def test_missing_shard_is_not_a_read(self, tmp_path):
        m = ShardedManifest(tmp_path, FP, n_shards=8)
        assert m.load(cids(1)[0]) is None
        assert m.shard_reads == 0

    def test_store_rewrites_one_shard_atomically(self, tmp_path):
        m = ShardedManifest(tmp_path, FP, n_shards=8)
        ids = cids(4)
        store_cells(m, ids)
        writes_before = m.shard_writes
        m.store(ids[0], [profile(power_w=99.0)])
        assert m.shard_writes == writes_before + 1
        # No temp droppings from the atomic write.
        assert not list(tmp_path.glob("*.tmp*"))


class TestCorruptShard:
    def test_corrupt_shard_loses_only_its_own_cells(self, tmp_path):
        m = ShardedManifest(tmp_path, FP, n_shards=4)
        ids = cids(16)
        store_cells(m, ids)
        victim_shard = m.shard_of(ids[0])
        m.shard_path(victim_shard).write_bytes(b"not a zip archive")

        fresh = ShardedManifest(tmp_path, FP, n_shards=4)
        lost = {c for c in ids if fresh.shard_of(c) == victim_shard}
        kept = set(ids) - lost
        assert lost and kept  # the scenario actually splits the cells
        for cid in lost:
            assert fresh.load(cid) is None
        for cid in kept:
            assert fresh.load(cid) is not None
        # The corrupt file is discarded so it cannot be re-trusted...
        assert not fresh.shard_path(victim_shard).exists()
        # ...and the discard is on the audit trail.
        kinds = [e["kind"] for e in fresh.events()]
        assert "corrupt-shard-discarded" in kinds
        meta = json.loads((tmp_path / ShardedManifest.META).read_text())
        assert any(
            e["kind"] == "corrupt-shard-discarded" for e in meta["events"]
        )

    def test_restored_cells_rejoin_the_shard(self, tmp_path):
        m = ShardedManifest(tmp_path, FP, n_shards=2)
        ids = cids(6)
        store_cells(m, ids)
        victim_shard = m.shard_of(ids[0])
        m.shard_path(victim_shard).write_bytes(b"garbage")

        fresh = ShardedManifest(tmp_path, FP, n_shards=2)
        lost = [c for c in ids if fresh.shard_of(c) == victim_shard]
        for cid in lost:  # re-run the lost cells
            fresh.store(cid, [profile()])
        final = ShardedManifest(tmp_path, FP, n_shards=2)
        assert final.completed_cells() == sorted(ids)


class TestStaleStore:
    def test_fingerprint_mismatch_resets(self, tmp_path):
        old = ShardedManifest(tmp_path, "fingerprint-old", n_shards=4)
        store_cells(old, cids(8))
        assert list(tmp_path.glob("shard_*.npz"))

        fresh = ShardedManifest(tmp_path, FP, n_shards=4)
        assert fresh.completed_cells() == []
        assert not list(tmp_path.glob("shard_*.npz"))

    def test_shard_count_mismatch_resets(self, tmp_path):
        # Re-sharding changes every cell → shard mapping; adopting the
        # old files would scatter cells into the wrong archives.
        old = ShardedManifest(tmp_path, FP, n_shards=4)
        store_cells(old, cids(8))
        fresh = ShardedManifest(tmp_path, FP, n_shards=8)
        assert fresh.completed_cells() == []

    def test_corrupt_meta_resets(self, tmp_path):
        old = ShardedManifest(tmp_path, FP, n_shards=4)
        store_cells(old, cids(4))
        (tmp_path / ShardedManifest.META).write_text("{broken json")
        fresh = ShardedManifest(tmp_path, FP, n_shards=4)
        assert fresh.completed_cells() == []

    def test_matching_store_is_adopted_with_its_history(self, tmp_path):
        old = ShardedManifest(tmp_path, FP, n_shards=4)
        store_cells(old, cids(4))
        old.shard_path(old.shard_of(cids(1)[0])).write_bytes(b"junk")
        mid = ShardedManifest(tmp_path, FP, n_shards=4)
        mid.completed_cells()  # triggers the corrupt-shard discard
        final = ShardedManifest(tmp_path, FP, n_shards=4)
        assert any(
            e["kind"] == "corrupt-shard-discarded" for e in final.events()
        )
