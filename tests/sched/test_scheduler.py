"""The placement core: work-stealing, liveness, reassignment.

Everything here runs on the virtual clock — a full chaos campaign's
placement finishes in milliseconds, so the edge cases (every node
dead, every node a hopeless straggler) are cheap to pin exactly.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.acquisition.campaign import RetryPolicy
from repro.cluster.nodes import ClusterNode, build_cluster
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.sched.liveness import NodeLivenessModel, NodeState
from repro.sched.queue import DispatchQueue, JobContext
from repro.sched.scheduler import ClusterScheduler


def scheduler(nodes, costs, *, fault_seed=None, plan=None, **kwargs):
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, root_seed=20170529)
    elif fault_seed is not None:
        injector = FaultInjector(
            FaultPlan(
                node_death_rate=0.5, straggler_rate=0.3,
                fault_seed=fault_seed,
            ),
            root_seed=20170529,
        )
    kwargs.setdefault("retry", RetryPolicy(max_attempts=4))
    return ClusterScheduler(nodes, costs, injector=injector, **kwargs)


class TestLivenessModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeLivenessModel(heartbeat_interval_s=0.0)
        with pytest.raises(ValueError):
            NodeLivenessModel(
                heartbeat_interval_s=5.0, heartbeat_timeout_s=2.0
            )
        with pytest.raises(ValueError):
            NodeLivenessModel(deadline_factor=1.0)

    def test_deadline_scales_nominal_cost(self):
        model = NodeLivenessModel(deadline_factor=6.0)
        assert model.deadline_s(2.0) == pytest.approx(12.0)

    def test_scheduler_view_lags_ground_truth(self):
        node = build_cluster(1)[0]
        state = NodeState(node=node, death_s=10.0, detect_s=25.0)
        # Dead at t=12 but still *accepting* — the detection window.
        assert not state.alive_at(12.0)
        assert state.accepts_at(12.0)
        assert not state.accepts_at(25.0)


class TestDispatchQueue:
    def test_fifo_by_ready_time_then_sequence(self):
        q = DispatchQueue()
        q.push(JobContext(index=0, nominal_cost_s=1.0, ready_s=5.0))
        q.push(JobContext(index=1, nominal_cost_s=1.0, ready_s=0.0))
        q.push(JobContext(index=2, nominal_cost_s=1.0, ready_s=0.0))
        assert q.pop_ready(10.0, node_id=0).index == 1
        assert q.pop_ready(10.0, node_id=0).index == 2
        assert q.pop_ready(10.0, node_id=0).index == 0

    def test_backing_off_jobs_are_not_ready(self):
        q = DispatchQueue([JobContext(index=0, nominal_cost_s=1.0, ready_s=3.0)])
        assert q.pop_ready(2.9, node_id=0) is None
        assert q.next_ready_s() == pytest.approx(3.0)
        assert q.pop_ready(3.0, node_id=0).index == 0

    def test_steal_prefers_untried_job(self):
        tried = JobContext(index=0, nominal_cost_s=1.0, tried_nodes={7})
        fresh = JobContext(index=1, nominal_cost_s=1.0)
        q = DispatchQueue([tried, fresh])
        # Node 7 skips the job that already failed on it...
        assert q.pop_ready(0.0, node_id=7).index == 1
        # ...but takes it as a fallback when nothing else is ready.
        assert q.pop_ready(0.0, node_id=7).index == 0

    def test_fresh_only_job_never_returns_to_a_failed_node(self):
        job = JobContext(
            index=0, nominal_cost_s=1.0, tried_nodes={7}, fresh_only=True
        )
        q = DispatchQueue([job])
        assert q.pop_ready(0.0, node_id=7) is None
        assert q.pop_ready(0.0, node_id=3).index == 0

    def test_pop_blocked_extracts_starved_jobs(self):
        blocked = JobContext(
            index=0, nominal_cost_s=1.0, tried_nodes={1, 2}, fresh_only=True
        )
        placeable = JobContext(
            index=1, nominal_cost_s=1.0, tried_nodes={1}, fresh_only=True
        )
        q = DispatchQueue([blocked, placeable])
        out = q.pop_blocked(0.0, accepting_ids={1, 2})
        assert [j.index for j in out] == [0]
        assert len(q) == 1


class TestFaultFreePlacement:
    def test_all_cells_complete_exactly_once(self):
        nodes = build_cluster(4, slots_per_node=2)
        trace = scheduler(nodes, [1.0] * 40).schedule()
        counts = Counter(
            p.cell_index
            for p in trace.placements
            if p.outcome == "completed"
        )
        assert sorted(counts) == list(range(40))
        assert all(v == 1 for v in counts.values())
        assert not trace.quarantined
        assert trace.reassignments == 0

    def test_work_stealing_balances_equal_nodes(self):
        nodes = build_cluster(4)
        trace = scheduler(nodes, [1.0] * 40).schedule()
        by_node = trace.completions_by_node()
        # Near-identical speeds: nobody hoards, nobody starves.
        assert set(by_node) == {n.node_id for n in nodes}
        assert max(by_node.values()) - min(by_node.values()) <= 2

    def test_slow_node_takes_proportionally_fewer_cells(self):
        # Pull-based stealing needs no speed model: a half-speed node
        # frees its lane half as often, so it takes about half the work.
        nodes = [
            ClusterNode(node_id=0, hostname="fast", platform=None,
                        speed_factor=1.0),
            ClusterNode(node_id=1, hostname="slow", platform=None,
                        speed_factor=0.5),
        ]
        trace = scheduler(nodes, [1.0] * 30).schedule()
        by_node = trace.completions_by_node()
        assert by_node[0] > by_node[1]
        assert by_node[0] == pytest.approx(2 * by_node[1], abs=3)

    def test_parallelmax_caps_concurrency(self):
        nodes = build_cluster(4, slots_per_node=2)
        trace = scheduler(nodes, [1.0] * 24, parallelmax=3).schedule()
        assert trace.parallelmax == 3
        # Count overlapping placements at every start instant.
        for probe in trace.placements:
            overlap = sum(
                1
                for p in trace.placements
                if p.start_s <= probe.start_s < p.end_s
            )
            assert overlap <= 3
        assert len(trace.completed_indices()) == 24

    def test_extra_slots_increase_concurrency(self):
        costs = [1.0] * 16
        one = scheduler(build_cluster(2, slots_per_node=1), costs).schedule()
        two = scheduler(build_cluster(2, slots_per_node=2), costs).schedule()
        assert two.makespan_s < one.makespan_s

    def test_eta_history_converges_to_makespan(self):
        trace = scheduler(build_cluster(4), [1.0] * 20).schedule()
        assert trace.eta_history
        final_eta = trace.eta_history[-1][1]
        assert final_eta == pytest.approx(trace.makespan_s, rel=0.5)


class TestChaosPlacement:
    @pytest.mark.parametrize("fault_seed", [0, 1, 20170529])
    def test_mid_campaign_death_completes_everything(self, fault_seed):
        # ≥25% of the 16-node cluster dies mid-campaign at each seed
        # (verified below); every cell still completes exactly once.
        nodes = build_cluster(16, slots_per_node=2)
        trace = scheduler(
            nodes, [1.0 + 0.1 * (i % 7) for i in range(48)],
            fault_seed=fault_seed,
        ).schedule()
        assert len(trace.node_death_s) >= 4
        assert not trace.quarantined
        counts = Counter(
            p.cell_index
            for p in trace.placements
            if p.outcome == "completed"
        )
        assert sorted(counts) == list(range(48))
        assert all(v == 1 for v in counts.values())
        assert trace.reassignments > 0

    def test_dead_nodes_complete_nothing_after_death(self):
        trace = scheduler(
            build_cluster(16), [1.0] * 32, fault_seed=0
        ).schedule()
        assert trace.node_death_s  # seed verified to kill nodes
        for p in trace.placements:
            if p.outcome != "completed":
                continue
            death_s = trace.node_death_s.get(p.node_id)
            if death_s is not None:
                assert p.end_s <= death_s

    def test_placement_is_deterministic(self):
        nodes = build_cluster(16)
        costs = [1.0 + 0.1 * (i % 5) for i in range(32)]
        a = scheduler(nodes, costs, fault_seed=1).schedule()
        b = scheduler(nodes, costs, fault_seed=1).schedule()
        assert a.placements == b.placements
        assert dict(a.quarantined) == dict(b.quarantined)
        assert a.makespan_s == b.makespan_s

    def test_all_nodes_dead_quarantines_remainder(self):
        plan = FaultPlan(node_death_rate=1.0, fault_seed=1)
        trace = scheduler(
            build_cluster(3), [1.0] * 10, plan=plan,
            retry=RetryPolicy(max_attempts=3),
        ).schedule()
        done = set(trace.completed_indices())
        assert done | set(trace.quarantined) == set(range(10))
        assert done.isdisjoint(trace.quarantined)
        assert trace.quarantined  # the cluster did die under it
        for reason in trace.quarantined.values():
            assert "no live nodes" in reason or "every live node" in reason

    def test_hopeless_stragglers_quarantine_not_hang(self):
        # Every node a deep straggler + a tight deadline: placement
        # must converge to quarantine, not retry forever.
        plan = FaultPlan(straggler_rate=1.0, fault_seed=0)
        trace = scheduler(
            build_cluster(4), [1.0] * 6, plan=plan,
            retry=RetryPolicy(max_attempts=2),
            liveness=NodeLivenessModel(deadline_factor=2.0),
        ).schedule()
        assert set(trace.quarantined) == set(range(6))
        assert "every live node" in next(iter(trace.quarantined.values()))

    def test_straggler_blows_deadline_and_cell_moves_on(self):
        plan = FaultPlan(straggler_rate=0.3, fault_seed=0)
        trace = scheduler(
            build_cluster(8), [1.0] * 24, plan=plan,
            liveness=NodeLivenessModel(deadline_factor=3.0),
        ).schedule()
        assert trace.straggler_factors  # seed verified to slow nodes
        kinds = trace.reassignments_by_kind()
        if kinds:
            assert set(kinds) <= {"deadline-timeout", "node-death"}
        assert len(trace.completed_indices()) == 24

    def test_raising_observer_is_survived(self):
        def bad_observer(message):
            raise RuntimeError("observer crashed")

        sched = scheduler(
            build_cluster(8), [1.0] * 16, fault_seed=0,
            on_event=bad_observer,
        )
        with pytest.warns(RuntimeWarning, match="observer raised"):
            trace = sched.schedule()
        assert len(trace.completed_indices()) == 16
        assert sched.observer_errors
        assert "RuntimeError" in sched.observer_errors[0]


class TestValidation:
    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterScheduler([], [1.0])

    def test_nonpositive_costs_rejected(self):
        with pytest.raises(ValueError):
            ClusterScheduler(build_cluster(2), [1.0, 0.0])

    def test_parallelmax_must_be_positive(self):
        with pytest.raises(ValueError):
            ClusterScheduler(build_cluster(2), [1.0], parallelmax=0)

    def test_all_dead_at_discovery_rejected(self):
        nodes = build_cluster(2)
        dead = [
            ClusterNode(
                node_id=n.node_id, hostname=n.hostname,
                platform=n.platform, alive=False,
            )
            for n in nodes
        ]
        with pytest.raises(ValueError, match="dead at discovery"):
            ClusterScheduler(dead, [1.0]).schedule()
