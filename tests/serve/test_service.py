"""Chaos soak of the full fleet service.

These tests drive ``FleetService`` end to end — middleware, queue,
sharded stepping, circuit breakers, snapshot worker, restore — under
seeded ingestion faults and deliberate corruption, and assert the
resilience contract: no escaping exception, blast radius bounded to
the faulty shard/nodes, healthy nodes bit-identical to a clean serial
run, and degradation graded by the AU013 audit rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import audit_fleet
from repro.core.online import OnlineEstimator
from repro.faults import IngestFaultInjector, IngestFaultPlan
from repro.serve import FleetService, NodeSample

from .conftest import make_fleet_samples


NODES = [f"node-{i:02d}" for i in range(24)]


def drive(service, ticks, *, injector=None, rng_seed=3, node_ids=NODES):
    """Submit one well-formed sample per node per tick and process."""
    rng = np.random.default_rng(rng_seed)
    for tick in range(ticks):
        samples = make_fleet_samples(node_ids, tick, rng)
        if injector is not None:
            samples = injector.corrupt(samples, tick)
        service.submit(samples)
        service.process()


class TestServiceSoak:
    def test_chaos_soak_never_raises_and_isolates_faulty_nodes(
        self, model, envelope
    ):
        """≥10% faulty nodes for 30 ticks: the service keeps serving,
        and every healthy node's final state is bit-identical to a
        clean serial OnlineEstimator fed the same samples."""
        plan = IngestFaultPlan.chaos(
            0.6, faulty_node_fraction=0.25, fault_seed=2
        )
        injector = IngestFaultInjector(plan, 77)
        faulty = {n for n in NODES if injector.node_faulty(n)}
        assert len(faulty) >= len(NODES) // 10

        service = FleetService(
            model, envelope=envelope, n_shards=4, queue_capacity=4096, seed=7
        )
        kw = dict(
            smoothing=0.5,
            envelope=envelope,
            breaker_threshold=3,
            recovery_threshold=2,
            drift_window=20,
            drift_tolerance=0.5,
        )
        reference = {n: OnlineEstimator(model, **kw) for n in NODES}

        rng = np.random.default_rng(3)
        for tick in range(30):
            clean = make_fleet_samples(NODES, tick, rng)
            corrupted = injector.corrupt(clean, tick)
            # Burst faults replay the whole tick, healthy nodes
            # included, so the serial reference consumes the same
            # post-injection stream the service sees.
            for sample in corrupted:
                if (
                    isinstance(sample, NodeSample)
                    and sample.node_id not in faulty
                ):
                    reference[sample.node_id].step(
                        sample.counter_deltas,
                        interval_s=sample.interval_s,
                        voltage_v=sample.voltage_v,
                        frequency_mhz=sample.frequency_mhz,
                        time_s=sample.time_s,
                    )
            service.submit(corrupted)
            service.process()

        for node in NODES:
            if node in faulty:
                continue
            assert (
                service.fleet.drift_report(node)
                == reference[node].drift_report()
            ), node

        report = service.report()
        assert report.n_nodes == len(NODES)
        assert report.healthy_nodes >= len(NODES) - len(faulty)
        # The audit layer grades whatever degradation the chaos caused.
        assert audit_fleet(report).verdict in (
            "pass", "minor", "major", "fail",
        )

    def test_corrupt_shard_at_restore_resets_only_its_nodes(
        self, model, envelope, tmp_path
    ):
        """Kill one snapshot shard between runs: its nodes restart
        from the baseline, every other node resumes where it left off,
        and restore reads at most the dirty shards."""
        make = lambda: FleetService(
            model,
            envelope=envelope,
            n_shards=4,
            queue_capacity=4096,
            snapshot_dir=str(tmp_path),
            snapshot_every_ticks=2,
            seed=7,
        )
        first = make()
        drive(first, 10)
        first.snapshot()
        states = {n: first.fleet.node_state(n) for n in NODES}

        victim = sorted(tmp_path.glob("shard_*.npz"))[0]
        victim.write_bytes(b"garbage, not a zip archive")

        second = make()
        drive(second, 2, rng_seed=11)

        lost = [n for n in NODES if second.store.shard_of(n) == 0]
        kept = [n for n in NODES if second.store.shard_of(n) != 0]
        assert lost and kept
        for node in lost:
            assert second.fleet.node_state(node)["seen"] == 2
        for node in kept:
            assert (
                second.fleet.node_state(node)["seen"]
                == states[node]["seen"] + 2
            )
        assert second.restored_nodes == len(kept)
        dirty = {second.store.shard_of(n) for n in NODES}
        assert second.store.shard_reads <= len(dirty)
        assert any(
            e["kind"] == "corrupt-shard-discarded"
            for e in second.store.events()
        )

    def test_shard_breaker_diverts_to_stateless_baseline(
        self, model, envelope
    ):
        """A shard whose step keeps failing trips its breaker; its
        nodes get stateless baseline answers, other shards never
        notice, and the breaker closes once the fault clears."""
        service = FleetService(
            model,
            envelope=envelope,
            n_shards=4,
            queue_capacity=4096,
            shard_breaker_threshold=2,
            shard_breaker_cooldown=3,
            seed=7,
        )
        bad_shard = service.shard_of(NODES[0])
        faulty_ticks = set(range(1, 7))

        def hook(shard, rows):
            if shard == bad_shard and service.ticks in faulty_ticks:
                raise RuntimeError("injected shard fault")

        service._step_hook = hook
        rng = np.random.default_rng(3)
        outcomes = []
        for tick in range(14):
            service.submit(make_fleet_samples(NODES, tick, rng))
            outcomes.append(service.process())

        breaker = service.breakers[bad_shard]
        assert breaker.state == "closed"
        assert breaker.trips >= 1
        assert breaker.refused >= 1
        assert any(o.stateless for o in outcomes)

        in_bad = [n for n in NODES if service.shard_of(n) == bad_shard]
        out_bad = [n for n in NODES if service.shard_of(n) != bad_shard]
        assert in_bad
        for node in out_bad:
            assert service.fleet.node_state(node)["n_intervals"] == 14
        for node in in_bad:
            assert service.fleet.node_state(node)["n_intervals"] < 14

        report = service.report()
        assert report.shards[bad_shard].breaker_trips >= 1
        assert report.stateless_served > 0

    def test_degrade_policy_survives_burst_within_capacity(
        self, model, envelope
    ):
        """A 2x burst against a tight queue: depth never exceeds the
        cap, overflow is answered statelessly, estimator state for the
        queued samples is untouched."""
        service = FleetService(
            model,
            envelope=envelope,
            n_shards=2,
            queue_capacity=len(NODES),
            policy="degrade-to-baseline",
            seed=7,
        )
        rng = np.random.default_rng(5)
        burst = make_fleet_samples(NODES, 0, rng) + make_fleet_samples(
            NODES, 1, rng
        )
        answers = service.submit(burst)
        assert len(answers) == len(NODES)
        for _node, power_w in answers:
            assert envelope.lo_w <= power_w <= envelope.hi_w
        stats = service.queue.stats()
        assert stats.max_depth <= stats.capacity
        assert stats.diverted == len(NODES)
        service.process()
        report = service.report()
        assert report.queue.diverted == len(NODES)
        assert report.stateless_served == len(NODES)

    def test_malformed_submissions_dropped_and_counted(
        self, model, envelope
    ):
        service = FleetService(model, envelope=envelope, seed=7)
        rng = np.random.default_rng(9)
        good = make_fleet_samples(NODES[:4], 0, rng)
        service.submit(good + ["not-a-sample", None, 42])
        service.process()
        report = service.report()
        assert report.dropped_malformed == 3
        assert report.n_nodes == 4

    def test_audit_grades_forced_degradation(self, model):
        """Drive every node implausible (tight envelope) and check the
        roll-up fails the audit once nothing healthy remains."""
        from repro.core.online import PowerEnvelope

        service = FleetService(
            model,
            envelope=PowerEnvelope(lo_w=5.0, hi_w=20.0),
            n_shards=2,
            drift_window=5,
            drift_tolerance=0.4,
            seed=7,
        )
        drive(service, 10)
        report = service.report()
        assert report.quarantined_nodes == len(NODES)
        assert report.healthy_nodes == 0
        audit = audit_fleet(report)
        assert audit.verdict == "fail"
        assert any(f.rule_id == "AU013" for f in audit.findings)
