"""Shared fixtures for the serving-layer tests.

The fleet tests never need a real campaign fit: a hand-built
``FittedPowerModel`` with known coefficients exercises every estimator
path (Eq. 1 evaluation, envelope plausibility, baseline fallback) in
microseconds, and keeps the bit-identity assertions independent of the
fitting stack.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import FittedPowerModel
from repro.core.online import PowerEnvelope
from repro.serve import NodeSample
from repro.stats.ols import OLSResult

COUNTERS = ("instructions", "cache-misses", "branches")


def synthetic_model(counters=COUNTERS):
    """A FittedPowerModel with fixed, plausible coefficients."""
    names = tuple(f"alpha:{c}" for c in counters) + (
        "beta:V2f", "gamma:V", "delta:Z",
    )
    params = np.array([8.0, 25.0, 3.5, 12.0, 4.0, 18.0][: len(names)])
    k = len(params)
    ols = OLSResult(
        params=params,
        bse=np.ones(k),
        cov_params=np.eye(k),
        rsquared=0.99,
        rsquared_adj=0.99,
        nobs=100,
        df_model=k - 1,
        df_resid=100 - k,
        cov_type="HC3",
        fitted_values=np.zeros(100),
        residuals=np.zeros(100),
        exog_names=names,
        has_intercept=False,
    )
    return FittedPowerModel(counters=counters, ols=ols, cov_type="HC3")


@pytest.fixture()
def model():
    return synthetic_model()


@pytest.fixture()
def envelope():
    return PowerEnvelope(lo_w=5.0, hi_w=150.0)


def make_fleet_samples(node_ids, tick, rng, counters=COUNTERS, interval_s=0.5):
    """One well-formed sample per node for the given tick."""
    return [
        NodeSample(
            node_id=nid,
            counter_deltas={
                c: float(rng.uniform(0.0, 2e7)) for c in counters
            },
            interval_s=interval_s,
            voltage_v=float(rng.uniform(0.9, 1.2)),
            frequency_mhz=float(rng.uniform(1200.0, 2600.0)),
            time_s=interval_s * (tick + 1),
        )
        for nid in node_ids
    ]
