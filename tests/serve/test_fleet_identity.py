"""Bit-identity of the vectorized fleet step against the serial loop.

The contract under test is absolute: for any ingestion stream —
including one mangled by seeded fault injection — ``step_batch`` must
produce byte-for-byte the same estimates, flags, warnings, breaker
transitions and drift decisions as feeding each node's samples one at
a time through its own :class:`OnlineEstimator`.  Equality is ``==``
on floats, not approx: the vectorized path mirrors the serial operand
order exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import OnlineEstimator, PowerEnvelope
from repro.faults import IngestFaultInjector, IngestFaultPlan
from repro.serve import FleetEstimator, SchemaValidator, make_batch

from .conftest import COUNTERS, make_fleet_samples, synthetic_model

ESTIMATOR_KW = dict(
    smoothing=0.5,
    breaker_threshold=2,
    recovery_threshold=2,
    drift_window=5,
    drift_tolerance=0.4,
)


def run_identity_stream(
    model, envelope, *, n_nodes, n_ticks, plan, fault_seed, data_seed=7
):
    """Drive fleet and serial estimators over the same faulty stream
    and assert every per-row estimate and final report matches."""
    rng = np.random.default_rng(data_seed)
    node_ids = [f"node-{i:03d}" for i in range(n_nodes)]
    injector = IngestFaultInjector(plan, fault_seed)
    validator = SchemaValidator()
    kw = dict(envelope=envelope, **ESTIMATOR_KW)
    serial = {nid: OnlineEstimator(model, **kw) for nid in node_ids}
    fleet = FleetEstimator(model, **kw)

    produced = 0
    for tick in range(n_ticks):
        submitted = injector.corrupt(
            make_fleet_samples(node_ids, tick, rng), tick
        )
        samples = validator.validate(submitted)
        batch = make_batch(samples, COUNTERS)
        result = fleet.step_batch(batch)
        for i in range(batch.n_rows):
            sample = batch.row_sample(i)
            est_serial = serial[sample.node_id].step(
                sample.counter_deltas,
                interval_s=sample.interval_s,
                voltage_v=sample.voltage_v,
                frequency_mhz=sample.frequency_mhz,
                time_s=sample.time_s,
            )
            est_fleet = result.estimate(i)
            assert (est_serial is None) == (est_fleet is None)
            if est_serial is None:
                continue
            produced += 1
            for attr in ("power_w", "smoothed_w", "time_s"):
                a = float(getattr(est_serial, attr))
                b = float(getattr(est_fleet, attr))
                assert a == b or (np.isnan(a) and np.isnan(b)), (
                    tick, i, attr, a, b,
                )
            assert est_serial.source == est_fleet.source
            assert tuple(est_serial.flags) == tuple(est_fleet.flags)

    for nid in node_ids:
        assert serial[nid].drift_report() == fleet.drift_report(nid), nid
    return produced


class TestFleetIdentity:
    def test_clean_stream_is_identical(self, model, envelope):
        produced = run_identity_stream(
            model,
            envelope,
            n_nodes=16,
            n_ticks=12,
            plan=IngestFaultPlan(),
            fault_seed=0,
        )
        assert produced == 16 * 12

    @pytest.mark.parametrize("fault_seed", [0, 1, 20170529])
    def test_chaos_stream_is_identical(self, model, envelope, fault_seed):
        """Drift latching, breaker trips, baseline fallback and
        degraded-counter flags must all fire identically under every
        fault seed."""
        plan = IngestFaultPlan.chaos(
            0.5, faulty_node_fraction=0.4, fault_seed=fault_seed
        )
        produced = run_identity_stream(
            model,
            envelope,
            n_nodes=24,
            n_ticks=20,
            plan=plan,
            fault_seed=fault_seed,
        )
        # The chaos plan drops/mangles rows but most survive.
        assert produced > 24 * 20 // 2

    def test_everything_implausible_latches_drift_identically(self, model):
        """A too-tight envelope forces every model estimate implausible
        — the drift latch and quarantine path must match serially."""
        # The synthetic model's baseline alone is ~34-66 W for the
        # generated contexts, so a 20 W ceiling makes every model
        # estimate implausible.
        tight = PowerEnvelope(lo_w=5.0, hi_w=20.0)
        rng = np.random.default_rng(11)
        node_ids = [f"node-{i}" for i in range(8)]
        kw = dict(envelope=tight, **ESTIMATOR_KW)
        serial = {nid: OnlineEstimator(model, **kw) for nid in node_ids}
        fleet = FleetEstimator(model, **kw)
        for tick in range(10):
            samples = make_fleet_samples(node_ids, tick, rng)
            batch = make_batch(samples, COUNTERS)
            result = fleet.step_batch(batch)
            for i in range(batch.n_rows):
                sample = batch.row_sample(i)
                est_serial = serial[sample.node_id].step(
                    sample.counter_deltas,
                    interval_s=sample.interval_s,
                    voltage_v=sample.voltage_v,
                    frequency_mhz=sample.frequency_mhz,
                    time_s=sample.time_s,
                )
                est_fleet = result.estimate(i)
                assert float(est_serial.power_w) == float(est_fleet.power_w)
                assert tuple(est_serial.flags) == tuple(est_fleet.flags)
        for nid in node_ids:
            report = fleet.drift_report(nid)
            assert report == serial[nid].drift_report()
            assert report.drift_detected
            assert fleet.is_quarantined(nid)

    def test_duplicate_nodes_in_one_batch_preserve_serial_order(
        self, model, envelope
    ):
        """Three samples for the same node in one batch must apply in
        row order, exactly like three serial step() calls."""
        rng = np.random.default_rng(5)
        kw = dict(envelope=envelope, **ESTIMATOR_KW)
        serial = OnlineEstimator(model, **kw)
        fleet = FleetEstimator(model, **kw)
        samples = []
        for rep in range(3):
            samples.extend(make_fleet_samples(["dup"], rep, rng))
        batch = make_batch(samples, COUNTERS)
        result = fleet.step_batch(batch)
        for i in range(batch.n_rows):
            sample = batch.row_sample(i)
            est_serial = serial.step(
                sample.counter_deltas,
                interval_s=sample.interval_s,
                voltage_v=sample.voltage_v,
                frequency_mhz=sample.frequency_mhz,
                time_s=sample.time_s,
            )
            est_fleet = result.estimate(i)
            assert float(est_serial.smoothed_w) == float(est_fleet.smoothed_w)
        assert serial.drift_report() == fleet.drift_report("dup")

    def test_counter_mismatch_rejected(self, model, envelope):
        fleet = FleetEstimator(model, envelope=envelope)
        rng = np.random.default_rng(1)
        samples = make_fleet_samples(["a"], 0, rng)
        batch = make_batch(samples, ("instructions",))
        with pytest.raises(ValueError, match="counter"):
            fleet.step_batch(batch)

    def test_invalid_config_rejected_like_serial(self, model):
        """The scratch estimator enforces OnlineEstimator's own config
        validation."""
        with pytest.raises(ValueError, match="smoothing"):
            FleetEstimator(model, smoothing=0.0)

    def test_state_roundtrip_through_fleet(self, model, envelope):
        """node_state()/load_node_state() must resume bit-identically,
        matching a serial estimator resumed from the same snapshot."""
        rng = np.random.default_rng(9)
        node_ids = ["x", "y"]
        kw = dict(envelope=envelope, **ESTIMATOR_KW)
        fleet = FleetEstimator(model, **kw)
        serial = {nid: OnlineEstimator(model, **kw) for nid in node_ids}
        for tick in range(6):
            samples = make_fleet_samples(node_ids, tick, rng)
            batch = make_batch(samples, COUNTERS)
            fleet.step_batch(batch)
            for i in range(batch.n_rows):
                s = batch.row_sample(i)
                serial[s.node_id].step(
                    s.counter_deltas,
                    interval_s=s.interval_s,
                    voltage_v=s.voltage_v,
                    frequency_mhz=s.frequency_mhz,
                    time_s=s.time_s,
                )
        resumed = FleetEstimator(model, **kw)
        for nid in node_ids:
            resumed.load_node_state(nid, fleet.node_state(nid))
        for tick in range(6, 12):
            samples = make_fleet_samples(node_ids, tick, rng)
            batch = make_batch(samples, COUNTERS)
            result = resumed.step_batch(batch)
            for i in range(batch.n_rows):
                s = batch.row_sample(i)
                est_serial = serial[s.node_id].step(
                    s.counter_deltas,
                    interval_s=s.interval_s,
                    voltage_v=s.voltage_v,
                    frequency_mhz=s.frequency_mhz,
                    time_s=s.time_s,
                )
                est_fleet = result.estimate(i)
                assert float(est_serial.power_w) == float(est_fleet.power_w)
                assert float(est_serial.smoothed_w) == float(
                    est_fleet.smoothed_w
                )
        for nid in node_ids:
            assert resumed.drift_report(nid) == serial[nid].drift_report()
