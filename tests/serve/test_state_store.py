"""Sharded state-store semantics: atomicity, lazy reads, blast radius.

The promise under test is the serve layer's restore contract: a
corrupt shard file loses only the nodes placed in that shard, restore
of *k* nodes reads at most the dirty shards, and nothing corrupt ever
escapes as an exception.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online import OnlineEstimator
from repro.serve import FleetStateStore, fleet_fingerprint

from .conftest import COUNTERS, make_fleet_samples, synthetic_model


@pytest.fixture()
def model():
    return synthetic_model()


def node_states(model, node_ids, n_steps=4, seed=3):
    """Real estimator snapshots after a few streamed intervals."""
    rng = np.random.default_rng(seed)
    estimators = {nid: OnlineEstimator(model) for nid in node_ids}
    for tick in range(n_steps):
        for sample in make_fleet_samples(node_ids, tick, rng):
            estimators[sample.node_id].step(
                sample.counter_deltas,
                interval_s=sample.interval_s,
                voltage_v=sample.voltage_v,
                frequency_mhz=sample.frequency_mhz,
                time_s=sample.time_s,
            )
    return {nid: est.state_dict() for nid, est in estimators.items()}


class TestFleetStateStore:
    def test_roundtrip_restores_exact_state(self, model, tmp_path):
        fp = fleet_fingerprint(model, smoothing=0.3)
        store = FleetStateStore(tmp_path, fp, n_shards=4)
        states = node_states(model, [f"n{i}" for i in range(10)])
        store.store_many(states.items())

        fresh = FleetStateStore(tmp_path, fp, n_shards=4)
        for nid, state in states.items():
            assert fresh.load(nid) == state
        assert set(fresh.stored_keys()) == set(states)

    def test_restore_reads_at_most_dirty_shards(self, model, tmp_path):
        fp = fleet_fingerprint(model)
        store = FleetStateStore(tmp_path, fp, n_shards=8)
        states = node_states(model, [f"n{i}" for i in range(20)])
        store.store_many(states.items())

        reader = FleetStateStore(tmp_path, fp, n_shards=8)
        dirty = {reader.shard_of(nid) for nid in states}
        for nid in states:
            reader.load(nid)
        assert reader.shard_reads <= len(dirty)
        # Re-reading is free: shards are cached after first touch.
        before = reader.shard_reads
        for nid in states:
            reader.load(nid)
        assert reader.shard_reads == before

    def test_corrupt_shard_loses_only_its_own_nodes(self, model, tmp_path):
        fp = fleet_fingerprint(model)
        store = FleetStateStore(tmp_path, fp, n_shards=4)
        states = node_states(model, [f"n{i}" for i in range(16)])
        store.store_many(states.items())

        victim = sorted(tmp_path.glob("shard_*.npz"))[0]
        victim.write_bytes(b"this is not a zip archive")

        reader = FleetStateStore(tmp_path, fp, n_shards=4)
        lost = [n for n in states if reader.shard_of(n) == 0]
        kept = [n for n in states if reader.shard_of(n) != 0]
        assert lost, "fixture must place nodes in the corrupted shard"
        for nid in lost:
            assert reader.load(nid) is None
        for nid in kept:
            assert reader.load(nid) == states[nid]
        assert any(
            e["kind"] == "corrupt-shard-discarded" for e in reader.events()
        )

    def test_mismatched_fingerprint_resets_store(self, model, tmp_path):
        store = FleetStateStore(
            tmp_path, fleet_fingerprint(model, drift_window=30), n_shards=2
        )
        states = node_states(model, ["a", "b"])
        store.store_many(states.items())

        other = FleetStateStore(
            tmp_path, fleet_fingerprint(model, drift_window=60), n_shards=2
        )
        assert other.load("a") is None
        assert other.stored_keys() == []

    def test_store_many_writes_each_dirty_shard_once(self, model, tmp_path):
        store = FleetStateStore(
            tmp_path, fleet_fingerprint(model), n_shards=4
        )
        states = node_states(model, [f"n{i}" for i in range(12)])
        dirty = {store.shard_of(nid) for nid in states}
        assert store.store_many(states.items()) == len(dirty)
