"""Backpressure semantics of the bounded ingestion queue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import POLICIES, BoundedIngestQueue

from .conftest import make_fleet_samples


def samples(n, tick=0):
    rng = np.random.default_rng(42 + tick)
    return make_fleet_samples([f"n{i}" for i in range(n)], tick, rng)


class TestBoundedIngestQueue:
    def test_validates_capacity_and_policy(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedIngestQueue(0)
        with pytest.raises(ValueError, match="policy"):
            BoundedIngestQueue(4, policy="drop-everything")
        assert set(POLICIES) == {
            "reject", "shed-oldest", "degrade-to-baseline",
        }

    def test_accepts_below_capacity(self):
        q = BoundedIngestQueue(10)
        outcome = q.offer(samples(6))
        assert outcome.accepted == 6
        assert outcome.rejected == outcome.shed == 0
        assert q.depth == 6

    @pytest.mark.parametrize("policy", POLICIES)
    def test_depth_never_exceeds_capacity(self, policy):
        q = BoundedIngestQueue(8, policy=policy)
        for tick in range(5):
            q.offer(samples(7, tick))
            assert q.depth <= q.capacity
        assert q.stats().max_depth <= q.capacity

    def test_reject_bounces_overflow_and_keeps_queued(self):
        q = BoundedIngestQueue(5, policy="reject")
        first = samples(5)
        q.offer(first)
        outcome = q.offer(samples(3, tick=1))
        assert outcome.rejected == 3
        assert outcome.accepted == 0
        # Queued work survives: the original five drain in order.
        drained = q.drain()
        assert [s.node_id for s in drained] == [s.node_id for s in first]

    def test_shed_oldest_keeps_freshest(self):
        q = BoundedIngestQueue(5, policy="shed-oldest")
        q.offer(samples(5))
        outcome = q.offer(samples(2, tick=1))
        assert outcome.accepted == 2
        assert outcome.shed == 2
        drained = q.drain()
        assert len(drained) == 5
        # The two newest samples made it in; the two oldest are gone.
        assert [s.time_s for s in drained[-2:]] == [1.0, 1.0]

    def test_degrade_returns_diverted_samples(self):
        q = BoundedIngestQueue(5, policy="degrade-to-baseline")
        q.offer(samples(5))
        overflow = samples(4, tick=1)
        outcome = q.offer(overflow)
        assert outcome.accepted == 0
        assert [s.node_id for s in outcome.diverted] == [
            s.node_id for s in overflow
        ]
        # Diverted samples are never queued.
        assert q.depth == 5
        assert q.stats().diverted == 4

    def test_drain_respects_max_items(self):
        q = BoundedIngestQueue(10)
        q.offer(samples(7))
        assert len(q.drain(3)) == 3
        assert q.depth == 4
        assert len(q.drain()) == 4
        assert q.depth == 0

    def test_stats_account_every_outcome(self):
        q = BoundedIngestQueue(4, policy="reject")
        q.offer(samples(6))
        stats = q.stats()
        assert stats.accepted == 4
        assert stats.rejected == 2
        assert stats.capacity == 4
        assert stats.overloaded_fraction == pytest.approx(2 / 6)

    def test_overloaded_fraction_empty_queue(self):
        assert BoundedIngestQueue(4).stats().overloaded_fraction == 0.0
