"""Shared fixtures for the test suite.

The expensive fixtures — the full paper campaign and the selection
dataset — are session-scoped and reuse the same on-disk cache as the
experiment runner, so a warm test run costs seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition import run_campaign
from repro.experiments import data as expdata
from repro.hardware import Platform
from repro.seeding import DEFAULT_SEED
from repro.workloads import get_workload


@pytest.fixture(scope="session")
def platform():
    """The default simulated Haswell-EP platform."""
    return Platform()


@pytest.fixture(scope="session")
def full_dataset():
    """The full paper campaign (all workloads × 5 DVFS states)."""
    return expdata.full_dataset()


@pytest.fixture(scope="session")
def selection_dataset():
    """All workloads at the 2400 MHz selection frequency."""
    return expdata.selection_dataset()


@pytest.fixture(scope="session")
def selected_counters():
    """The six counters Algorithm 1 picks on the selection dataset."""
    return expdata.selected_counters()


@pytest.fixture(scope="session")
def small_dataset(platform):
    """A small, fast campaign for unit-level pipeline tests."""
    workloads = [
        get_workload("idle"),
        get_workload("compute"),
        get_workload("memory_read"),
        get_workload("md"),
    ]
    return run_campaign(
        platform, workloads, [1200, 2400], thread_counts=[1, 8, 24]
    )


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
