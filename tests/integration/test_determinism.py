"""Bit-reproducibility: the whole reproduction must regenerate
identically from the root seed."""

import numpy as np

from repro.acquisition import run_campaign
from repro.core import select_events
from repro.hardware import Platform
from repro.workloads import get_workload


def _mini_campaign(seed):
    platform = Platform(seed=seed)
    return run_campaign(
        platform,
        [get_workload("compute"), get_workload("memory_read"), get_workload("md")],
        [2400],
        thread_counts=[8, 24],
    )


class TestDeterminism:
    def test_campaign_bit_identical_across_builds(self):
        a = _mini_campaign(seed=42)
        b = _mini_campaign(seed=42)
        assert np.array_equal(a.counters, b.counters)
        assert np.array_equal(a.power_w, b.power_w)
        assert np.array_equal(a.voltage_v, b.voltage_v)
        assert a.workloads == b.workloads

    def test_selection_deterministic(self):
        ds = _mini_campaign(seed=42)
        a = select_events(ds, 3)
        b = select_events(ds, 3)
        assert a.selected == b.selected
        assert [s.rsquared for s in a.steps] == [s.rsquared for s in b.steps]

    def test_different_seed_different_measurements(self):
        a = _mini_campaign(seed=1)
        b = _mini_campaign(seed=2)
        assert not np.array_equal(a.power_w, b.power_w)

    def test_noise_sources_independent(self):
        """Power measurements and counter noise derive from independent
        streams: same seed, same workload set, but the noise across
        rows is uncorrelated between the two quantities."""
        ds = _mini_campaign(seed=3)
        # Relative deviations of two unrelated columns.
        a = ds.column("TOT_INS")
        b = ds.power_w
        # Nothing to assert about correlation magnitudes on 6 rows —
        # instead assert the streams were at least not byte-identical
        # reuse (catches accidental RNG sharing).
        assert not np.allclose(a / a.max(), b / b.max())
