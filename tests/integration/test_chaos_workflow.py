"""End-to-end chaos path (DESIGN.md §10): fault-injected acquisition →
robust workflow → degraded online estimation.

Run in the CI chaos matrix under three ``REPRO_FAULT_SEED`` values: the
whole degraded pipeline must produce a structured, finite, bit-identical
result for any fault stream, not just the default one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition import run_resilient_campaign
from repro.core import (
    PowerEnvelope,
    cv_out_of_fold_predictions,
    estimate_run_degraded,
    run_workflow,
    select_events,
)
from repro.faults import CounterLossPlan, FaultPlan
from repro.hardware import COUNTER_NAMES, FIXED_COUNTERS
from repro.hardware.platform import Platform
from repro.workloads import get_workload

#: Small event list keeps the campaign to 2 PMU event sets.
PROG = tuple(c for c in COUNTER_NAMES if c not in FIXED_COUNTERS)[:8]
EVENTS = tuple(FIXED_COUNTERS) + PROG

FREQUENCIES = (1200, 2400)
WORKLOADS = ("compute", "memory_read", "memory_write", "idle")
THREADS = (1, 8, 24)


@pytest.fixture(scope="module")
def fault_seed():
    import os

    return int(os.environ.get("REPRO_FAULT_SEED", "0"))


def degraded_campaign(fault_seed, seed=20170529, **kwargs):
    return run_resilient_campaign(
        Platform(seed=seed),
        [get_workload(w) for w in WORKLOADS],
        FREQUENCIES,
        events=EVENTS,
        thread_counts=THREADS,
        faults=FaultPlan.chaos(0.25, fault_seed=fault_seed),
        **kwargs,
    )


@pytest.fixture(scope="module")
def campaign(fault_seed):
    return degraded_campaign(fault_seed)


class TestDegradedWorkflow:
    def test_campaign_survives_chaos(self, campaign):
        assert campaign.dataset is not None
        assert campaign.dataset.n_samples > 0

    def test_robust_workflow_on_degraded_dataset(self, campaign):
        result = run_workflow(
            dataset=campaign.dataset,
            n_events=3,
            frequencies_mhz=FREQUENCIES,
            robust=True,
        )
        assert result.model.estimator == "huber"
        assert 1 <= len(result.selected_counters) <= 3
        assert np.isfinite(result.model.rsquared)
        assert np.isfinite(result.validation.mape)
        # Degradation is surfaced, never swallowed: the summary must
        # render whatever the hardened path had to adapt around.
        assert "Workflow summary" in result.summary()

    def test_strict_workflow_may_raise_but_never_crashes_opaquely(
        self, campaign
    ):
        """The strict path on the same degraded data either succeeds or
        fails with a typed, actionable error — no bare LinAlgError."""
        try:
            result = run_workflow(
                dataset=campaign.dataset,
                n_events=3,
                frequencies_mhz=FREQUENCIES,
            )
        except (ValueError, KeyError):
            return
        assert np.isfinite(result.model.rsquared)


class TestDegradedOnlinePath:
    @pytest.fixture(scope="class")
    def workflow(self, campaign):
        return run_workflow(
            dataset=campaign.dataset,
            n_events=3,
            frequencies_mhz=FREQUENCIES,
            robust=True,
        )

    def test_online_estimation_under_counter_loss(
        self, campaign, workflow, fault_seed
    ):
        platform = Platform(seed=20170529)
        run = platform.execute(get_workload("compute"), 2400, 8)
        envelope = PowerEnvelope.from_dataset(campaign.dataset)
        timeline, report = estimate_run_degraded(
            platform,
            run,
            workflow.model,
            faults=CounterLossPlan.chaos(0.4, fault_seed=fault_seed),
            envelope=envelope,
        )
        assert np.all(np.isfinite(timeline.estimated_w))
        assert np.all(np.isfinite(timeline.smoothed_w))
        assert report.n_intervals == timeline.estimated_w.shape[0]
        assert report.n_model + report.n_baseline == report.n_intervals
        assert report.summary()  # structured and renderable

    def test_end_to_end_bit_identical(self, fault_seed):
        """The acceptance gate: replaying the whole chaos pipeline with
        the same seeds reproduces the dataset, the model and the online
        session bit for bit."""
        first = degraded_campaign(fault_seed)
        second = degraded_campaign(fault_seed)
        assert first.dataset is not None and second.dataset is not None
        assert np.array_equal(first.dataset.counters, second.dataset.counters)
        assert np.array_equal(first.dataset.power_w, second.dataset.power_w)

        kwargs = dict(n_events=3, frequencies_mhz=FREQUENCIES, robust=True)
        wf1 = run_workflow(dataset=first.dataset, **kwargs)
        wf2 = run_workflow(dataset=second.dataset, **kwargs)
        assert wf1.selected_counters == wf2.selected_counters
        assert np.array_equal(wf1.model.ols.params, wf2.model.ols.params)

        platform = Platform(seed=20170529)
        run = platform.execute(get_workload("compute"), 2400, 8)
        plan = CounterLossPlan.chaos(0.4, fault_seed=fault_seed)
        t1, r1 = estimate_run_degraded(platform, run, wf1.model, faults=plan)
        t2, r2 = estimate_run_degraded(platform, run, wf2.model, faults=plan)
        assert np.array_equal(t1.estimated_w, t2.estimated_w)
        assert r1 == r2


class TestParallelChaos:
    def test_process_backend_bit_identical_under_chaos(
        self, campaign, fault_seed
    ):
        """ISSUE-4 tentpole gate on the chaos path: the full degraded
        campaign under ``parallel="process"`` reproduces the serial
        dataset and report (timing excluded) for any CI fault seed."""
        import dataclasses

        result = degraded_campaign(
            fault_seed, parallel="process", max_workers=2
        )
        assert result.dataset is not None and campaign.dataset is not None
        assert np.array_equal(
            result.dataset.counters, campaign.dataset.counters,
            equal_nan=True,
        )
        assert np.array_equal(result.dataset.power_w, campaign.dataset.power_w)
        assert result.dataset.counter_names == campaign.dataset.counter_names
        assert dataclasses.replace(
            result.report, timing=None
        ) == dataclasses.replace(campaign.report, timing=None)


class TestChaosAudit:
    """ISSUE-6 gate on the chaos path: a degraded acquisition run must
    come out of the audit graded minor or major — never a silent pass."""

    def test_campaign_audit_grades_degradation(self, campaign):
        audit = campaign.report.audit
        assert audit is not None
        assert "campaign" in audit.artifacts
        if campaign.report.clean:
            assert audit.verdict == "pass"
        else:
            assert audit.worst_at_least("minor")
            assert audit.verdict != "fail"  # degraded ≠ invalid
            assert any(f.rule_id == "AU010" for f in audit.findings)
            assert "audit verdict:" in campaign.report.summary()

    def test_workflow_audit_attached_under_chaos(self, campaign):
        result = run_workflow(
            dataset=campaign.dataset,
            n_events=3,
            frequencies_mhz=FREQUENCIES,
            robust=True,
        )
        assert result.audit is not None
        # Chaos degrades quality, it does not fabricate perfection: the
        # fit may be graded down, but a fail verdict here would mean the
        # robust path produced a numerically bogus model.
        assert result.audit.verdict != "fail"


class TestFastFitChaos:
    """ISSUE-5 gate on the chaos path: the Gram-cache fast fit must be
    equivalent to the exact path on degraded campaign data too, for
    any CI fault seed."""

    def test_selection_fast_equals_slow_on_degraded_dataset(self, campaign):
        from repro.core.selection import select_events

        assert campaign.dataset is not None
        kwargs = dict(n_events=3, on_missing="skip")
        slow = select_events(campaign.dataset, fast=False, **kwargs)
        fast = select_events(campaign.dataset, fast=True, **kwargs)
        assert slow.selected == fast.selected
        assert slow.warnings == fast.warnings
        for a, b in zip(slow.steps, fast.steps):
            assert a.counter == b.counter
            assert a.warnings == b.warnings
            np.testing.assert_allclose(
                a.criterion_value, b.criterion_value, rtol=1e-9
            )

    def test_workflow_fast_equals_slow_on_degraded_dataset(self, campaign):
        assert campaign.dataset is not None
        kwargs = dict(
            dataset=campaign.dataset,
            n_events=3,
            frequencies_mhz=FREQUENCIES,
        )
        outcomes = []
        for fast in (False, True):
            try:
                outcomes.append(("ok", run_workflow(fast=fast, **kwargs)))
            except Exception as exc:  # noqa: BLE001 - equivalence gate
                outcomes.append(("err", (type(exc), str(exc))))
        slow, fast_res = outcomes
        assert slow[0] == fast_res[0]
        if slow[0] == "err":
            assert slow[1] == fast_res[1]
        else:
            assert (
                slow[1].selected_counters == fast_res[1].selected_counters
            )
            np.testing.assert_allclose(
                slow[1].validation.mape, fast_res[1].validation.mape,
                rtol=1e-9,
            )


class TestFastsimChaos:
    """ISSUE-10 gate on the chaos path: the batched acquisition kernel
    (phase-state memo, shared-grid tracer, vectorized plugins) must be
    invisible on degraded data for every CI fault seed — serial scalar
    (``REPRO_FASTSIM=0``), fastsim and the process/arena backend all
    produce identical datasets and reports (timing excluded)."""

    @pytest.mark.parametrize("chaos_seed", [0, 1, 2])
    def test_fastsim_bit_identical_under_chaos(self, chaos_seed, monkeypatch):
        import dataclasses

        fast = degraded_campaign(chaos_seed)
        arena = degraded_campaign(
            chaos_seed, parallel="process", max_workers=2
        )
        monkeypatch.setenv("REPRO_FASTSIM", "0")
        scalar = degraded_campaign(chaos_seed)
        assert scalar.dataset is not None
        for other in (fast, arena):
            assert other.dataset is not None
            assert np.array_equal(
                scalar.dataset.counters, other.dataset.counters,
                equal_nan=True,
            )
            assert np.array_equal(
                scalar.dataset.power_w, other.dataset.power_w
            )
            assert (
                scalar.dataset.counter_names == other.dataset.counter_names
            )
            assert dataclasses.replace(
                scalar.report, timing=None
            ) == dataclasses.replace(other.report, timing=None)


class TestArenaChaos:
    """ISSUE-9 gate on the chaos path: shared-memory process dispatch
    must be invisible on degraded data for every CI fault seed — the
    same selection, folds and predictions as serial, and zero leaked
    ``/dev/shm`` segments."""

    def shm_segments(self):
        import glob

        return glob.glob("/dev/shm/repro-arena-*")

    def dense_campaign(self, fault_seed):
        # More thread counts than the module default: enough surviving
        # rows (30+) for a 16-fold CV, which is what clears the
        # small-task guard and puts real fold batches on the pool.
        return run_resilient_campaign(
            Platform(seed=20170529),
            [get_workload(w) for w in WORKLOADS],
            FREQUENCIES,
            events=EVENTS,
            thread_counts=(1, 2, 4, 6, 8, 12, 16, 20, 24),
            faults=FaultPlan.chaos(0.25, fault_seed=fault_seed),
        )

    @pytest.mark.parametrize("chaos_seed", [0, 1, 2])
    def test_selection_bit_identical_under_chaos(self, chaos_seed):
        ds = self.dense_campaign(chaos_seed).dataset
        assert ds is not None
        kwargs = dict(on_missing="skip", fast=False)
        serial = select_events(ds, 2, parallel="serial", **kwargs)
        process = select_events(
            ds, 2, parallel="process", max_workers=2, **kwargs
        )
        assert process.selected == serial.selected
        assert process.warnings == serial.warnings
        assert [s.criterion_value for s in process.steps] == [
            s.criterion_value for s in serial.steps
        ]
        assert self.shm_segments() == []

    @pytest.mark.parametrize("chaos_seed", [0, 1, 2])
    def test_cv_bit_identical_under_chaos(self, chaos_seed, monkeypatch):
        ds = self.dense_campaign(chaos_seed).dataset
        assert ds is not None
        counters = ds.counter_names[:2]
        kwargs = dict(n_splits=16, on_zero="skip", fast=False)
        serial = cv_out_of_fold_predictions(
            ds, counters, parallel="serial", **kwargs
        )
        arena = cv_out_of_fold_predictions(
            ds, counters, parallel="process", max_workers=2, **kwargs
        )
        monkeypatch.setenv("REPRO_ARENA", "0")
        pickled = cv_out_of_fold_predictions(
            ds, counters, parallel="process", max_workers=2, **kwargs
        )
        for other in (arena, pickled):
            assert np.array_equal(serial[0], other[0], equal_nan=True)
            assert serial[1] == other[1]
            assert serial[2] == other[2]
        assert self.shm_segments() == []
