"""Failure-injection tests: the pipeline must fail loudly on broken
measurement campaigns, not silently produce bad models."""

import numpy as np
import pytest

from repro.acquisition import Campaign, CampaignPlan, build_dataset, merge_runs
from repro.acquisition.dataset import PowerDataset
from repro.hardware import COUNTER_NAMES, Platform
from repro.tracing import PhaseProfile
from repro.workloads import get_workload


def _profile(run_index, counters, power_w=100.0, voltage_v=0.97):
    return PhaseProfile(
        workload="k",
        suite="roco2",
        frequency_mhz=2400,
        threads=8,
        run_index=run_index,
        phase_name="k.loop",
        start_s=0.0,
        end_s=10.0,
        active_threads=8,
        power_w=power_w,
        voltage_v=voltage_v,
        counter_rates_per_s=counters,
    )


class TestSensorFailures:
    def test_dropped_counter_group_detected(self):
        """Losing one counter-group run leaves holes that dataset
        assembly must refuse by default."""
        complete = {c: 1e6 for c in COUNTER_NAMES}
        partial = dict(list(complete.items())[:40])
        with pytest.raises(ValueError, match="missing"):
            build_dataset(merge_runs([_profile(0, partial)]))

    def test_dropped_group_recoverable_with_flag(self):
        complete = {c: 1e6 for c in COUNTER_NAMES}
        merged = merge_runs(
            [_profile(0, complete), _profile(0, dict(list(complete.items())[:40]))]
        )
        # Two phases (different... same phase name & key -> merged), so
        # construct distinct phases instead.
        profiles = [
            _profile(0, complete),
        ]
        broken = PhaseProfile(
            workload="other",
            suite="roco2",
            frequency_mhz=2400,
            threads=8,
            run_index=0,
            phase_name="other.loop",
            start_s=0.0,
            end_s=10.0,
            active_threads=8,
            power_w=100.0,
            voltage_v=0.97,
            counter_rates_per_s=dict(list(complete.items())[:40]),
        )
        ds = build_dataset(
            merge_runs(profiles + [broken]), require_complete=False
        )
        assert ds.n_samples == 1
        assert ds.workloads == ("k",)

    def test_miscalibrated_run_detected(self):
        """A counter disagreeing wildly across runs (e.g. broken PMU
        multiplexing) must be rejected by the merge."""
        with pytest.raises(ValueError, match="disagrees"):
            merge_runs(
                [
                    _profile(0, {"PRF_DM": 1.0e6}),
                    _profile(1, {"PRF_DM": 2.0e6}),
                ]
            )

    def test_dead_sensor_rejected_by_dataset(self):
        """A sensor reading zero/negative power violates dataset
        invariants at construction."""
        complete = {c: 1e6 for c in COUNTER_NAMES}
        merged = merge_runs([_profile(0, complete, power_w=-5.0)])
        with pytest.raises(ValueError, match="positive"):
            build_dataset(merged)


class TestPlatformEdgeCases:
    def test_campaign_with_unsupported_frequency_fails_fast(self, platform):
        plan = CampaignPlan(
            workloads=(get_workload("idle"),), frequencies_mhz=(900,)
        )
        with pytest.raises(ValueError, match="outside supported range"):
            Campaign(platform, plan).run()

    def test_extreme_noise_platform_still_produces_dataset(self):
        noisy = Platform(
            seed=5,
            run_jitter_sigma=0.05,
            power_jitter_sigma=0.05,
            power_offset_sigma_w=10.0,
        )
        from repro.acquisition import run_campaign

        ds = run_campaign(
            noisy, [get_workload("compute")], [2400], thread_counts=[8]
        )
        assert ds.n_samples == 1
        assert np.all(ds.power_w > 0)

    def test_zero_noise_platform_is_exactly_repeatable(self):
        quiet = Platform(
            seed=5,
            run_jitter_sigma=0.0,
            power_jitter_sigma=0.0,
            power_offset_sigma_w=0.0,
        )
        a = quiet.execute(get_workload("compute"), 2400, 8, run_index=0)
        b = quiet.execute(get_workload("compute"), 2400, 8, run_index=1)
        # Without jitter, different run indices give identical truth.
        assert a.phases[0].power_breakdown.measured_w == pytest.approx(
            b.phases[0].power_breakdown.measured_w
        )
