"""Cross-layer integration tests: platform → tracing → acquisition →
model, checked against ground truth the layers never see directly."""

import numpy as np
import pytest

from repro.acquisition import run_campaign
from repro.core import PowerModel, select_events
from repro.hardware import Platform
from repro.workloads import generate_workloads, get_workload


class TestTruthRecovery:
    """The acquired dataset must faithfully reflect the simulated
    ground truth despite PMU multiplexing, sampling and merging."""

    def test_dataset_power_matches_ground_truth(self, platform, small_dataset):
        run = platform.execute(get_workload("compute"), 2400, 24)
        truth = run.phases[0].power_breakdown.measured_w
        row = small_dataset.filter(
            workloads=["compute"], frequency_mhz=2400
        )
        i = list(row.threads).index(24)
        # Averaging over 13 multiplexing runs with ~0.5 % jitter.
        assert row.power_w[i] == pytest.approx(truth, rel=0.02)

    def test_dataset_rates_match_ground_truth(self, platform, small_dataset):
        run = platform.execute(get_workload("compute"), 2400, 24)
        truth = run.phases[0].state.rate("TOT_INS")
        row = small_dataset.filter(workloads=["compute"], frequency_mhz=2400)
        i = list(row.threads).index(24)
        assert row.column("TOT_INS")[i] == pytest.approx(truth, rel=0.03)

    def test_voltage_tracks_pstate(self, small_dataset):
        low = small_dataset.filter(frequency_mhz=1200)
        high = small_dataset.filter(frequency_mhz=2400)
        assert low.voltage_v.mean() < high.voltage_v.mean() - 0.2


class TestModelOnGeneratedWorkloads:
    """The method generalizes beyond the paper's suites: train and
    validate Equation 1 on generator-produced workloads."""

    @pytest.fixture(scope="class")
    def gen_dataset(self, platform):
        workloads = generate_workloads(12, seed=77, thread_counts=(4, 16))
        return run_campaign(platform, workloads, [1600, 2400])

    def test_selection_and_fit(self, gen_dataset):
        selection = select_events(
            gen_dataset.filter(frequency_mhz=2400), 4
        )
        fitted = PowerModel(selection.selected).fit(gen_dataset)
        assert fitted.rsquared > 0.9

    def test_holdout_generalization(self, gen_dataset):
        names = sorted(set(gen_dataset.workloads))
        train = gen_dataset.filter(workloads=names[:8])
        test = gen_dataset.filter(workloads=names[8:])
        selection = select_events(train.filter(frequency_mhz=2400), 4)
        fitted = PowerModel(selection.selected).fit(train)
        scores = fitted.evaluate(test)
        assert scores["mape"] < 25.0


class TestPhysicalConsistency:
    def test_equation1_coefficients_physically_signed(
        self, full_dataset, selected_counters
    ):
        """On the full campaign, the fitted static power must be
        physically meaningful.  gamma and delta individually are not
        sign-identified (V spans only 0.70-1.04 V, so V and 1 are
        nearly collinear) — but their combination gamma*V + delta is
        the idle floor and must be positive at every operating
        voltage."""
        fitted = PowerModel(selected_counters).fit(full_dataset)
        for v in (0.70, 0.87, 1.04):
            static = fitted.gamma * v + fitted.delta
            assert static > 0.0

    def test_higher_frequency_higher_predicted_power(
        self, full_dataset, selected_counters
    ):
        fitted = PowerModel(selected_counters).fit(full_dataset)
        low = full_dataset.filter(
            workloads=["compute"], frequency_mhz=1200
        )
        high = full_dataset.filter(
            workloads=["compute"], frequency_mhz=2600
        )
        assert fitted.predict(high).mean() > fitted.predict(low).mean()
