"""Unit tests for cluster-scale estimation."""

import pytest

from repro.cluster import (
    NodeVariation,
    build_cluster,
    estimate_cluster_power,
)
from repro.faults import FaultPlan, NodeFailure
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(4, seed=7)


TRAIN = None  # filled per test via helper


def _training_suite():
    return [
        get_workload(n)
        for n in ("idle", "busywait", "compute", "memory_read", "matmul")
    ]


COUNTERS = ("CA_SNP", "TOT_CYC", "PRF_DM", "STL_ICY")


class TestBuildCluster:
    def test_node_identity(self, cluster):
        assert [n.hostname for n in cluster] == [
            "node000", "node001", "node002", "node003"
        ]
        assert len({id(n.platform) for n in cluster}) == 4

    def test_manufacturing_variation_present(self, cluster):
        leakages = {
            n.platform.power_params.leakage_w_per_v for n in cluster
        }
        assert len(leakages) == 4

    def test_deterministic_dies(self):
        a = build_cluster(3, seed=7)
        b = build_cluster(3, seed=7)
        for na, nb in zip(a, b):
            assert (
                na.platform.power_params.leakage_w_per_v
                == nb.platform.power_params.leakage_w_per_v
            )

    def test_seed_changes_dies(self):
        a = build_cluster(2, seed=7)[0]
        b = build_cluster(2, seed=8)[0]
        assert (
            a.platform.power_params.leakage_w_per_v
            != b.platform.power_params.leakage_w_per_v
        )

    def test_nodes_draw_different_power(self, cluster):
        """Same workload, same settings — different watts per die."""
        powers = set()
        for node in cluster:
            run = node.platform.execute(get_workload("compute"), 2400, 24)
            powers.add(round(run.phases[0].power_breakdown.measured_w, 1))
        assert len(powers) == 4

    def test_variation_knobs(self):
        flat = build_cluster(
            3,
            seed=7,
            variation=NodeVariation(
                leakage_sigma=0.0, switching_sigma=0.0, board_sigma=0.0
            ),
        )
        leakages = {n.platform.power_params.leakage_w_per_v for n in flat}
        assert len(leakages) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_cluster(0)


class TestClusterEstimation:
    @pytest.fixture(scope="class")
    def assignment(self, cluster):
        names = ("compute", "memory_read", "md", "busywait")
        return {
            node.hostname: get_workload(name)
            for node, name in zip(cluster, names)
        }

    @pytest.fixture(scope="class")
    def shared(self, cluster, assignment):
        return estimate_cluster_power(
            cluster,
            assignment,
            counters=COUNTERS,
            training_workloads=_training_suite(),
            strategy="shared",
        )

    @pytest.fixture(scope="class")
    def per_node(self, cluster, assignment):
        return estimate_cluster_power(
            cluster,
            assignment,
            counters=COUNTERS,
            training_workloads=_training_suite(),
            strategy="per-node",
        )

    def test_totals_plausible(self, shared):
        assert shared.true_total_w > 300.0
        assert shared.estimated_total_w > 0.0
        assert len(shared.nodes) == 4

    def test_aggregate_beats_worst_node(self, shared):
        """Per-node errors partially cancel in the sum."""
        assert shared.total_error_percent <= shared.worst_node_ape_percent

    def test_per_node_calibration_helps(self, shared, per_node):
        assert (
            per_node.mean_node_ape_percent
            <= shared.mean_node_ape_percent + 1.0
        )

    def test_reasonable_accuracy(self, shared, per_node):
        assert shared.total_error_percent < 15.0
        assert per_node.total_error_percent < 15.0

    def test_missing_assignment_rejected(self, cluster):
        with pytest.raises(KeyError, match="missing"):
            estimate_cluster_power(
                cluster,
                {},
                counters=COUNTERS,
                training_workloads=_training_suite(),
            )

    def test_unknown_strategy_rejected(self, cluster, assignment):
        with pytest.raises(ValueError, match="strategy"):
            estimate_cluster_power(
                cluster,
                assignment,
                counters=COUNTERS,
                training_workloads=_training_suite(),
                strategy="magic",
            )


class TestDeadNodes:
    def _assignment(self, nodes):
        return {n.hostname: get_workload("compute") for n in nodes}

    def test_all_alive_without_faults(self, cluster):
        assert all(n.alive for n in cluster)

    def test_fault_plan_kills_nodes_deterministically(self):
        plan = FaultPlan(dead_node_rate=0.5)
        a = build_cluster(20, seed=7, faults=plan)
        b = build_cluster(20, seed=7, faults=plan)
        dead = [n.node_id for n in a if not n.alive]
        assert 0 < len(dead) < 20
        assert dead == [n.node_id for n in b if not n.alive]
        # Liveness never perturbs the dies themselves.
        plain = build_cluster(20, seed=7)
        for fn, pn in zip(a, plain):
            assert (
                fn.platform.power_params.leakage_w_per_v
                == pn.platform.power_params.leakage_w_per_v
            )

    def test_dead_node_aborts_estimation_by_default(self):
        nodes = build_cluster(
            8, seed=7, faults=FaultPlan(dead_node_rate=0.5)
        )
        assert any(not n.alive for n in nodes)
        with pytest.raises(NodeFailure, match="dead nodes"):
            estimate_cluster_power(
                nodes,
                self._assignment(nodes),
                counters=COUNTERS,
                training_workloads=_training_suite(),
                frequencies_mhz=(1200, 2400),
                threads=8,
            )

    def test_skip_mode_estimates_survivors(self):
        nodes = build_cluster(
            8, seed=7, faults=FaultPlan(dead_node_rate=0.5)
        )
        dead = [n.hostname for n in nodes if not n.alive]
        estimate = estimate_cluster_power(
            nodes,
            self._assignment(nodes),
            counters=COUNTERS,
            training_workloads=_training_suite(),
            frequencies_mhz=(1200, 2400),
            threads=8,
            on_dead_nodes="skip",
        )
        assert estimate.skipped_nodes == tuple(dead)
        assert len(estimate.nodes) == len(nodes) - len(dead)
        live = {n.hostname for n in nodes if n.alive}
        assert {e.hostname for e in estimate.nodes} == live

    def test_all_dead_raises_even_in_skip_mode(self):
        nodes = build_cluster(2, seed=7, faults=FaultPlan(dead_node_rate=1.0))
        with pytest.raises(NodeFailure, match="no live nodes"):
            estimate_cluster_power(
                nodes,
                self._assignment(nodes),
                counters=COUNTERS,
                training_workloads=_training_suite(),
                on_dead_nodes="skip",
            )

    def test_invalid_mode_rejected(self, cluster):
        with pytest.raises(ValueError, match="on_dead_nodes"):
            estimate_cluster_power(
                cluster,
                self._assignment(cluster),
                counters=COUNTERS,
                training_workloads=_training_suite(),
                on_dead_nodes="maybe",
            )
