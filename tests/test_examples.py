"""Smoke tests: the shipped examples must run and produce their key
output lines.  (The two heaviest examples are exercised with the
session cache warm, so the whole module stays fast.)"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: int = 600) -> str:
    env = dict(os.environ)
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=EXAMPLES.parent,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


@pytest.mark.usefixtures("full_dataset")  # warm the shared cache first
class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "Selected counters (Algorithm 1):" in out
        assert "10-fold CV MAPE" in out
        assert "Per-workload MAPE" in out

    def test_dvfs_sweep(self):
        out = _run("dvfs_sweep.py")
        assert "Cross-validated estimation error per DVFS state" in out
        assert "2600 MHz" in out

    def test_energy_tuning(self):
        out = _run("energy_tuning.py")
        assert "E-optimal" in out
        assert "memory_read" in out
        assert "static+system=" in out

    def test_online_monitoring(self):
        out = _run("online_monitoring.py")
        assert "Calibrated model saved" in out
        assert "streamed estimate vs reference sensors" in out

    def test_unseen_workloads(self):
        out = _run("unseen_workloads.py")
        assert "2:synthetic-to-spec" in out
        assert "generated workloads" in out

    def test_cross_platform(self):
        out = _run("cross_platform.py")
        assert "skylake" in out.lower()
        assert "coefficients do not transfer" in out
