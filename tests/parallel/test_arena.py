"""The shared-memory arena contract: zero-copy handles, zero leaks.

Leak assertions scan ``/dev/shm`` for the module's ``repro-arena-``
prefix, so every test here is precise about what it may strand: nothing.
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.parallel import (
    ProcessExecutor,
    SharedArena,
    arena_enabled,
    release_arenas,
    shutdown_pools,
    split_batches,
)
from repro.parallel.arena import (
    ARENA_ENV,
    SEGMENT_PREFIX,
    ArrayHandle,
    attached_segments,
    detach_all,
)


def shm_segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*")


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test starts and ends with a clean ``/dev/shm``."""
    assert shm_segments() == []
    yield
    release_arenas()
    detach_all()
    assert shm_segments() == []


def echo_handle(args):
    """Worker: resolve a handle, return a verifiable digest."""
    handle, scale = args
    view = handle.resolve()
    return float(view.sum()) * scale


def resolve_flags(handle):
    view = handle.resolve()
    return (view.flags.writeable, view.flags.c_contiguous)


def crash_worker(args):
    os._exit(1)


def release_then_read(handle):
    """Worker: run the parent's release path, then read the segment.

    Fork hygiene means the worker's ``release_arenas()`` is a no-op —
    it inherited ``_LIVE_ARENAS`` by reference but ownership never
    crosses a fork, so the parent's segments must survive it.
    """
    release_arenas()
    return float(handle.resolve().sum())


# ---------------------------------------------------------------------------
class TestArrayHandle:
    def test_roundtrip_is_bitwise(self):
        rng = np.random.default_rng(7)
        arr = rng.normal(size=(37, 5))
        with SharedArena() as arena:
            view = arena.publish(arr).resolve()
            assert view.dtype == arr.dtype
            assert view.shape == arr.shape
            assert np.array_equal(
                view.view(np.uint64), arr.view(np.uint64)
            )  # bit-level, not just value-level

    def test_resolved_view_is_read_only(self):
        with SharedArena() as arena:
            view = arena.publish(np.arange(6.0)).resolve()
            assert not view.flags.writeable
            with pytest.raises(ValueError, match="read-only"):
                view[0] = 1.0

    def test_non_contiguous_and_int_arrays(self):
        base = np.arange(24, dtype=np.int64).reshape(4, 6)
        sliced = base[:, ::2]  # non-contiguous source
        with SharedArena() as arena:
            assert np.array_equal(arena.publish(sliced).resolve(), sliced)

    def test_empty_array_needs_no_segment(self):
        with SharedArena() as arena:
            handle = arena.publish(np.empty((0, 4)))
            assert handle.name == ""
            assert arena.segment_names == ()
            view = handle.resolve()
            assert view.shape == (0, 4)
            assert not view.flags.writeable

    def test_handle_pickles_small(self):
        import pickle

        with SharedArena() as arena:
            handle = arena.publish(np.zeros((10_000, 50)))
            assert len(pickle.dumps(handle)) < 200  # vs 4 MB of payload

    def test_resolution_is_memoized_per_process(self):
        with SharedArena() as arena:
            handle = arena.publish(np.arange(8.0))
            assert handle.resolve() is handle.resolve()
            assert attached_segments() == (handle.name,)


class TestSharedArena:
    def test_publish_dedupes_same_object(self):
        arr = np.arange(12.0)
        with SharedArena() as arena:
            assert arena.publish(arr) is arena.publish(arr)
            assert len(arena.segment_names) == 1

    def test_equal_but_distinct_arrays_get_distinct_segments(self):
        with SharedArena() as arena:
            h1 = arena.publish(np.arange(4.0))
            h2 = arena.publish(np.arange(4.0))
            assert h1.name != h2.name

    def test_close_unlinks_and_is_idempotent(self):
        arena = SharedArena()
        arena.publish(np.arange(16.0))
        assert len(shm_segments()) == 1
        arena.close()
        assert shm_segments() == []
        assert arena.closed
        arena.close()  # second close is a no-op

    def test_context_manager_closes_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with SharedArena() as arena:
                arena.publish(np.arange(4.0))
                raise RuntimeError("boom")
        assert arena.closed
        assert shm_segments() == []

    def test_publish_after_close_rejected(self):
        arena = SharedArena()
        arena.close()
        with pytest.raises(RuntimeError, match="closed"):
            arena.publish(np.arange(3.0))

    def test_release_arenas_closes_every_live_arena(self):
        arenas = [SharedArena() for _ in range(3)]
        for a in arenas:
            a.publish(np.arange(8.0))
        assert len(shm_segments()) == 3
        release_arenas()
        assert all(a.closed for a in arenas)
        assert shm_segments() == []

    def test_shutdown_pools_releases_arenas(self):
        arena = SharedArena()
        arena.publish(np.arange(8.0))
        shutdown_pools()
        assert arena.closed
        assert shm_segments() == []

    def test_close_tolerates_live_views(self):
        # Unlink-first close: the /dev/shm entry goes away even while a
        # resolved view in this very process still pins the mapping.
        arena = SharedArena()
        view = arena.publish(np.arange(32.0)).resolve()
        arena.close()
        assert shm_segments() == []
        assert float(view.sum()) == float(np.arange(32.0).sum())


class TestProcessFanOut:
    def test_workers_resolve_handles(self):
        arr = np.arange(1000.0)
        with SharedArena() as arena:
            handle = arena.publish(arr)
            got = ProcessExecutor(2).map(
                echo_handle, [(handle, s) for s in (1.0, 2.0, 0.5)]
            )
        expected = float(arr.sum())
        assert got == [expected, expected * 2.0, expected * 0.5]
        shutdown_pools()

    def test_worker_views_are_read_only(self):
        with SharedArena() as arena:
            handle = arena.publish(np.arange(64.0))
            flags = ProcessExecutor(2).map(resolve_flags, [handle, handle])
        assert flags == [(False, True), (False, True)]
        shutdown_pools()

    def test_workers_cannot_release_parent_arenas(self):
        arr = np.arange(512.0)
        with SharedArena() as arena:
            handle = arena.publish(arr)
            got = ProcessExecutor(2).map(release_then_read, [handle, handle])
            # The workers ran release_arenas() — the parent's segment
            # must still be alive and readable afterwards.
            assert shm_segments() != []
            assert handle.resolve().sum() == arr.sum()
        assert got == [float(arr.sum())] * 2
        assert shm_segments() == []
        shutdown_pools()

    def test_worker_crash_leaves_no_segments(self):
        from concurrent.futures.process import BrokenProcessPool  # replint: ignore[RL009] -- asserting the exception type, no fan-out

        shutdown_pools()
        with pytest.raises(BrokenProcessPool):
            with SharedArena() as arena:
                handle = arena.publish(np.arange(256.0))
                ProcessExecutor(2).map(crash_worker, [(handle, i) for i in range(4)])
        assert arena.closed
        assert shm_segments() == []
        shutdown_pools()


class TestArenaToggle:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(ARENA_ENV, raising=False)
        assert arena_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "NO", " Off "])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv(ARENA_ENV, value)
        assert arena_enabled() is False

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ARENA_ENV, "0")
        assert arena_enabled(True) is True
        monkeypatch.setenv(ARENA_ENV, "1")
        assert arena_enabled(False) is False


class TestSplitBatches:
    def test_flatten_reproduces_item_order(self):
        items = list(range(23))
        batches = split_batches(items, 4)
        assert [x for b in batches for x in b] == items

    def test_sizes_near_equal_larger_first(self):
        assert [len(b) for b in split_batches(range(10), 4)] == [3, 3, 2, 2]

    def test_fewer_items_than_batches(self):
        assert split_batches([1, 2], 5) == [[1], [2]]

    def test_empty_items(self):
        assert split_batches([], 3) == [[]]

    def test_single_batch(self):
        assert split_batches([1, 2, 3], 1) == [[1, 2, 3]]

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError, match="n_batches"):
            split_batches([1], 0)


class TestLeakHygiene:
    """No orphaned segments, no resource_tracker noise — full process."""

    def test_exit_without_close_is_clean(self):
        # A never-closed arena with live views must not survive the
        # process (atexit unlinks) nor spew resource_tracker/BufferError
        # warnings on stderr.
        code = textwrap.dedent(
            """
            import numpy as np
            from repro.parallel import ProcessExecutor, SharedArena
            from tests.parallel.test_arena import echo_handle

            arena = SharedArena()  # deliberately never closed
            handle = arena.publish(np.arange(512.0))
            view = handle.resolve()  # parent-side live view at exit
            got = ProcessExecutor(2).map(
                echo_handle, [(handle, 1.0), (handle, 2.0)]
            )
            assert got[1] == 2 * got[0]
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            cwd=os.getcwd(),
            env={**os.environ, "PYTHONPATH": f"src:{os.getcwd()}"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "Error" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr
        assert shm_segments() == []

    def test_worker_crash_subprocess_is_clean(self):
        code = textwrap.dedent(
            """
            import numpy as np
            from repro.parallel import ProcessExecutor, SharedArena
            from tests.parallel.test_arena import crash_worker

            try:
                with SharedArena() as arena:
                    handle = arena.publish(np.arange(64.0))
                    ProcessExecutor(2).map(crash_worker, [(handle, 0)])
            except Exception:
                pass
            assert arena.closed
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            cwd=os.getcwd(),
            env={**os.environ, "PYTHONPATH": f"src:{os.getcwd()}"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr
        assert shm_segments() == []
