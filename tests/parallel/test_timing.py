"""StageTimer / TimingReport: one monotonic clock, honest stage books."""

from __future__ import annotations

import time

import pytest

from repro.parallel import (
    MONOTONIC_CLOCK,
    SerialExecutor,
    StageTimer,
    StageTiming,
    ThreadExecutor,
    TimingReport,
)


class TestClock:
    def test_single_monotonic_source(self):
        # The satellite fix: every elapsed-time measurement in the repo
        # shares this source; wall clocks jump under NTP/suspend.
        assert MONOTONIC_CLOCK is time.perf_counter


class TestStageTimer:
    def test_context_manager_records_stage(self):
        timer = StageTimer()
        with timer.stage("fit", n_items=4, executor=ThreadExecutor(2)):
            pass
        report = timer.report()
        stage = report.stage("fit")
        assert stage.elapsed_s >= 0.0
        assert stage.n_items == 4
        assert (stage.parallel, stage.max_workers) == ("thread", 2)

    def test_stage_recorded_even_on_error(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("doomed"):
                raise RuntimeError("boom")
        assert timer.report().stage("doomed").elapsed_s >= 0.0

    def test_record_direct_and_order_preserved(self):
        timer = StageTimer()
        timer.record("a", 1.0, n_items=2, executor=SerialExecutor())
        timer.record("b", 3.0)
        report = timer.report()
        assert [s.stage for s in report.stages] == ["a", "b"]
        assert report.total_s == pytest.approx(4.0)
        assert report.stage("a").parallel == "serial"


class TestTimingReport:
    def _report(self, a=2.0, b=1.0):
        return TimingReport(
            stages=(
                StageTiming("acq", a, 10, "serial", 1),
                StageTiming("cv", b, 5, "thread", 4),
            )
        )

    def test_stage_lookup_and_missing(self):
        report = self._report()
        assert report.stage("cv").max_workers == 4
        with pytest.raises(KeyError):
            report.stage("nope")

    def test_speedup_over_baseline(self):
        serial = self._report(a=4.0)
        fast = self._report(a=1.0)
        assert fast.speedup_over(serial, "acq") == pytest.approx(4.0)

    def test_per_item_and_describe(self):
        stage = StageTiming("acq", 2.0, 10, "serial", 1)
        assert stage.per_item_s == pytest.approx(0.2)
        assert StageTiming("x", 1.0, 0).per_item_s == 0.0
        assert "thread×4" in self._report().stage("cv").describe()

    def test_summary_and_to_dict(self):
        report = self._report()
        text = report.summary()
        assert "acq" in text and "cv" in text and "total" in text
        payload = report.to_dict()
        assert payload["total_s"] == pytest.approx(3.0)
        assert [s["stage"] for s in payload["stages"]] == ["acq", "cv"]
        assert payload["stages"][1]["parallel"] == "thread"
