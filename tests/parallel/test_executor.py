"""The executor contract: deterministic ordering on every backend."""

from __future__ import annotations

import os
import time
from concurrent.futures.process import BrokenProcessPool  # replint: ignore[RL009] -- asserting the exception type, no fan-out

import pytest

from repro.parallel import (
    MAX_WORKERS_ENV,
    PARALLEL_ENV,
    PARALLEL_KINDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_max_workers,
    resolve_executor,
    shutdown_pools,
)
from repro.parallel.executor import _POOL_CACHE
from repro.seeding import derive_rng


def square(x):
    return x * x


def keyed_draw(i):
    """Per-item keyed RNG — the repository-wide determinism idiom."""
    return float(derive_rng(1234, "executor-test", i).random())


def slow_first(i):
    """Forces out-of-completion-order results on pool backends."""
    if i == 0:
        time.sleep(0.05)
    return i


def boom(i):
    if i == 2:
        raise ValueError("item 2 explodes")
    return i


def executors():
    return [SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)]


# ---------------------------------------------------------------------------
class TestOrderingContract:
    @pytest.mark.parametrize("executor", executors(), ids=lambda e: e.kind)
    def test_map_preserves_item_order(self, executor):
        assert executor.map(square, range(7)) == [0, 1, 4, 9, 16, 25, 36]

    @pytest.mark.parametrize(
        "executor", [ThreadExecutor(2), ProcessExecutor(2)], ids=lambda e: e.kind
    )
    def test_order_is_item_index_not_completion(self, executor):
        # Item 0 finishes last; results must still lead with it.
        assert executor.map(slow_first, range(4)) == [0, 1, 2, 3]

    def test_backends_bit_identical_on_keyed_rng(self):
        expected = [keyed_draw(i) for i in range(8)]
        for executor in executors():
            assert executor.map(keyed_draw, range(8)) == expected

    @pytest.mark.parametrize("executor", executors(), ids=lambda e: e.kind)
    def test_empty_map(self, executor):
        assert executor.map(square, []) == []


class TestOnResult:
    @pytest.mark.parametrize("executor", executors(), ids=lambda e: e.kind)
    def test_hook_sees_every_result_with_its_index(self, executor):
        seen = {}
        out = executor.map(square, range(5), on_result=seen.__setitem__)
        assert out == [0, 1, 4, 9, 16]
        assert seen == {0: 0, 1: 1, 2: 4, 3: 9, 4: 16}

    def test_serial_hook_fires_in_item_order(self):
        order = []
        SerialExecutor().map(
            square, range(4), on_result=lambda i, r: order.append(i)
        )
        assert order == [0, 1, 2, 3]

    def test_hook_runs_in_calling_process(self):
        # A closure over local state: only possible parent-side.
        collected = []
        ProcessExecutor(2).map(
            square, range(3), on_result=lambda i, r: collected.append((i, r))
        )
        assert sorted(collected) == [(0, 0), (1, 1), (2, 4)]


class TestErrors:
    @pytest.mark.parametrize("executor", executors(), ids=lambda e: e.kind)
    def test_worker_exception_propagates(self, executor):
        with pytest.raises(ValueError, match="item 2 explodes"):
            executor.map(boom, range(4))

    @pytest.mark.parametrize("executor", executors(), ids=lambda e: e.kind)
    def test_worker_exception_propagates_with_hook(self, executor):
        with pytest.raises(ValueError, match="item 2 explodes"):
            executor.map(boom, range(4), on_result=lambda i, r: None)

    def test_max_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadExecutor(0)


class TestPoolCache:
    def test_pools_are_cached_and_shut_down(self):
        shutdown_pools()
        ex = ThreadExecutor(2)
        ex.map(square, range(3))
        ex.map(square, range(3))
        assert ("thread", 2) in _POOL_CACHE
        assert len(_POOL_CACHE) == 1
        shutdown_pools()
        assert _POOL_CACHE == {}


def wedge(i):
    """A worker stuck in a long uninterruptible-looking call."""
    time.sleep(60)
    return i


class TestShutdownTimeout:
    def test_wedged_process_worker_is_terminated_within_timeout(self):
        shutdown_pools()
        ex = ProcessExecutor(2)
        ex.map(square, range(2))  # warm the pool
        pool = _POOL_CACHE[("process", 2)]
        pool.submit(wedge, 0)
        time.sleep(0.2)  # let the worker pick the task up
        start = time.perf_counter()
        shutdown_pools(join_timeout_s=0.5)
        elapsed = time.perf_counter() - start
        # Bounded: the 60 s sleeper is terminated, not waited out.
        assert elapsed < 5.0
        assert _POOL_CACHE == {}

    def test_fresh_pool_works_after_forced_shutdown(self):
        shutdown_pools()
        ex = ProcessExecutor(2)
        ex.map(square, range(2))
        _POOL_CACHE[("process", 2)].submit(wedge, 0)
        shutdown_pools(join_timeout_s=0.2)
        assert ProcessExecutor(2).map(square, range(3)) == [0, 1, 4]
        shutdown_pools()

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="join_timeout_s"):
            shutdown_pools(join_timeout_s=-1.0)


class TestResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_ENV, raising=False)
        assert resolve_executor().kind == "serial"

    def test_explicit_argument(self):
        ex = resolve_executor("thread", 3)
        assert (ex.kind, ex.max_workers) == ("thread", 3)
        assert ex.describe() == "thread×3"

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "process")
        monkeypatch.setenv(MAX_WORKERS_ENV, "5")
        ex = resolve_executor()
        assert (ex.kind, ex.max_workers) == ("process", 5)

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV, "process")
        assert resolve_executor("serial").kind == "serial"

    def test_kind_is_normalised(self):
        assert resolve_executor(" Thread ", 2).kind == "thread"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="parallel must be one of"):
            resolve_executor("gpu")
        assert set(PARALLEL_KINDS) == {"serial", "thread", "process"}

    def test_default_worker_count_floor(self, monkeypatch):
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        assert default_max_workers() >= 2
        ex = resolve_executor("thread")
        assert ex.max_workers == default_max_workers()

    def test_serial_ignores_worker_count(self):
        assert resolve_executor("serial", 8).max_workers == 1


class TestSmallTaskGuard:
    """n_items/min_items_per_worker degrade pools for tiny fan-outs."""

    def test_too_few_items_degrades_to_serial(self):
        ex = resolve_executor(
            "process", 8, n_items=10, min_items_per_worker=8
        )
        assert ex.kind == "serial"

    def test_worker_count_capped_by_items(self):
        ex = resolve_executor(
            "thread", 8, n_items=40, min_items_per_worker=16
        )
        assert (ex.kind, ex.max_workers) == ("thread", 2)

    def test_large_fanout_keeps_requested_workers(self):
        ex = resolve_executor(
            "thread", 4, n_items=1000, min_items_per_worker=16
        )
        assert (ex.kind, ex.max_workers) == ("thread", 4)

    def test_guard_inert_without_n_items(self):
        ex = resolve_executor("thread", 4, min_items_per_worker=16)
        assert (ex.kind, ex.max_workers) == ("thread", 4)

    def test_guard_applies_to_environment_backends(self, monkeypatch):
        # The whole point: a global REPRO_PARALLEL=process must not
        # dispatch microsecond fold fits to a pool.
        monkeypatch.setenv(PARALLEL_ENV, "process")
        monkeypatch.setenv(MAX_WORKERS_ENV, "8")
        ex = resolve_executor(n_items=10, min_items_per_worker=8)
        assert ex.kind == "serial"

    def test_zero_items_degrades_to_serial(self):
        assert resolve_executor("thread", 4, n_items=0).kind == "serial"

    def test_invalid_min_items_rejected(self):
        with pytest.raises(ValueError, match="min_items_per_worker"):
            resolve_executor("thread", 4, n_items=8, min_items_per_worker=0)


class TestMaxWorkersEnvValidation:
    """Invalid REPRO_MAX_WORKERS fails loudly, naming the variable."""

    @pytest.mark.parametrize("value", ["four", "2.5", "1e2", "2 workers"])
    def test_non_integer_rejected(self, monkeypatch, value):
        monkeypatch.setenv(MAX_WORKERS_ENV, value)
        with pytest.raises(ValueError, match=MAX_WORKERS_ENV):
            resolve_executor("thread")

    @pytest.mark.parametrize("value", ["0", "-1", "-8"])
    def test_non_positive_rejected(self, monkeypatch, value):
        monkeypatch.setenv(MAX_WORKERS_ENV, value)
        with pytest.raises(ValueError, match=MAX_WORKERS_ENV):
            resolve_executor("thread")

    def test_error_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "lots")
        with pytest.raises(ValueError) as excinfo:
            resolve_executor("process")
        assert MAX_WORKERS_ENV in str(excinfo.value)
        assert "'lots'" in str(excinfo.value)

    def test_blank_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "  ")
        assert resolve_executor("thread").max_workers == default_max_workers()

    def test_whitespace_padded_integer_accepted(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, " 3 ")
        assert resolve_executor("thread", None).max_workers == 3

    def test_explicit_argument_bypasses_env(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "junk")
        assert resolve_executor("thread", 2).max_workers == 2


def crash(i):
    """Kill the worker process outright — no exception, no cleanup."""
    os._exit(1)


class TestBrokenPoolRecovery:
    """A cached pool whose workers died is evicted and retried once."""

    def test_poisoned_cached_pool_recovers_transparently(self):
        shutdown_pools()
        ex = ProcessExecutor(2)
        assert ex.map(square, range(3)) == [0, 1, 4]
        first = _POOL_CACHE[("process", 2)]
        # Kill the pool's workers between fan-outs: the cached pool is
        # now broken, exactly the staleness the retry path exists for.
        first.submit(os._exit, 1)
        time.sleep(0.3)
        assert ex.map(square, range(4)) == [0, 1, 4, 9]
        assert _POOL_CACHE[("process", 2)] is not first
        shutdown_pools()

    def test_crash_during_map_raises_after_one_retry(self):
        shutdown_pools()
        ex = ProcessExecutor(2)
        with pytest.raises(BrokenProcessPool):
            ex.map(crash, range(4))
        # The broken pool did not stay cached...
        assert ("process", 2) not in _POOL_CACHE
        # ...and the executor still works on the next call.
        assert ex.map(square, range(3)) == [0, 1, 4]
        shutdown_pools()


def nested_resolution(i):
    """What a pool worker sees when it resolves a process backend."""
    inner = resolve_executor("process", 4)
    return type(inner).__name__


def nested_map(i):
    """A worker whose own task fans out — the experiment-runner shape.

    Before the fork-hygiene rules this deadlocked: the worker inherited
    the parent's cached pool object (minus its manager threads) and a
    nested ``map`` submitted into it never returned.
    """
    inner = resolve_executor("process", 2, n_items=64, min_items_per_worker=16)
    return inner.map(square, range(8))


class TestNestedFanOut:
    """Fork hygiene: pool workers never submit to inherited pools.

    ``os.register_at_fork`` drops the inherited ``_POOL_CACHE`` in
    every forked child and flags it as a worker, so a nested process
    backend resolves to serial — bit-identical by contract — instead
    of deadlocking on the parent's pool or forking grandchildren.
    """

    def test_process_degrades_to_serial_inside_workers(self):
        ex = ProcessExecutor(2)
        assert ex.map(nested_resolution, range(2)) == [
            "SerialExecutor",
            "SerialExecutor",
        ]
        # The parent is not a forked child: same resolution stays a
        # process backend here.
        assert type(resolve_executor("process", 4)).__name__ == "ProcessExecutor"

    def test_nested_map_completes_and_is_bit_identical(self):
        ex = ProcessExecutor(2)
        expected = [square(i) for i in range(8)]
        assert ex.map(nested_map, range(3)) == [expected] * 3
