"""The persistence audit gate: fail-verdict models must not ship
silently."""

import numpy as np
import pytest

from repro.audit import AuditGateError, audit_model
from repro.core.model import FittedPowerModel
from repro.core.persistence import load_model, save_model
from repro.stats.ols import fit_ols


def _model(perfect: bool) -> FittedPowerModel:
    """A counterless Equation 1 model (structural terms only), either
    honestly noisy or suspiciously exact."""
    from repro.core.features import feature_names

    rng = np.random.default_rng(0)
    x = rng.uniform(1.0, 10.0, size=(40, 3))
    noise = np.zeros(40) if perfect else rng.normal(size=40)
    y = x @ np.array([2.0, 3.0, 1.0]) + noise
    ols = fit_ols(
        y,
        x,
        intercept=False,
        cov_type="HC3",
        exog_names=feature_names(()),
    )
    return FittedPowerModel(counters=(), ols=ols, cov_type="HC3")


class TestStrictGate:
    def test_perfect_fit_audits_fail(self):
        assert audit_model(_model(perfect=True)).verdict == "fail"

    def test_strict_mode_refuses_fail_verdict(self, tmp_path):
        path = tmp_path / "model.json"
        with pytest.raises(AuditGateError, match="AU009"):
            save_model(_model(perfect=True), path, gate="strict")
        assert not path.exists()  # nothing may hit disk

    def test_strict_mode_saves_a_sound_model(self, tmp_path):
        path = tmp_path / "model.json"
        save_model(_model(perfect=False), path, gate="strict")
        assert path.exists()

    def test_warn_mode_warns_but_writes(self, tmp_path):
        path = tmp_path / "model.json"
        with pytest.warns(UserWarning, match="fail-verdict"):
            save_model(_model(perfect=True), path, gate="warn")
        assert path.exists()

    def test_off_mode_is_silent(self, tmp_path, recwarn):
        path = tmp_path / "model.json"
        save_model(_model(perfect=True), path, gate="off")
        assert path.exists()
        assert len(recwarn) == 0

    def test_unknown_gate_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="gate must be one of"):
            save_model(_model(perfect=False), tmp_path / "m.json", gate="no")

    def test_precomputed_audit_is_honoured(self, tmp_path):
        model = _model(perfect=True)
        report = audit_model(model)
        with pytest.raises(AuditGateError):
            save_model(
                model, tmp_path / "m.json", audit=report, gate="strict"
            )

    def test_restored_fail_model_still_audits_fail(self, tmp_path):
        """The verdict survives the round trip: a fail model forced to
        disk (off gate) is still flagged when re-audited after load."""
        path = tmp_path / "model.json"
        save_model(_model(perfect=True), path, gate="off")
        restored = load_model(path)
        assert audit_model(restored).verdict == "fail"
