"""Context builders, end-to-end wiring and the reference audit."""

import json

import numpy as np

from repro.audit import (
    AuditConfig,
    audit_model,
    audit_reference,
    model_context,
    run_audit,
    scenario_context,
    workflow_contexts,
)
from repro.audit.cli import _render
from repro.core.model import PowerModel
from repro.core.workflow import run_workflow


class TestModelContext:
    def test_context_from_fitted_model(self, small_dataset):
        counters = small_dataset.counter_names[:2]
        model = PowerModel(counters).fit(small_dataset)
        ctx = model_context(model, small_dataset)
        assert ctx.kind == "model"
        assert ctx.cov_type == "HC3"
        assert ctx.exog is not None
        assert ctx.exog.shape[0] == small_dataset.n_samples
        assert ctx.n_params == len(counters) + 3  # alphas + β, γ, δ
        assert ctx.mape_pct is not None

    def test_audit_model_on_paper_data_passes(self, small_dataset):
        counters = small_dataset.counter_names[:1]
        model = PowerModel(counters).fit(small_dataset)
        report = audit_model(model, small_dataset)
        assert report.verdict == "pass"

    def test_small_sample_model_is_graded_minor(self, small_dataset):
        # Two counters on 48 rows sits just under 10 obs/param: the
        # audit grades it, it does not block it.
        model = PowerModel(small_dataset.counter_names[:2]).fit(
            small_dataset
        )
        report = audit_model(model, small_dataset)
        assert report.verdict == "minor"
        assert {f.rule_id for f in report.findings} == {"AU004"}
        assert report.gate_passed()


class TestWorkflowWiring:
    def test_workflow_attaches_audit(self, small_dataset):
        result = run_workflow(
            dataset=small_dataset, n_events=1, frequencies_mhz=(1200, 2400)
        )
        assert result.audit is not None
        # 10-fold CV on 48 rows holds out 4 per fold — an honest minor.
        assert result.audit.verdict in ("pass", "minor")
        assert result.audit.gate_passed()
        assert "model" in result.audit.artifacts
        assert "selection" in result.audit.artifacts
        assert "validation:cv" in result.audit.artifacts
        assert "audit verdict:" in result.summary()

    def test_workflow_audit_opt_out(self, small_dataset):
        result = run_workflow(
            dataset=small_dataset,
            n_events=2,
            frequencies_mhz=(1200, 2400),
            audit=False,
        )
        assert result.audit is None

    def test_workflow_contexts_carry_warnings(self, small_dataset):
        result = run_workflow(
            dataset=small_dataset,
            n_events=2,
            frequencies_mhz=(1200, 2400),
            audit=False,
        )
        object.__setattr__(result, "warnings", ("degraded: something",))
        contexts = workflow_contexts(result)
        assert any(c.kind == "workflow" for c in contexts)
        report = run_audit(contexts)
        assert any(f.rule_id == "AU010" for f in report.findings)


class TestScenarioContext:
    def test_cv_scenario_carries_fold_shape(self, small_dataset):
        from repro.core.scenarios import scenario_cv_all

        counters = small_dataset.counter_names[:2]
        res = scenario_cv_all(small_dataset, counters, n_splits=5)
        ctx = scenario_context(res, n_params=5)
        assert ctx.n_splits == 5
        assert ctx.n_samples == small_dataset.n_samples
        assert len(ctx.fold_mapes) == 5


class TestReferenceAudit:
    def test_reference_workflows_audit_pass(
        self, full_dataset, selected_counters
    ):
        """The acceptance gate of the issue: `repraudit` over the four
        paper-reference workflows yields verdict pass."""
        report = audit_reference(
            dataset=full_dataset, counters=selected_counters
        )
        assert report.verdict == "pass"
        assert report.gate_passed(strict=True)
        # model + the four Fig. 4 scenarios
        assert len(report.artifacts) == 5
        assert set(report.rules_run) == {
            f"AU{i:03d}" for i in range(1, 14)
        }


class TestGoldenReport:
    """The JSON report shape is pinned: downstream CI consumers parse it."""

    @staticmethod
    def _deterministic_report():
        from repro.audit import AuditContext

        contexts = [
            AuditContext(artifact="model", r2=1.0),
            AuditContext(artifact="cv", kind="cv", n_samples=30,
                         n_splits=10, n_params=2),
            AuditContext(artifact="scenario:x", r2=0.97, mape_pct=35.0),
        ]
        return run_audit(contexts, AuditConfig())

    def test_json_report_matches_golden(self, pytestconfig):
        golden_path = (
            pytestconfig.rootpath / "tests" / "audit" / "golden_audit.json"
        )
        rendered = _render(self._deterministic_report(), "json")
        assert json.loads(rendered) == json.loads(golden_path.read_text())

    def test_text_report_shape(self):
        text = _render(self._deterministic_report(), "text")
        assert "repraudit:" in text
        assert text.strip().endswith("verdict: fail")

    def test_clean_text_report_shape(self):
        report = run_audit(
            [model_context_clean()], AuditConfig()
        )
        text = _render(report, "text")
        assert "repraudit: clean (1 artifacts)" in text
        assert text.strip().endswith("verdict: pass")


def model_context_clean():
    from repro.audit import AuditContext

    return AuditContext(artifact="model", r2=0.95, mape_pct=6.0)
