"""Adversarial fixtures: each one trips exactly its intended rule.

Every fixture is built to violate one methodological condition while
staying innocuous under every other rule, so the assertions can demand
``ruleset == {intended}`` — a rule that over-fires breaks another
rule's test, and a rule that under-fires breaks its own.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.audit import AuditConfig, AuditContext, run_audit
from repro.stats.ols import fit_ols


def rule_ids(report):
    return {f.rule_id for f in report.findings}


def audit_one(ctx, **config_kwargs):
    return run_audit([ctx], AuditConfig(**config_kwargs))


# ---------------------------------------------------------------------------
# the clean twin: a well-behaved fit trips nothing


class TestCleanFit:
    def test_clean_fit_audits_pass(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(1.0, 10.0, size=(200, 3))
        y = 5.0 + x @ np.array([2.0, -1.0, 0.5]) + rng.normal(size=200)
        ols = fit_ols(y, x, cov_type="HC3")
        ctx = AuditContext(
            artifact="model",
            ols=ols,
            exog=x,
            cov_type="HC3",
            r2=ols.rsquared,
            mape_pct=3.0,
            n_samples=200,
            n_params=4,
        )
        report = audit_one(ctx)
        assert report.findings == ()
        assert report.verdict == "pass"
        assert report.gate_passed(strict=True)
        assert report.artifacts == ("model",)


# ---------------------------------------------------------------------------
# one fixture per rule


class TestAU001ResidualNormality:
    def test_skewed_small_sample_trips(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(1.0, 10.0, size=(25, 1))
        # Lognormal errors: heavily right-skewed, far from normal.
        y = 2.0 + 3.0 * x[:, 0] + np.exp(rng.normal(size=25) * 1.5)
        ols = fit_ols(y, x, cov_type="HC3")
        report = audit_one(AuditContext(artifact="model", ols=ols))
        assert rule_ids(report) == {"AU001"}
        assert report.verdict == "minor"

    def test_large_sample_is_exempt(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(1.0, 10.0, size=(500, 1))
        y = 2.0 + 3.0 * x[:, 0] + np.exp(rng.normal(size=500) * 1.5)
        ols = fit_ols(y, x, cov_type="HC3")
        report = audit_one(AuditContext(artifact="model", ols=ols))
        assert "AU001" not in rule_ids(report)

    def test_restored_model_without_residuals_is_silent(self):
        ols = SimpleNamespace(
            residuals=np.array([]),
            bse=np.array([1.0, 2.0]),
            params=np.array([1.0, 2.0]),
            rsquared=0.9,
            nobs=100,
        )
        report = audit_one(AuditContext(artifact="model", ols=ols))
        assert "AU001" not in rule_ids(report)


class TestAU002HeteroscedasticityCovMismatch:
    @staticmethod
    def _heteroscedastic_fit(cov_type):
        rng = np.random.default_rng(11)
        x = rng.uniform(1.0, 10.0, size=(300, 2))
        y = (
            5.0
            + 2.0 * x[:, 0]
            - x[:, 1]
            + rng.normal(size=300) * x[:, 0] ** 2
        )
        return fit_ols(y, x, cov_type=cov_type), x

    def test_nonrobust_cov_on_heteroscedastic_fit_trips(self):
        ols, x = self._heteroscedastic_fit("nonrobust")
        ctx = AuditContext(
            artifact="model", ols=ols, exog=x, cov_type="nonrobust"
        )
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU002"}
        assert report.verdict == "major"

    def test_hc3_prices_the_heteroscedasticity_in(self):
        ols, x = self._heteroscedastic_fit("HC3")
        ctx = AuditContext(artifact="model", ols=ols, exog=x, cov_type="HC3")
        assert "AU002" not in rule_ids(audit_one(ctx))


class TestAU003FoldAdequacy:
    def test_three_fold_cv_on_twelve_rows_trips(self):
        ctx = AuditContext(
            artifact="cv", kind="cv", n_samples=12, n_splits=3, n_params=4
        )
        # 12 rows for 4 parameters also (correctly) trips the
        # obs-per-param rule; the fold rule must be the major one.
        report = audit_one(ctx)
        assert "AU003" in rule_ids(report)
        assert rule_ids(report) <= {"AU003", "AU004"}
        au003 = [f.severity for f in report.findings if f.rule_id == "AU003"]
        assert "major" in au003  # underdetermined training folds
        assert report.verdict == "major"

    def test_small_held_out_folds_rate_minor(self):
        ctx = AuditContext(
            artifact="cv", kind="cv", n_samples=36, n_splits=12, n_params=2
        )
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU003"}
        assert report.verdict == "minor"

    def test_paper_scale_cv_is_silent(self):
        ctx = AuditContext(
            artifact="cv", kind="cv", n_samples=645, n_splits=10, n_params=10
        )
        assert audit_one(ctx).findings == ()


class TestAU004ObsPerParam:
    def test_two_obs_per_param_rates_major(self):
        ctx = AuditContext(artifact="model", n_samples=10, n_params=5)
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU004"}
        assert report.verdict == "major"

    def test_five_obs_per_param_rates_minor(self):
        ctx = AuditContext(artifact="model", n_samples=25, n_params=5)
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU004"}
        assert report.verdict == "minor"

    def test_ample_sample_is_silent(self):
        ctx = AuditContext(artifact="model", n_samples=500, n_params=5)
        assert audit_one(ctx).findings == ()


class TestAU005Leverage:
    def test_pinned_row_trips_major(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(50, 2))
        x[0] = [500.0, -500.0]  # one row dominates the design
        report = audit_one(AuditContext(artifact="model", exog=x))
        assert rule_ids(report) == {"AU005"}
        assert report.verdict == "major"

    def test_balanced_design_is_silent(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(50, 2))
        assert audit_one(AuditContext(artifact="model", exog=x)).findings == ()


class TestAU006VifEscalation:
    @staticmethod
    def _selection(final_vif):
        return SimpleNamespace(
            steps=(
                SimpleNamespace(mean_vif=float("nan")),
                SimpleNamespace(mean_vif=final_vif),
            )
        )

    def test_exact_collinearity_rates_fail(self):
        ctx = AuditContext(
            artifact="selection", selection=self._selection(float("inf"))
        )
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU006"}
        assert report.verdict == "fail"

    def test_threshold_breach_rates_major(self):
        ctx = AuditContext(
            artifact="selection", selection=self._selection(42.0)
        )
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU006"}
        assert report.verdict == "major"

    def test_stable_selection_is_silent(self):
        ctx = AuditContext(
            artifact="selection", selection=self._selection(4.2)
        )
        assert audit_one(ctx).findings == ()


class TestAU007MissingCI:
    def test_declared_bare_points_trip(self):
        ctx = AuditContext(artifact="report", has_ci=False)
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU007"}
        assert report.verdict == "major"

    def test_all_zero_standard_errors_trip(self):
        ols = SimpleNamespace(
            residuals=np.array([]),
            params=np.array([1.0, 2.0]),
            bse=np.zeros(2),
            rsquared=0.9,
            nobs=100,
        )
        report = audit_one(AuditContext(artifact="model", ols=ols))
        assert rule_ids(report) == {"AU007"}

    def test_usable_errors_are_silent(self):
        ols = SimpleNamespace(
            residuals=np.array([]),
            params=np.array([1.0, 2.0]),
            bse=np.array([0.1, 0.2]),
            rsquared=0.9,
            nobs=100,
        )
        assert audit_one(AuditContext(artifact="model", ols=ols)).findings == ()


class TestAU008R2MapeDisagreement:
    def test_high_r2_high_mape_trips(self):
        ctx = AuditContext(artifact="scenario:x", r2=0.97, mape_pct=35.0)
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU008"}
        assert report.verdict == "minor"

    def test_low_mape_low_r2_trips(self):
        ctx = AuditContext(artifact="scenario:x", r2=0.1, mape_pct=2.0)
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU008"}

    def test_consistent_metrics_are_silent(self):
        ctx = AuditContext(artifact="scenario:x", r2=0.95, mape_pct=6.0)
        assert audit_one(ctx).findings == ()

    def test_scenario1_profile_is_tolerated(self):
        # The paper's scenario 1 (4 random training workloads) yields
        # a negative pooled R² with ~15% MAPE; neither disagreement
        # direction may flag it.
        ctx = AuditContext(artifact="scenario:1", r2=-0.7, mape_pct=14.9)
        assert audit_one(ctx).findings == ()


class TestAU009SuspiciousPerfection:
    def test_machine_precision_r2_rates_fail(self):
        ctx = AuditContext(artifact="model", r2=1.0)
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU009"}
        assert report.verdict == "fail"

    def test_out_of_range_r2_rates_fail(self):
        ctx = AuditContext(artifact="model", r2=1.3)
        assert audit_one(ctx).verdict == "fail"

    def test_suspiciously_high_r2_rates_major(self):
        ctx = AuditContext(artifact="model", r2=0.9995)
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU009"}
        assert report.verdict == "major"

    def test_non_finite_params_rate_fail(self):
        ols = SimpleNamespace(
            residuals=np.array([]),
            params=np.array([np.nan, 2.0]),
            bse=np.array([0.1, 0.2]),
            rsquared=0.9,
            nobs=100,
        )
        report = audit_one(AuditContext(artifact="model", ols=ols))
        assert "AU009" in rule_ids(report)
        assert report.verdict == "fail"

    def test_paper_r2_is_silent(self):
        ctx = AuditContext(artifact="model", r2=0.954)
        assert audit_one(ctx).findings == ()


class TestAU010DegradedProvenance:
    def test_quarantined_cells_rate_major(self):
        campaign = SimpleNamespace(
            quarantined=(("cell", "why"),),
            dropped_counters=(),
            degraded_phases=0,
            retries=0,
            merge_issues=(),
        )
        report = audit_one(AuditContext(artifact="campaign", campaign=campaign))
        assert rule_ids(report) == {"AU010"}
        assert report.verdict == "major"

    def test_recovered_faults_rate_minor(self):
        campaign = SimpleNamespace(
            quarantined=(),
            dropped_counters=(),
            degraded_phases=0,
            retries=3,
            merge_issues=("phase mismatch",),
        )
        report = audit_one(AuditContext(artifact="campaign", campaign=campaign))
        assert rule_ids(report) == {"AU010"}
        assert report.verdict == "minor"

    def test_workflow_warnings_rate_minor(self):
        ctx = AuditContext(
            artifact="workflow",
            kind="workflow",
            warnings=("clamping cross-validation to 8 folds",),
        )
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU010"}
        assert report.verdict == "minor"

    def test_drift_rates_major(self):
        drift = SimpleNamespace(
            breaker_open=True,
            drift_detected=True,
            drift_fraction=0.6,
            degraded_fraction=0.8,
        )
        report = audit_one(AuditContext(artifact="drift", drift=drift))
        assert rule_ids(report) == {"AU010"}
        assert report.verdict == "major"

    def test_baseline_heavy_session_rates_minor(self):
        drift = SimpleNamespace(
            breaker_open=False,
            drift_detected=False,
            drift_fraction=0.0,
            degraded_fraction=0.4,
        )
        report = audit_one(AuditContext(artifact="drift", drift=drift))
        assert rule_ids(report) == {"AU010"}
        assert report.verdict == "minor"

    def test_clean_campaign_is_silent(self):
        campaign = SimpleNamespace(
            quarantined=(),
            dropped_counters=(),
            degraded_phases=0,
            retries=0,
            merge_issues=(),
        )
        ctx = AuditContext(artifact="campaign", campaign=campaign)
        assert audit_one(ctx).findings == ()


class TestAU011FastfitFallbackRate:
    WARNING = "fastfit: {}/{} fold(s) fell back to the exact fit path"

    def test_majority_decline_trips(self):
        ctx = AuditContext(
            artifact="workflow",
            kind="workflow",
            warnings=(self.WARNING.format(7, 10),),
        )
        report = audit_one(ctx, disable={"AU010"})
        assert rule_ids(report) == {"AU011"}
        assert report.verdict == "minor"

    def test_occasional_decline_is_silent(self):
        ctx = AuditContext(
            artifact="workflow",
            kind="workflow",
            warnings=(self.WARNING.format(2, 10),),
        )
        assert rule_ids(audit_one(ctx, disable={"AU010"})) == set()

    def test_fastfit_note_is_not_double_counted_as_provenance(self):
        # AU010 must leave the fastfit note to AU011.
        ctx = AuditContext(
            artifact="workflow",
            kind="workflow",
            warnings=(self.WARNING.format(7, 10),),
        )
        assert rule_ids(audit_one(ctx)) == {"AU011"}


# ---------------------------------------------------------------------------
# configuration knobs


class TestConfig:
    def test_disable_silences_a_rule(self):
        ctx = AuditContext(artifact="model", r2=1.0)
        assert audit_one(ctx, disable={"AU009"}).findings == ()

    def test_enable_restricts_to_listed_rules(self):
        ctx = AuditContext(
            artifact="model", r2=1.0, n_samples=10, n_params=5
        )
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU004", "AU009"}
        restricted = run_audit([ctx], AuditConfig(enable={"AU004"}))
        assert rule_ids(restricted) == {"AU004"}

    def test_thresholds_are_configurable(self):
        ctx = AuditContext(artifact="model", r2=0.998)
        assert audit_one(ctx).findings == ()
        tightened = audit_one(ctx, r2_suspicious=0.99)
        assert rule_ids(tightened) == {"AU009"}

    def test_pyproject_persistence_mode_validated(self, tmp_path):
        bad = tmp_path / "pyproject.toml"
        bad.write_text(
            "[tool.repro.audit]\npersistence-mode = \"paranoid\"\n"
        )
        with pytest.raises(ValueError, match="persistence-mode"):
            AuditConfig.from_pyproject(bad)

    def test_pyproject_round_trip(self, tmp_path):
        toml = tmp_path / "pyproject.toml"
        toml.write_text(
            "[tool.repro.audit]\n"
            "disable = [\"au001\"]\n"
            "r2-suspicious = 0.99\n"
            "persistence-mode = \"strict\"\n"
        )
        cfg = AuditConfig.from_pyproject(toml)
        assert cfg.disable == {"AU001"}
        assert cfg.r2_suspicious == 0.99
        assert cfg.persistence_mode == "strict"
        assert not cfg.rule_enabled("AU001")
        assert cfg.rule_enabled("AU009")


class TestAU012ExcessiveReassignment:
    """Scheduled-campaign disruption grading.  Fixtures keep the base
    campaign fields clean so AU010 stays silent and the assertions can
    demand exactly {"AU012"}."""

    @staticmethod
    def _campaign(**scheduling):
        defaults = dict(
            total_cells=20,
            completed_cells=20,
            reassignments=0,
            reassigned_cells=0,
            disrupted_cells=0,
            quarantined={},
        )
        defaults.update(scheduling)
        return SimpleNamespace(
            quarantined=(),
            dropped_counters=(),
            degraded_phases=0,
            retries=0,
            merge_issues=(),
            scheduling=SimpleNamespace(**defaults),
        )

    def test_heavy_disruption_rates_major(self):
        campaign = self._campaign(
            reassignments=11, reassigned_cells=6, disrupted_cells=6
        )
        report = audit_one(
            AuditContext(artifact="campaign", campaign=campaign)
        )
        assert rule_ids(report) == {"AU012"}
        assert report.verdict == "major"

    def test_moderate_disruption_rates_minor(self):
        campaign = self._campaign(
            reassignments=3, reassigned_cells=3, disrupted_cells=3
        )
        report = audit_one(
            AuditContext(artifact="campaign", campaign=campaign)
        )
        assert rule_ids(report) == {"AU012"}
        assert report.verdict == "minor"

    def test_light_disruption_is_silent(self):
        campaign = self._campaign(
            reassignments=2, reassigned_cells=1, disrupted_cells=1
        )
        ctx = AuditContext(artifact="campaign", campaign=campaign)
        assert audit_one(ctx).findings == ()

    def test_zero_completions_fails(self):
        campaign = self._campaign(
            completed_cells=0,
            disrupted_cells=20,
            quarantined={i: "no live nodes remaining" for i in range(20)},
        )
        report = audit_one(
            AuditContext(artifact="campaign", campaign=campaign)
        )
        assert rule_ids(report) == {"AU012"}
        assert report.verdict == "fail"

    def test_unscheduled_campaign_is_silent(self):
        campaign = SimpleNamespace(
            quarantined=(),
            dropped_counters=(),
            degraded_phases=0,
            retries=0,
            merge_issues=(),
        )
        ctx = AuditContext(artifact="campaign", campaign=campaign)
        assert audit_one(ctx).findings == ()

    def test_thresholds_configurable(self):
        campaign = self._campaign(
            reassignments=2, reassigned_cells=1, disrupted_cells=1
        )
        ctx = AuditContext(artifact="campaign", campaign=campaign)
        tightened = audit_one(ctx, reassign_minor_fraction=0.01)
        assert rule_ids(tightened) == {"AU012"}
        assert tightened.verdict == "minor"

    def test_pyproject_thresholds(self, tmp_path):
        toml = tmp_path / "pyproject.toml"
        toml.write_text(
            "[tool.repro.audit]\n"
            "reassign-minor-fraction = 0.02\n"
            "reassign-major-fraction = 0.04\n"
        )
        cfg = AuditConfig.from_pyproject(toml)
        assert cfg.reassign_minor_fraction == 0.02
        assert cfg.reassign_major_fraction == 0.04


# ---------------------------------------------------------------------------
class TestAU013FleetDegradation:
    """Fleet-service health grading over a ``FleetReport``-shaped
    roll-up.  Health counts alone drive the rule, so a bare namespace
    stands in for the real report."""

    @staticmethod
    def _fleet(n_nodes=100, healthy=100, degraded=0, quarantined=0):
        return SimpleNamespace(
            n_nodes=n_nodes,
            healthy_nodes=healthy,
            degraded_nodes=degraded,
            quarantined_nodes=quarantined,
        )

    def test_healthy_fleet_is_silent(self):
        ctx = AuditContext(artifact="fleet", kind="fleet", fleet=self._fleet())
        report = audit_one(ctx)
        assert report.findings == ()
        assert report.verdict == "pass"

    def test_moderate_degradation_rates_minor(self):
        fleet = self._fleet(healthy=92, degraded=5, quarantined=3)
        ctx = AuditContext(artifact="fleet", kind="fleet", fleet=fleet)
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU013"}
        assert report.verdict == "minor"

    def test_heavy_degradation_rates_major(self):
        fleet = self._fleet(healthy=70, degraded=20, quarantined=10)
        ctx = AuditContext(artifact="fleet", kind="fleet", fleet=fleet)
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU013"}
        assert report.verdict == "major"

    def test_no_healthy_node_fails(self):
        fleet = self._fleet(healthy=0, degraded=60, quarantined=40)
        ctx = AuditContext(artifact="fleet", kind="fleet", fleet=fleet)
        report = audit_one(ctx)
        assert rule_ids(report) == {"AU013"}
        assert report.verdict == "fail"

    def test_fraction_at_threshold_is_silent(self):
        # Exactly 5% degraded: the minor grade requires *exceeding*
        # the threshold.
        fleet = self._fleet(healthy=95, degraded=5, quarantined=0)
        ctx = AuditContext(artifact="fleet", kind="fleet", fleet=fleet)
        assert audit_one(ctx).findings == ()

    def test_empty_fleet_is_silent(self):
        fleet = self._fleet(n_nodes=0, healthy=0)
        ctx = AuditContext(artifact="fleet", kind="fleet", fleet=fleet)
        assert audit_one(ctx).findings == ()

    def test_thresholds_configurable(self):
        fleet = self._fleet(healthy=98, degraded=2, quarantined=0)
        ctx = AuditContext(artifact="fleet", kind="fleet", fleet=fleet)
        assert audit_one(ctx).findings == ()
        tightened = audit_one(ctx, fleet_degraded_minor_fraction=0.01)
        assert rule_ids(tightened) == {"AU013"}
        assert tightened.verdict == "minor"

    def test_pyproject_thresholds(self, tmp_path):
        toml = tmp_path / "pyproject.toml"
        toml.write_text(
            "[tool.repro.audit]\n"
            "fleet-degraded-minor-fraction = 0.02\n"
            "fleet-degraded-major-fraction = 0.5\n"
        )
        cfg = AuditConfig.from_pyproject(toml)
        assert cfg.fleet_degraded_minor_fraction == 0.02
        assert cfg.fleet_degraded_major_fraction == 0.5
