"""``repraudit`` CLI: exit codes, reporters, model-file auditing."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.audit.cli import main
from repro.core.model import FittedPowerModel
from repro.core.persistence import save_model
from repro.reporting import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE
from repro.stats.ols import fit_ols

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _saved_model(path: Path, *, perfect: bool) -> Path:
    from repro.core.features import feature_names

    rng = np.random.default_rng(3)
    x = rng.uniform(1.0, 10.0, size=(60, 3))
    # σ=5 keeps R² an honest ~0.8 — well clear of the AU009
    # suspicious-perfection bound.
    noise = np.zeros(60) if perfect else 5.0 * rng.normal(size=60)
    y = x @ np.array([2.0, 3.0, 1.0]) + noise
    ols = fit_ols(
        y, x, intercept=False, cov_type="HC3", exog_names=feature_names(())
    )
    model = FittedPowerModel(counters=(), ols=ols, cov_type="HC3")
    save_model(model, path, gate="off")
    return path


@pytest.fixture
def sound_model(tmp_path):
    return _saved_model(tmp_path / "sound.json", perfect=False)


@pytest.fixture
def fail_model(tmp_path):
    return _saved_model(tmp_path / "fail.json", perfect=True)


class TestExitCodes:
    def test_sound_model_exits_clean(self, sound_model, capsys):
        assert main([str(sound_model)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "verdict: pass" in out

    def test_fail_model_exits_findings(self, fail_model, capsys):
        assert main([str(fail_model)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "AU009" in out
        assert "verdict: fail" in out

    def test_missing_file_exits_usage(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == EXIT_USAGE
        assert "repraudit: error:" in capsys.readouterr().err

    def test_corrupt_file_exits_usage(self, tmp_path, capsys):
        bad = tmp_path / "corrupt.json"
        bad.write_text("{not json")
        assert main([str(bad)]) == EXIT_USAGE
        assert "repraudit: error:" in capsys.readouterr().err


class TestReporters:
    def test_json_report_parses(self, fail_model, capsys):
        main([str(fail_model), "-f", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "fail"
        assert payload["artifacts_checked"] == 1
        assert payload["artifacts"] == [fail_model.name]
        assert any(f["rule"] == "AU009" for f in payload["findings"])

    def test_output_file_written(self, sound_model, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        main([str(sound_model), "-f", "json", "--output", str(out_file)])
        on_disk = json.loads(out_file.read_text())
        assert on_disk == json.loads(capsys.readouterr().out)

    def test_artifact_name_is_file_name(self, sound_model, capsys):
        main([str(sound_model)])
        # clean report: artifact named after the file, not a raw path
        assert "1 artifacts" in capsys.readouterr().out


class TestRuleSelection:
    def test_disable_suppresses_rule(self, fail_model, capsys):
        # AU009 is the only fail on this model; with it off the audit
        # can at worst grade minor/major.
        code = main([str(fail_model), "--disable", "AU009"])
        out = capsys.readouterr().out
        assert "AU009" not in out
        assert code in (EXIT_CLEAN, EXIT_FINDINGS)

    def test_select_runs_exclusively(self, fail_model, capsys):
        main([str(fail_model), "--select", "AU004", "-f", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules_run"] == ["AU004"]

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for i in range(1, 12):
            assert f"AU{i:03d}" in out


class TestStrictGate:
    def test_strict_demands_pass(self, tmp_path, capsys):
        # A sound-but-small model: n=14 on k=3 trips AU004 minor, which
        # the default gate tolerates and --strict does not.
        from repro.core.features import feature_names

        rng = np.random.default_rng(5)
        x = rng.uniform(1.0, 10.0, size=(14, 3))
        y = x @ np.array([2.0, 3.0, 1.0]) + 5.0 * rng.normal(size=14)
        ols = fit_ols(
            y, x, intercept=False, cov_type="HC3",
            exog_names=feature_names(()),
        )
        path = tmp_path / "small.json"
        save_model(
            FittedPowerModel(counters=(), ols=ols, cov_type="HC3"),
            path,
            gate="off",
        )
        assert main([str(path)]) == EXIT_CLEAN
        assert main([str(path), "--strict"]) == EXIT_FINDINGS
        capsys.readouterr()


class TestEntryPoint:
    def test_python_dash_m_invocation(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.audit", "--list-rules"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "AU001" in proc.stdout
