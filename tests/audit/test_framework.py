"""Verdict algebra and report shapes of the audit framework."""

import pytest

from repro.audit import AuditFinding, AuditReport
from repro.reporting import severity_rank, worst_severity


def finding(severity, rule="AU004", artifact="model"):
    return AuditFinding(
        artifact=artifact, rule_id=rule, severity=severity, message="m"
    )


class TestSeverityScale:
    def test_order(self):
        assert (
            severity_rank("pass")
            < severity_rank("minor")
            < severity_rank("major")
            < severity_rank("fail")
        )

    def test_worst_of_empty_is_pass(self):
        assert worst_severity([]) == "pass"

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            severity_rank("catastrophic")

    def test_finding_severity_validated(self):
        with pytest.raises(ValueError, match="minor/major/fail"):
            finding("pass")


class TestAuditReport:
    def test_empty_report_passes(self):
        report = AuditReport(findings=(), artifacts=("model",))
        assert report.verdict == "pass"
        assert report.clean
        assert report.gate_passed()
        assert report.gate_passed(strict=True)

    def test_verdict_is_worst_finding(self):
        report = AuditReport(
            findings=(finding("minor"), finding("major", rule="AU002"))
        )
        assert report.verdict == "major"
        assert not report.gate_passed()

    def test_minor_passes_default_gate_but_not_strict(self):
        report = AuditReport(findings=(finding("minor"),))
        assert report.verdict == "minor"
        assert report.gate_passed()
        assert not report.gate_passed(strict=True)

    def test_fail_fails_every_gate(self):
        report = AuditReport(findings=(finding("fail", rule="AU009"),))
        assert report.worst_at_least("fail")
        assert not report.gate_passed()

    def test_merged_deduplicates_and_unions(self):
        a = AuditReport(
            findings=(finding("minor"),),
            artifacts=("model",),
            rules_run=("AU004",),
        )
        b = AuditReport(
            findings=(finding("minor"), finding("major", rule="AU002")),
            artifacts=("model", "campaign"),
            rules_run=("AU002", "AU004"),
        )
        merged = a.merged(b)
        assert len(merged.findings) == 2
        assert merged.artifacts == ("model", "campaign")
        assert merged.verdict == "major"

    def test_findings_for_filters_by_artifact(self):
        report = AuditReport(
            findings=(
                finding("minor", artifact="model"),
                finding("major", artifact="campaign"),
            )
        )
        assert len(report.findings_for("campaign")) == 1

    def test_summary_and_dict_round_trip(self):
        report = AuditReport(
            findings=(finding("major"),), artifacts=("model",)
        )
        assert "audit verdict: major" in report.summary()
        payload = report.to_dict()
        assert payload["verdict"] == "major"
        assert payload["findings"][0]["rule"] == "AU004"

    def test_finding_format_line(self):
        line = finding("major").format()
        assert line == "model: AU004 [major] m"
