"""Unit tests for the Platform orchestration layer."""

import numpy as np
import pytest

from repro.hardware import (
    HASWELL_EP_CONFIG,
    Platform,
    SKYLAKE_SP_CONFIG,
    SKYLAKE_SP_POWER_PARAMS,
)
from repro.workloads import get_workload


class TestExecute:
    def test_run_structure(self, platform):
        run = platform.execute(get_workload("compute"), 2400, 8)
        assert run.workload_name == "compute"
        assert run.suite == "roco2"
        assert run.op.frequency_mhz == 2400
        assert run.threads == 8
        assert len(run.phases) == 1
        phase = run.phases[0]
        assert phase.duration_s == pytest.approx(10.0)
        assert phase.power_breakdown.measured_w > 0

    def test_spec_run_has_multiple_phases(self, platform):
        run = platform.execute(get_workload("md"), 2400, 24)
        assert len(run.phases) >= 5
        # Phases tile the timeline without gaps.
        for a, b in zip(run.phases, run.phases[1:]):
            assert b.start_s == pytest.approx(a.end_s)
        assert run.total_duration_s == pytest.approx(run.phases[-1].end_s)

    def test_invalid_thread_count(self, platform):
        with pytest.raises(ValueError):
            platform.execute(get_workload("compute"), 2400, 0)
        with pytest.raises(ValueError):
            platform.execute(get_workload("compute"), 2400, 99)

    def test_invalid_frequency(self, platform):
        with pytest.raises(ValueError):
            platform.execute(get_workload("compute"), 5000, 8)


class TestDeterminismAndJitter:
    def test_same_run_index_identical(self, platform):
        a = platform.execute(get_workload("compute"), 2400, 8, run_index=0)
        b = platform.execute(get_workload("compute"), 2400, 8, run_index=0)
        assert a.phases[0].power_breakdown.measured_w == b.phases[0].power_breakdown.measured_w
        assert np.array_equal(
            a.phases[0].state.counter_rates, b.phases[0].state.counter_rates
        )

    def test_different_run_index_jitters(self, platform):
        a = platform.execute(get_workload("compute"), 2400, 8, run_index=0)
        b = platform.execute(get_workload("compute"), 2400, 8, run_index=1)
        assert a.phases[0].power_breakdown.measured_w != b.phases[0].power_breakdown.measured_w

    def test_jitter_small(self, platform):
        powers = [
            platform.execute(get_workload("compute"), 2400, 8, run_index=i)
            .phases[0]
            .power_breakdown.measured_w
            for i in range(20)
        ]
        assert np.std(powers) / np.mean(powers) < 0.05

    def test_cycle_counters_exempt_from_jitter(self, platform):
        a = platform.execute(get_workload("compute"), 2400, 8, run_index=0)
        b = platform.execute(get_workload("compute"), 2400, 8, run_index=1)
        assert a.phases[0].state.rate("TOT_CYC") == pytest.approx(
            b.phases[0].state.rate("TOT_CYC")
        )
        assert a.phases[0].state.rate("TOT_INS") != b.phases[0].state.rate(
            "TOT_INS"
        )

    def test_jitter_exempt_regression_batch_and_scalar(self, platform):
        """Pin _JITTER_EXEMPT across both jitter applicators: the
        batched fast path and the per-phase scalar path must rescale
        exactly the same counters — everything except the cycle
        counters, which are fixed by frequency and wall time."""
        from repro.hardware.counters import COUNTER_NAMES
        from repro.hardware.microarch import evaluate

        wl = get_workload("md")
        exempt = {"TOT_CYC", "REF_CYC"}
        for fast in (True, False):
            run = platform.execute(wl, 2400, 24, run_index=1, fast=fast)
            op = platform.cfg.curve.operating_point(2400)
            for phase in run.phases:
                base = evaluate(
                    phase.phase.characterization,
                    op,
                    phase.phase.active_threads,
                    platform.cfg,
                )
                for name in COUNTER_NAMES:
                    if name in exempt:
                        assert phase.state.rate(name) == base.rate(name)
                    elif base.rate(name) != 0.0:
                        assert phase.state.rate(name) != base.rate(name)

    def test_seed_changes_everything(self):
        p1 = Platform(seed=1)
        p2 = Platform(seed=2)
        a = p1.execute(get_workload("compute"), 2400, 8)
        b = p2.execute(get_workload("compute"), 2400, 8)
        assert a.phases[0].power_breakdown.measured_w != b.phases[0].power_breakdown.measured_w


class TestOtherPlatforms:
    def test_skylake_platform_runs(self):
        p = Platform(SKYLAKE_SP_CONFIG, SKYLAKE_SP_POWER_PARAMS)
        run = p.execute(get_workload("compute"), 2000, 40)
        assert run.phases[0].power_breakdown.measured_w > 80.0

    def test_describe_mentions_key_facts(self, platform):
        text = platform.describe()
        assert "2 sockets" in text
        assert "54" in text

    def test_supported_frequencies(self, platform):
        lo, hi = platform.supported_frequencies()
        assert (lo, hi) == (1200, 2600)
