"""Unit tests for the calibrated power sensor instrumentation."""

import numpy as np
import pytest

from repro.hardware import PowerSensor, SensorArray, SensorCalibration


def _sensor(gain=1.0, offset=0.0, **kw):
    return PowerSensor(SensorCalibration(gain=gain, offset_w=offset), **kw)


class TestPowerSensor:
    def test_sample_count(self):
        s = _sensor(sample_rate_hz=1000.0)
        assert s.n_samples(2.0) == 2000
        assert s.n_samples(0.0001) == 1  # at least one sample

    def test_samples_center_on_truth(self, rng):
        s = _sensor(noise_sigma_w=0.5)
        samples = s.sample(100.0, 10.0, rng)
        assert samples.mean() == pytest.approx(100.0, abs=0.1)

    def test_gain_and_offset_applied(self, rng):
        s = _sensor(gain=1.01, offset=0.5, noise_sigma_w=0.0)
        assert s.measure_average(200.0, 1.0, rng) == pytest.approx(202.5)

    def test_quantization(self, rng):
        s = _sensor(noise_sigma_w=0.0, resolution_w=0.5)
        samples = s.sample(100.3, 1.0, rng)
        assert np.allclose(samples % 0.5, 0.0)

    def test_average_noise_shrinks_with_duration(self):
        s = _sensor(noise_sigma_w=1.0)
        short = np.std(
            [s.measure_average(100.0, 0.01, np.random.default_rng(i)) for i in range(300)]
        )
        long = np.std(
            [s.measure_average(100.0, 10.0, np.random.default_rng(i)) for i in range(300)]
        )
        assert long < short / 5.0

    def test_measure_average_matches_sample_statistics(self):
        """The analytic fast path must agree with averaging the raw
        stream in distribution (same mean, same sigma/√n)."""
        s = _sensor(gain=1.002, offset=0.2, noise_sigma_w=0.8)
        raw_means = [
            s.sample(150.0, 1.0, np.random.default_rng(i)).mean()
            for i in range(400)
        ]
        fast = [
            s.measure_average(150.0, 1.0, np.random.default_rng(i))
            for i in range(400)
        ]
        assert np.mean(fast) == pytest.approx(np.mean(raw_means), abs=0.01)
        assert np.std(fast) == pytest.approx(np.std(raw_means), rel=0.3)

    def test_validation(self, rng):
        s = _sensor()
        with pytest.raises(ValueError):
            s.sample(-1.0, 1.0, rng)
        with pytest.raises(ValueError):
            s.sample(1.0, 0.0, rng)
        with pytest.raises(ValueError):
            s.measure_average(-5.0, 1.0, rng)
        with pytest.raises(ValueError):
            PowerSensor(SensorCalibration(1.0, 0.0), sample_rate_hz=0.0)
        with pytest.raises(ValueError):
            PowerSensor(SensorCalibration(1.0, 0.0), noise_sigma_w=-1.0)


class TestSensorArray:
    def test_build_draws_distinct_calibrations(self, rng):
        array = SensorArray.build(2, rng)
        cals = [s.calibration for s in array.sensors]
        assert cals[0] != cals[1]

    def test_calibration_residuals_small(self, rng):
        array = SensorArray.build(2, rng, gain_sigma=0.003)
        for s in array.sensors:
            assert abs(s.calibration.gain - 1.0) < 0.02
            assert abs(s.calibration.offset_w) < 1.0

    def test_node_average_sums_channels(self, rng):
        array = SensorArray(
            (
                _sensor(noise_sigma_w=0.0),
                _sensor(noise_sigma_w=0.0),
            )
        )
        total = array.measure_node_average((60.0, 70.0), 1.0, rng)
        assert total == pytest.approx(130.0)

    def test_channel_count_mismatch(self, rng):
        array = SensorArray.build(2, rng)
        with pytest.raises(ValueError):
            array.measure_node_average((100.0,), 1.0, rng)

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            SensorArray(())


class TestVectorizedSampling:
    """ISSUE-10 satellite: the array-level window sampling must equal
    the per-channel Generator call sequence bit for bit."""

    def _array(self, rng):
        return SensorArray.build(2, rng, noise_sigma_w=0.7)

    def test_node_average_matches_per_channel_draws(self):
        array = self._array(np.random.default_rng(7))
        truth = (88.0, 96.5)
        for duration_s in (0.25, 1.0, 10.0):
            for seed in range(5):
                vec = array.measure_node_average(
                    truth, duration_s, np.random.default_rng(seed)
                )
                rng = np.random.default_rng(seed)
                ref = float(
                    sum(
                        s.measure_average(p, duration_s, rng)
                        for s, p in zip(array.sensors, truth)
                    )
                )
                assert vec == ref

    def test_sample_node_total_matches_per_channel_draws(self):
        array = self._array(np.random.default_rng(11))
        truth = (60.0, 75.0)
        interval_s = 0.1
        for n in (1, 7, 64):
            for seed in range(5):
                vec = array.sample_node_total(
                    truth, n, interval_s, np.random.default_rng(seed)
                )
                rng = np.random.default_rng(seed)
                ref = np.zeros(n)
                for s, p in zip(array.sensors, truth):
                    raw = max(int(round(interval_s * s.sample_rate_hz)), 1)
                    mean = p * s.calibration.gain + s.calibration.offset_w
                    ref += mean + rng.normal(
                        0.0, s.noise_sigma_w / np.sqrt(raw), size=n
                    )
                assert np.array_equal(vec, ref)

    def test_scale_cache_reused_across_calls(self):
        array = self._array(np.random.default_rng(3))
        array.sample_node_total((50.0, 50.0), 4, 0.1, np.random.default_rng(0))
        first = array._scale_cache[0.1]
        array.sample_node_total((51.0, 52.0), 4, 0.1, np.random.default_rng(1))
        assert array._scale_cache[0.1] is first
        assert len(array._scale_cache) == 1

    def test_node_average_validation(self):
        array = self._array(np.random.default_rng(5))
        with pytest.raises(ValueError):
            array.measure_node_average((50.0, 50.0), 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            array.measure_node_average((-1.0, 50.0), 1.0, np.random.default_rng(0))

    def test_sample_node_total_channel_mismatch(self):
        array = self._array(np.random.default_rng(5))
        with pytest.raises(ValueError):
            array.sample_node_total((50.0,), 4, 0.1, np.random.default_rng(0))
