"""Unit tests for the PAPI preset counter definitions."""

import pytest

from repro.hardware import (
    COUNTER_NAMES,
    FIXED_COUNTERS,
    PAPI_PRESETS,
    PROGRAMMABLE_COUNTERS,
    counter_index,
    counters_in_group,
    describe,
)


class TestCounterTable:
    def test_exactly_54_presets(self):
        # The paper: "we use 54 PAPI counters that are available on the
        # system".
        assert len(PAPI_PRESETS) == 54
        assert len(COUNTER_NAMES) == 54

    def test_names_unique(self):
        assert len(set(COUNTER_NAMES)) == len(COUNTER_NAMES)

    def test_fixed_plus_programmable_partition(self):
        assert set(FIXED_COUNTERS) | set(PROGRAMMABLE_COUNTERS) == set(
            COUNTER_NAMES
        )
        assert not set(FIXED_COUNTERS) & set(PROGRAMMABLE_COUNTERS)

    def test_fixed_counters_are_the_architectural_three(self):
        assert set(FIXED_COUNTERS) == {"TOT_CYC", "REF_CYC", "TOT_INS"}

    def test_paper_counters_present(self):
        """Every counter named in the paper's tables must exist."""
        for name in (
            "PRF_DM", "TOT_CYC", "TLB_IM", "FUL_CCY", "STL_ICY", "BR_MSP",
            "CA_SNP", "L1_LDM", "REF_CYC", "BR_PRC", "L3_LDM",
        ):
            assert name in COUNTER_NAMES

    def test_descriptions_nonempty(self):
        for spec in PAPI_PRESETS:
            assert spec.description
            assert spec.group


class TestLookups:
    def test_counter_index_roundtrip(self):
        for i, name in enumerate(COUNTER_NAMES):
            assert counter_index(name) == i

    def test_counter_index_unknown(self):
        with pytest.raises(KeyError, match="unknown PAPI preset"):
            counter_index("NOT_A_COUNTER")

    def test_describe(self):
        spec = describe("PRF_DM")
        assert "prefetch" in spec.description.lower()
        assert spec.group == "prefetch"

    def test_describe_unknown(self):
        with pytest.raises(KeyError):
            describe("FOO")

    def test_counters_in_group(self):
        branch = counters_in_group("branch")
        assert "BR_MSP" in branch and "BR_PRC" in branch
        assert all(describe(c).group == "branch" for c in branch)

    def test_counters_in_unknown_group(self):
        with pytest.raises(KeyError, match="unknown counter group"):
            counters_in_group("gpu")

    def test_groups_cover_families(self):
        groups = {spec.group for spec in PAPI_PRESETS}
        assert {
            "cycle",
            "instruction",
            "branch",
            "cache_l1",
            "cache_l2",
            "cache_l3",
            "coherence",
            "tlb",
            "prefetch",
            "stall",
        } <= groups
