"""Unit tests for the PMU model and event scheduling."""

import numpy as np
import pytest

from repro.hardware import (
    COUNTER_NAMES,
    FIXED_COUNTERS,
    HASWELL_EP_CONFIG,
    PMU,
    EventSet,
    evaluate,
    schedule_events,
)
from repro.hardware.dvfs import HASWELL_EP_CURVE
from repro.workloads import Characterization

CFG = HASWELL_EP_CONFIG


class TestEventSet:
    def test_valid(self):
        es = EventSet(events=("TOT_CYC", "PRF_DM"))
        assert es.programmable() == ("PRF_DM",)
        es.validate_against(CFG)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            EventSet(events=("PRF_DM", "PRF_DM"))

    def test_rejects_unknown(self):
        with pytest.raises(KeyError):
            EventSet(events=("NOT_REAL",))

    def test_rejects_too_many_programmable(self):
        es = EventSet(events=("PRF_DM", "BR_MSP", "TLB_IM", "CA_SNP", "L1_DCM"))
        with pytest.raises(ValueError, match="programmable slots"):
            es.validate_against(CFG)

    def test_fixed_counters_are_free(self):
        es = EventSet(
            events=tuple(FIXED_COUNTERS) + ("PRF_DM", "BR_MSP", "TLB_IM", "CA_SNP")
        )
        es.validate_against(CFG)  # 4 programmable + 3 fixed is fine


class TestScheduling:
    def test_all_counters_covered(self):
        plan = schedule_events(COUNTER_NAMES, CFG)
        covered = set()
        for es in plan:
            covered |= set(es.events)
        assert covered == set(COUNTER_NAMES)

    def test_minimal_run_count(self):
        plan = schedule_events(COUNTER_NAMES, CFG)
        n_prog = len(COUNTER_NAMES) - len(FIXED_COUNTERS)
        expected = -(-n_prog // CFG.programmable_slots)  # ceil
        assert len(plan) == expected
        # Paper's constraint: 51 programmable / 4 slots = 13 runs.
        assert len(plan) == 13

    def test_fixed_in_every_run(self):
        plan = schedule_events(COUNTER_NAMES, CFG)
        for es in plan:
            assert set(FIXED_COUNTERS) <= set(es.events)

    def test_each_programmable_scheduled_once(self):
        plan = schedule_events(COUNTER_NAMES, CFG)
        seen = []
        for es in plan:
            seen.extend(es.programmable())
        assert len(seen) == len(set(seen))

    def test_subset_scheduling(self):
        plan = schedule_events(["PRF_DM", "TOT_CYC"], CFG)
        assert len(plan) == 1
        assert "PRF_DM" in plan[0].events

    def test_fixed_only(self):
        plan = schedule_events(list(FIXED_COUNTERS), CFG)
        assert len(plan) == 1
        assert not plan[0].programmable()

    def test_deterministic(self):
        a = schedule_events(COUNTER_NAMES, CFG)
        b = schedule_events(COUNTER_NAMES, CFG)
        assert [es.events for es in a] == [es.events for es in b]


class TestCounting:
    @pytest.fixture()
    def rates(self):
        op = HASWELL_EP_CURVE.operating_point(2400)
        return evaluate(Characterization(), op, 12, CFG).counter_rates

    def test_counts_scale_with_rate_and_time(self, rates, rng):
        pmu = PMU(CFG, read_noise_sigma=0.0)
        es = EventSet(events=("TOT_CYC", "TOT_INS"))
        counts = pmu.count(es, rates, 2.4e9, 10.0, rng)
        expected_cyc = rates[COUNTER_NAMES.index("TOT_CYC")] * 2.4e9 * 10.0
        assert counts["TOT_CYC"] == pytest.approx(expected_cyc, rel=1e-9)

    def test_counts_are_integral_nonnegative(self, rates, rng):
        pmu = PMU(CFG)
        es = EventSet(events=("TOT_CYC", "PRF_DM", "BR_MSP"))
        counts = pmu.count(es, rates, 2.4e9, 1.0, rng)
        for v in counts.values():
            assert v >= 0.0
            assert v == np.floor(v)

    def test_only_programmed_events_returned(self, rates, rng):
        pmu = PMU(CFG)
        es = EventSet(events=("TOT_CYC", "PRF_DM"))
        counts = pmu.count(es, rates, 2.4e9, 1.0, rng)
        assert set(counts) == {"TOT_CYC", "PRF_DM"}

    def test_noise_within_expectation(self, rates, rng):
        pmu = PMU(CFG, read_noise_sigma=0.01)
        es = EventSet(events=("TOT_INS",))
        vals = [
            pmu.count(es, rates, 2.4e9, 1.0, np.random.default_rng(i))["TOT_INS"]
            for i in range(200)
        ]
        rel_std = np.std(vals) / np.mean(vals)
        assert 0.005 < rel_std < 0.02

    def test_bad_inputs(self, rates, rng):
        pmu = PMU(CFG)
        es = EventSet(events=("TOT_CYC",))
        with pytest.raises(ValueError):
            pmu.count(es, rates[:10], 2.4e9, 1.0, rng)
        with pytest.raises(ValueError):
            pmu.count(es, rates, -1.0, 1.0, rng)
        with pytest.raises(ValueError):
            pmu.count(es, rates, 2.4e9, 0.0, rng)
        with pytest.raises(ValueError):
            PMU(CFG, read_noise_sigma=-0.1)
