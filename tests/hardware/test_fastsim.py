"""Bit-identity and memoization tests for the batched acquisition
kernel (DESIGN.md §17).

The contract under test: every fast-path layer — the vectorized
microarchitecture/power kernel, the phase-state memo, the batched
jitter, the shared-grid tracer — produces byte-identical results to
the scalar reference path (``REPRO_FASTSIM=0``)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.hardware.counters import COUNTER_NAMES
from repro.hardware.fastsim import (
    FASTSIM_ENV,
    PhaseStateMemo,
    fastsim_enabled,
    simulate_phases,
)
from repro.hardware.microarch import evaluate
from repro.hardware.platform import Platform
from repro.hardware.pmu import EventSet
from repro.hardware.power import HASWELL_EP_POWER_PARAMS, compute_power
from repro.tracing.phases import profile_trace
from repro.tracing.scorep import trace_multiplexed_run, trace_run
from repro.workloads import get_workload
from repro.workloads.registry import all_workloads

FREQUENCIES = (1200, 1800, 2400)
THREAD_COUNTS = (1, 2, 8, 12, 13, 24)


def assert_states_equal(a, b):
    """MicroarchState equality, field by field (dataclass ``==`` is
    ambiguous on the ndarray member)."""
    assert np.array_equal(a.counter_rates, b.counter_rates)
    assert a.hidden == b.hidden


class TestFastsimEnabled:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(FASTSIM_ENV, raising=False)
        assert fastsim_enabled() is True

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FASTSIM_ENV, "0")
        assert fastsim_enabled(True) is True
        monkeypatch.setenv(FASTSIM_ENV, "1")
        assert fastsim_enabled(False) is False

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_env_values(self, monkeypatch, value):
        monkeypatch.setenv(FASTSIM_ENV, value)
        assert fastsim_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "No", " off "])
    def test_falsy_env_values(self, monkeypatch, value):
        monkeypatch.setenv(FASTSIM_ENV, value)
        assert fastsim_enabled() is False

    @pytest.mark.parametrize("value", ["fa1se", "2", "", "enabled"])
    def test_invalid_env_value_raises_naming_the_variable(
        self, monkeypatch, value
    ):
        monkeypatch.setenv(FASTSIM_ENV, value)
        with pytest.raises(ValueError, match="REPRO_FASTSIM"):
            fastsim_enabled()


class TestKernelBitIdentity:
    """simulate_phases vs the scalar evaluate/compute_power pair."""

    def test_full_registry_identical(self, platform):
        cfg = platform.cfg
        checked = 0
        for wl in all_workloads():
            for freq_mhz in FREQUENCIES:
                op = cfg.curve.operating_point(freq_mhz)
                for threads in THREAD_COUNTS:
                    specs = tuple(wl.phases(threads))
                    batched = simulate_phases(
                        [s.characterization for s in specs],
                        [s.active_threads for s in specs],
                        op,
                        cfg,
                        HASWELL_EP_POWER_PARAMS,
                    )
                    for spec, (state, breakdown) in zip(specs, batched):
                        ref_state = evaluate(
                            spec.characterization, op, spec.active_threads, cfg
                        )
                        ref_breakdown = compute_power(
                            ref_state.hidden, op, cfg, HASWELL_EP_POWER_PARAMS
                        )
                        assert_states_equal(state, ref_state)
                        assert breakdown == ref_breakdown
                        checked += 1
        assert checked > 500

    def test_single_phase_batch(self, platform):
        wl = get_workload("compute")
        op = platform.cfg.curve.operating_point(2400)
        (spec,) = tuple(wl.phases(8))
        ((state, breakdown),) = simulate_phases(
            [spec.characterization], [spec.active_threads], op, platform.cfg
        )
        ref = evaluate(spec.characterization, op, spec.active_threads, platform.cfg)
        assert_states_equal(state, ref)
        assert breakdown == compute_power(
            ref.hidden, op, platform.cfg, HASWELL_EP_POWER_PARAMS
        )


class TestExecuteBitIdentity:
    """Platform.execute fast path vs scalar path, jitter included."""

    @pytest.mark.parametrize("run_index", [0, 3])
    def test_execute_fast_equals_scalar(self, run_index):
        platform = Platform()
        for wl_name in ("compute", "memory_read", "idle", "md"):
            wl = get_workload(wl_name)
            for freq_mhz in (1200, 2400):
                for threads in (1, 13, 24):
                    fast = platform.execute(
                        wl, freq_mhz, threads, run_index=run_index, fast=True
                    )
                    scalar = platform.execute(
                        wl, freq_mhz, threads, run_index=run_index, fast=False
                    )
                    assert fast.workload_name == scalar.workload_name
                    assert fast.op == scalar.op
                    assert len(fast.phases) == len(scalar.phases)
                    for pf, ps in zip(fast.phases, scalar.phases):
                        assert pf.phase == ps.phase
                        assert pf.start_s == ps.start_s
                        assert pf.end_s == ps.end_s
                        assert_states_equal(pf.state, ps.state)
                        assert pf.power_breakdown == ps.power_breakdown
                        assert pf.true_voltage_v == ps.true_voltage_v

    def test_env_escape_hatch_matches_fast(self, monkeypatch):
        platform = Platform()
        wl = get_workload("memory_write")
        fast = platform.execute(wl, 2400, 8)
        monkeypatch.setenv(FASTSIM_ENV, "0")
        scalar = platform.execute(wl, 2400, 8)
        for pf, ps in zip(fast.phases, scalar.phases):
            assert_states_equal(pf.state, ps.state)
            assert pf.power_breakdown == ps.power_breakdown

    def test_explicit_phases_match_derived(self):
        platform = Platform()
        wl = get_workload("md")
        derived = platform.execute(wl, 2400, 24)
        explicit = platform.execute(
            wl, 2400, 24, phases=tuple(wl.phases(24))
        )
        for pf, ps in zip(derived.phases, explicit.phases):
            assert pf.phase == ps.phase
            assert_states_equal(pf.state, ps.state)
            assert pf.power_breakdown == ps.power_breakdown


class TestPhaseStateMemo:
    def test_event_set_reruns_hit_the_memo(self):
        """A campaign re-executes each experiment once per PMU event
        set; after the first run the memos must serve every repeat."""
        platform = Platform()
        wl = get_workload("md")
        # fast=True pins the path under test: this test asserts memo
        # internals, so it must not follow a REPRO_FASTSIM=0 override.
        platform.execute(wl, 2400, 24, run_index=0, fast=True)
        misses_after_first = platform._phase_memo.misses
        assert (wl.name, 2400, 24) in platform._run_memo
        for run_index in (1, 2, 3):
            platform.execute(wl, 2400, 24, run_index=run_index, fast=True)
        # Repeats replay the run skeleton: no new phase evaluations.
        assert platform._phase_memo.misses == misses_after_first
        # A rebuilt skeleton (fresh worker, evicted entry) is served
        # entirely from the phase-state memo.
        platform._run_memo.clear()
        platform.execute(wl, 2400, 24, run_index=4, fast=True)
        assert platform._phase_memo.misses == misses_after_first
        assert platform._phase_memo.hits > 0

    def test_prime_run_skeletons_is_pure_warmup(self):
        """Cross-experiment priming batches all phase evaluations into
        one kernel call; executes after it are served entirely warm and
        are bit-identical to a cold platform's."""
        primed = Platform()
        experiments = [
            (get_workload("md"), 2400, 24),
            (get_workload("compute"), 1200, 8),
            (get_workload("idle"), 2400, 1),
        ]
        primed.prime_run_skeletons(experiments)
        misses_after_prime = primed._phase_memo.misses
        cold = Platform()
        for wl, freq_mhz, threads in experiments:
            assert (wl.name, freq_mhz, threads) in primed._run_memo
            warm = primed.execute(wl, freq_mhz, threads, run_index=1)
            ref = cold.execute(wl, freq_mhz, threads, run_index=1)
            for pf, ps in zip(warm.phases, ref.phases):
                assert_states_equal(pf.state, ps.state)
                assert pf.power_breakdown == ps.power_breakdown
                assert pf.true_voltage_v == ps.true_voltage_v
        assert primed._phase_memo.misses == misses_after_prime
        # Re-priming the same experiments is a no-op.
        primed.prime_run_skeletons(experiments)
        assert primed._phase_memo.misses == misses_after_prime

    def test_memoized_reexecution_is_identical(self):
        platform = Platform()
        wl = get_workload("compute")
        first = platform.execute(wl, 2400, 8, run_index=0)
        again = platform.execute(wl, 2400, 8, run_index=0)
        for pf, ps in zip(first.phases, again.phases):
            assert_states_equal(pf.state, ps.state)
            assert pf.power_breakdown == ps.power_breakdown

    def test_capacity_eviction_fifo(self):
        memo = PhaseStateMemo(capacity=2)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.put("c", 3)
        assert len(memo) == 2
        assert memo.get("a") is None  # oldest evicted
        assert memo.get("b") == 2
        assert memo.get("c") == 3

    def test_clear_resets_entries_and_stats(self):
        memo = PhaseStateMemo()
        memo.put("a", 1)
        memo.get("a")
        memo.get("zzz")
        memo.clear()
        assert len(memo) == 0
        assert memo.hits == 0 and memo.misses == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PhaseStateMemo(capacity=0)

    def test_pickle_drops_memo(self):
        platform = Platform()
        wl = get_workload("compute")
        platform.execute(wl, 2400, 8, fast=True)
        assert len(platform._phase_memo) > 0
        restored = pickle.loads(pickle.dumps(platform))
        assert len(restored._phase_memo) == 0
        # And the restored platform still executes identically.
        a = platform.execute(wl, 1200, 8)
        b = restored.execute(wl, 1200, 8)
        for pf, ps in zip(a.phases, b.phases):
            assert_states_equal(pf.state, ps.state)


class TestTracerBitIdentity:
    """The shared-grid tracer fast path vs the scalar recording path."""

    EVENTS = tuple(COUNTER_NAMES[:8])

    def assert_traces_equal(self, fast, scalar):
        assert fast.meta == scalar.meta
        assert fast.events == scalar.events
        assert list(fast.metrics) == list(scalar.metrics)
        for name in fast.metrics:
            a, b = fast.metrics[name], scalar.metrics[name]
            assert a.definition == b.definition
            assert np.array_equal(a.times_s, b.times_s)
            assert np.array_equal(a.values, b.values)

    def test_trace_run_identical(self, platform):
        run = platform.execute(get_workload("md"), 2400, 24)
        evset = EventSet(self.EVENTS)
        fast = trace_run(platform, run, evset, fast=True)
        scalar = trace_run(platform, run, evset, fast=False)
        self.assert_traces_equal(fast, scalar)
        assert profile_trace(fast) == profile_trace(scalar)

    def test_trace_multiplexed_identical(self, platform):
        run = platform.execute(get_workload("memory_read"), 1200, 8)
        fast = trace_multiplexed_run(
            platform, run, COUNTER_NAMES[:12], fast=True
        )
        scalar = trace_multiplexed_run(
            platform, run, COUNTER_NAMES[:12], fast=False
        )
        self.assert_traces_equal(fast, scalar)

    def test_fast_streams_share_one_times_array(self, platform):
        run = platform.execute(get_workload("md"), 2400, 24)
        trace = trace_run(platform, run, EventSet(self.EVENTS), fast=True)
        assert len({id(m.times_s) for m in trace.metrics.values()}) == 1

    def test_env_escape_hatch_selects_scalar_path(self, platform, monkeypatch):
        run = platform.execute(get_workload("compute"), 2400, 8)
        fast = trace_run(platform, run, EventSet(self.EVENTS))
        monkeypatch.setenv(FASTSIM_ENV, "0")
        scalar = trace_run(platform, run, EventSet(self.EVENTS))
        self.assert_traces_equal(fast, scalar)
        # The scalar path builds per-stream arrays, not a shared one.
        assert len({id(m.times_s) for m in scalar.metrics.values()}) > 1


class TestRngWordsPriming:
    """Campaign-level RNG priming is a pure derivation cache: primed
    and cold platforms draw byte-identical jitter and sensor streams."""

    EVENTS = tuple(COUNTER_NAMES[:8])
    RUNS = (
        ("md", 2400, 24, 0),
        ("md", 2400, 24, 1),
        ("compute", 1200, 8, 0),
    )

    def assert_metrics_equal(self, a_trace, b_trace):
        assert list(a_trace.metrics) == list(b_trace.metrics)
        for name in a_trace.metrics:
            a, b = a_trace.metrics[name], b_trace.metrics[name]
            assert np.array_equal(a.times_s, b.times_s)
            assert np.array_equal(a.values, b.values)

    def test_prime_rng_words_is_pure_warmup(self):
        primed = Platform()
        runs = [
            (get_workload(name), f, t, r) for name, f, t, r in self.RUNS
        ]
        primed.prime_rng_words(
            runs, ("PowerPlugin", "VoltagePlugin", "ApapiPlugin")
        )
        cold = Platform()
        for wl, freq_mhz, threads, run_index in runs:
            key = (wl.name, freq_mhz, threads, run_index)
            assert key in primed._rng_words
            warm_run = primed.execute(
                wl, freq_mhz, threads, run_index=run_index
            )
            ref_run = cold.execute(wl, freq_mhz, threads, run_index=run_index)
            # Jitter draws come from the primed "run" words: durations
            # and per-phase states must match a cold derivation.
            for pf, ps in zip(warm_run.phases, ref_run.phases):
                assert pf.duration_s == ps.duration_s
                assert_states_equal(pf.state, ps.state)
            evset = EventSet(self.EVENTS)
            warm = trace_run(primed, warm_run, evset, fast=True)
            ref = trace_run(cold, ref_run, evset, fast=True)
            self.assert_metrics_equal(warm, ref)

    def test_unprimed_plugin_falls_back_to_hashing(self):
        # Entry present but holding no words for the multiplexed
        # plugin: the tracer must fall back to the hashed derivation
        # and still match a cold platform bit for bit.
        primed = Platform()
        wl = get_workload("memory_read")
        primed.prime_rng_words(
            [(wl, 1200, 8, 0)], ("PowerPlugin", "VoltagePlugin")
        )
        cold = Platform()
        warm = trace_multiplexed_run(
            primed,
            primed.execute(wl, 1200, 8, run_index=0),
            COUNTER_NAMES[:12],
            fast=True,
        )
        ref = trace_multiplexed_run(
            cold,
            cold.execute(wl, 1200, 8, run_index=0),
            COUNTER_NAMES[:12],
            fast=True,
        )
        self.assert_metrics_equal(warm, ref)

    def test_priming_survives_pickling_as_empty_cache(self):
        primed = Platform()
        wl = get_workload("md")
        primed.prime_rng_words(
            [(wl, 2400, 24, 0)], ("PowerPlugin", "VoltagePlugin")
        )
        clone = pickle.loads(pickle.dumps(primed))
        assert clone._rng_words == {}
        run = clone.execute(wl, 2400, 24, run_index=0)
        ref = Platform().execute(wl, 2400, 24, run_index=0)
        for pf, ps in zip(run.phases, ref.phases):
            assert pf.duration_s == ps.duration_s


class TestCampaignBitIdentity:
    """End-to-end: a small campaign dataset is byte-equal fast vs
    scalar (the ISSUE-10 acceptance shape in miniature)."""

    def test_small_campaign_dataset_identical(self, monkeypatch):
        from repro.acquisition import run_campaign

        workloads = [get_workload(w) for w in ("idle", "compute", "md")]
        kwargs = dict(
            frequencies_mhz=[1200, 2400],
            thread_counts=[1, 24],
            events=COUNTER_NAMES[:8],
        )
        fast_ds = run_campaign(Platform(), workloads, **kwargs)
        monkeypatch.setenv(FASTSIM_ENV, "0")
        scalar_ds = run_campaign(Platform(), workloads, **kwargs)
        assert fast_ds.counter_names == scalar_ds.counter_names
        assert np.array_equal(fast_ds.counters, scalar_ds.counters)
        assert np.array_equal(fast_ds.power_w, scalar_ds.power_w)
