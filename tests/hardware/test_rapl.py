"""Unit tests for the RAPL energy-counter model."""

import numpy as np
import pytest

from repro.hardware import Platform
from repro.hardware.rapl import (
    ENERGY_UNIT_J,
    REGISTER_MASK,
    RaplEnergyCounter,
    RaplMeter,
    rapl_power_between,
)
from repro.workloads import get_workload


class TestCounter:
    def test_accumulates_energy(self):
        c = RaplEnergyCounter()
        c.advance(100.0, 1.0)  # 100 J
        assert c.read() == pytest.approx(100.0 / ENERGY_UNIT_J, abs=1)

    def test_quantized_to_energy_unit(self):
        c = RaplEnergyCounter()
        c.advance(ENERGY_UNIT_J * 2.7, 1.0)
        assert c.read() == 2  # floor to whole units

    def test_wraps_at_32_bits(self):
        c = RaplEnergyCounter(initial_raw=REGISTER_MASK)
        c.advance(ENERGY_UNIT_J * 5, 1.0)
        assert c.read() == 4  # wrapped past zero

    def test_wrap_period_plausible(self):
        # ~65 kJ capacity: at 100 W the register wraps in ~11 minutes.
        c = RaplEnergyCounter()
        assert 600 < c.wrap_period_s_at < 700

    def test_validation(self):
        with pytest.raises(ValueError):
            RaplEnergyCounter(initial_raw=-1)
        c = RaplEnergyCounter()
        with pytest.raises(ValueError):
            c.advance(-1.0, 1.0)


class TestPowerBetween:
    def test_simple_interval(self):
        raw0 = 1000
        raw1 = raw0 + int(50.0 / ENERGY_UNIT_J)  # 50 J later
        assert rapl_power_between(raw0, raw1, 2.0) == pytest.approx(25.0, rel=1e-6)

    def test_handles_single_wrap(self):
        raw0 = REGISTER_MASK - 10
        raw1 = 20  # wrapped
        power_w = rapl_power_between(raw0, raw1, 1.0)
        assert power_w == pytest.approx(31 * ENERGY_UNIT_J, rel=1e-9)

    def test_end_to_end_through_counter_with_wrap(self):
        c = RaplEnergyCounter(initial_raw=REGISTER_MASK - 100)
        before = c.read()
        c.advance(120.0, 3.0)
        after = c.read()
        assert rapl_power_between(before, after, 3.0) == pytest.approx(
            120.0, rel=1e-4
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            rapl_power_between(0, 10, 0.0)
        with pytest.raises(ValueError):
            rapl_power_between(-1, 10, 1.0)
        with pytest.raises(ValueError):
            rapl_power_between(0, REGISTER_MASK + 1, 1.0)


class TestMeter:
    @pytest.fixture(scope="class")
    def meter(self, platform):
        return RaplMeter(platform)

    def test_scope_excludes_board_plane(self, platform, meter):
        """RAPL must read systematically below the 12 V sensors."""
        for name, threads in (("compute", 24), ("memory_read", 24), ("idle", 1)):
            run = platform.execute(get_workload(name), 2400, threads)
            phase = run.phases[0]
            rapl = meter.measure_phase(phase)
            wall = phase.power_breakdown.measured_w
            assert rapl < wall
            # But it covers the package: more than half the wall power.
            assert rapl > 0.5 * wall

    def test_gap_grows_with_power(self, platform, meter):
        """VR losses are proportional: the RAPL-wall gap widens with
        load — the scope effect a RAPL-trained model inherits."""
        idle = platform.execute(get_workload("idle"), 2400, 1).phases[0]
        busy = platform.execute(get_workload("compute"), 2600, 24).phases[0]
        gap_idle = idle.power_breakdown.measured_w - meter.measure_phase(idle)
        gap_busy = busy.power_breakdown.measured_w - meter.measure_phase(busy)
        assert gap_busy > gap_idle

    def test_per_die_calibration_stable(self, platform):
        a = RaplMeter(platform)
        b = RaplMeter(platform)
        assert a.gains == b.gains
        other = RaplMeter(Platform(seed=99))
        assert other.gains != a.gains

    def test_measure_run_weighted_average(self, platform, meter):
        run = platform.execute(get_workload("md"), 2400, 24)
        avg = meter.measure_run(run)
        per_phase = [meter.measure_phase(p) for p in run.phases]
        assert min(per_phase) <= avg <= max(per_phase)
