"""Unit tests for platform configuration."""

import pytest

from repro.hardware import HASWELL_EP_CONFIG, PlatformConfig, SKYLAKE_SP_CONFIG


class TestHaswellConfig:
    def test_matches_paper_system(self):
        # Dual-socket Xeon E5-2690v3, 24 cores total.
        cfg = HASWELL_EP_CONFIG
        assert cfg.sockets == 2
        assert cfg.cores_per_socket == 12
        assert cfg.total_cores == 24

    def test_pmu_slots(self):
        # 4 programmable counters without Hyper-Threading.
        assert HASWELL_EP_CONFIG.programmable_slots == 4


class TestValidation:
    def test_rejects_zero_sockets(self):
        with pytest.raises(ValueError):
            PlatformConfig(sockets=0)

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            PlatformConfig(programmable_slots=0)

    def test_rejects_bad_memory_params(self):
        with pytest.raises(ValueError):
            PlatformConfig(peak_dram_bw_gbs=-1.0)
        with pytest.raises(ValueError):
            PlatformConfig(dram_latency_ns=0.0)


class TestSkylakeConfig:
    def test_is_a_different_generation(self):
        sk, hw = SKYLAKE_SP_CONFIG, HASWELL_EP_CONFIG
        assert sk.total_cores != hw.total_cores
        assert sk.peak_dram_bw_gbs > hw.peak_dram_bw_gbs
        # 14 nm: lower voltage at the shared 2400 MHz point.
        assert sk.curve.voltage_at(2400) < hw.curve.voltage_at(2400)
