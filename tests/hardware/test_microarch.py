"""Unit tests for the microarchitecture model.

The counter-identity invariants here are what make the simulated PMC
data hang together the way real PMU data does — the multicollinearity
structure the paper's method has to cope with is a consequence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import HASWELL_EP_CONFIG, evaluate, place_threads
from repro.hardware.dvfs import HASWELL_EP_CURVE
from repro.workloads import Characterization, get_workload

CFG = HASWELL_EP_CONFIG
OP24 = HASWELL_EP_CURVE.operating_point(2400)
OP12 = HASWELL_EP_CURVE.operating_point(1200)


def _state(char=None, op=OP24, threads=24):
    return evaluate(char or Characterization(), op, threads, CFG)


class TestPlacement:
    def test_compact_fill(self):
        assert place_threads(0, CFG) == (0, 0)
        assert place_threads(5, CFG) == (5, 0)
        assert place_threads(12, CFG) == (12, 0)
        assert place_threads(13, CFG) == (12, 1)
        assert place_threads(24, CFG) == (12, 12)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            place_threads(25, CFG)
        with pytest.raises(ValueError):
            place_threads(-1, CFG)


class TestCounterIdentities:
    """Family identities that hold on real PMUs, per active workload."""

    @pytest.fixture(params=["compute", "memory_read", "md", "fma3d"])
    def state(self, request):
        w = get_workload(request.param)
        char = w.phases(24)[0].characterization
        return _state(char)

    def test_l1_totals(self, state):
        assert state.rate("L1_TCM") == pytest.approx(
            state.rate("L1_DCM") + state.rate("L1_ICM")
        )
        assert state.rate("L1_DCM") == pytest.approx(
            state.rate("L1_LDM") + state.rate("L1_STM")
        )

    def test_l2_totals(self, state):
        assert state.rate("L2_TCA") == pytest.approx(
            state.rate("L2_DCA") + state.rate("L2_ICA")
        )
        assert state.rate("L2_TCM") == pytest.approx(
            state.rate("L2_DCM") + state.rate("L2_ICM")
        )
        assert state.rate("L2_DCA") == pytest.approx(
            state.rate("L2_DCR") + state.rate("L2_DCW")
        )

    def test_branch_identities(self, state):
        assert state.rate("BR_CN") == pytest.approx(
            state.rate("BR_TKN") + state.rate("BR_NTK")
        )
        assert state.rate("BR_CN") == pytest.approx(
            state.rate("BR_MSP") + state.rate("BR_PRC")
        )
        assert state.rate("BR_INS") == pytest.approx(
            state.rate("BR_CN") + state.rate("BR_UCN")
        )

    def test_lst_is_ld_plus_sr(self, state):
        assert state.rate("LST_INS") == pytest.approx(
            state.rate("LD_INS") + state.rate("SR_INS")
        )

    def test_misses_bounded_by_accesses(self, state):
        assert state.rate("L2_TCM") <= state.rate("L2_TCA") + 1e-12
        assert state.rate("L3_TCM") <= state.rate("L3_TCA") + 1e-12

    def test_all_rates_nonnegative(self, state):
        assert np.all(state.counter_rates >= 0.0)

    def test_stall_fractions_bounded(self, state):
        n = sum(state.hidden.active_cores)
        # Per-core fractions × active cores.
        for c in ("STL_ICY", "STL_CCY", "FUL_CCY", "FUL_ICY", "RES_STL"):
            assert state.rate(c) <= n + 1e-9


class TestCycleCounters:
    def test_tot_cyc_counts_active_cores(self):
        # Idle sockets contribute a tiny OS-background duty (~0.002),
        # so the total is active threads plus that residue.
        for threads in (1, 8, 24):
            s = _state(threads=threads)
            assert s.rate("TOT_CYC") == pytest.approx(threads, abs=0.01)

    def test_ref_cyc_scales_with_reference_clock(self):
        s = _state(op=OP12, threads=12)
        expected = 12 * CFG.reference_clock_mhz / 1200
        assert s.rate("REF_CYC") == pytest.approx(expected, rel=1e-3)

    def test_idle_near_zero_activity(self):
        s = _state(threads=0)
        assert s.rate("TOT_CYC") < 0.01
        assert s.rate("TOT_INS") < 0.01
        assert s.hidden.active_cores == (0, 0)


class TestMemoryWall:
    def test_ipc_degrades_with_frequency_for_memory_bound(self):
        # ilbdc's indirect accesses defeat the prefetcher, so demand
        # DRAM latency (fixed in ns, growing in cycles with f) bites.
        char = get_workload("ilbdc").phases(24)[0].characterization
        ipc_low = evaluate(char, OP12, 1, CFG).hidden.ipc_per_socket[0]
        ipc_high = evaluate(char, OP24, 1, CFG).hidden.ipc_per_socket[0]
        assert ipc_high < ipc_low * 0.8

    def test_prefetch_coverage_softens_the_wall(self):
        # The streaming kernel (93 % prefetch coverage) degrades far
        # less with frequency than the prefetch-hostile ilbdc.
        stream = get_workload("memory_read").phases(1)[0].characterization
        s_lo = evaluate(stream, OP12, 1, CFG).hidden.ipc_per_socket[0]
        s_hi = evaluate(stream, OP24, 1, CFG).hidden.ipc_per_socket[0]
        assert 0.8 < s_hi / s_lo < 1.0

    def test_compute_ipc_frequency_invariant(self):
        char = get_workload("compute").phases(1)[0].characterization
        ipc_low = evaluate(char, OP12, 1, CFG).hidden.ipc_per_socket[0]
        ipc_high = evaluate(char, OP24, 1, CFG).hidden.ipc_per_socket[0]
        assert ipc_high == pytest.approx(ipc_low, rel=0.02)

    def test_bandwidth_saturation_with_threads(self):
        char = get_workload("memory_read").phases(24)[0].characterization
        one = evaluate(char, OP24, 1, CFG).hidden
        full = evaluate(char, OP24, 24, CFG).hidden
        assert one.bw_utilization[0] < 1.0
        assert full.bw_utilization[0] == pytest.approx(1.0)
        # Saturated: per-core IPC collapses.
        assert full.ipc_per_socket[0] < one.ipc_per_socket[0]

    def test_saturated_throughput_capped_at_peak(self):
        char = get_workload("memory_read").phases(24)[0].characterization
        h = evaluate(char, OP24, 24, CFG).hidden
        per_socket_gbs = (
            h.dram_read_bytes_per_s[0] + h.dram_write_bytes_per_s[0]
        ) / 1e9
        assert per_socket_gbs <= CFG.peak_dram_bw_gbs * 1.01


class TestScaling:
    def test_counters_scale_linearly_with_threads_below_saturation(self):
        char = get_workload("compute").phases(1)[0].characterization
        s1 = evaluate(char, OP24, 1, CFG)
        s8 = evaluate(char, OP24, 8, CFG)
        # Tolerance covers the constant OS-background contribution of
        # the idle socket.
        assert s8.rate("TOT_INS") == pytest.approx(8 * s1.rate("TOT_INS"), rel=1e-2)
        assert s8.rate("L2_TCA") == pytest.approx(8 * s1.rate("L2_TCA"), rel=1e-2)

    def test_second_socket_contributes(self):
        char = get_workload("compute").phases(1)[0].characterization
        s12 = evaluate(char, OP24, 12, CFG)
        s24 = evaluate(char, OP24, 24, CFG)
        assert s24.hidden.active_cores == (12, 12)
        assert s24.rate("TOT_INS") == pytest.approx(
            2 * s12.rate("TOT_INS"), rel=1e-2
        )


class TestHiddenActivity:
    def test_tlb_walks_follow_characterization(self):
        char = Characterization(tlb_dm_per_kinst=2.0, tlb_im_per_kinst=1.0)
        h = evaluate(char, OP24, 12, CFG).hidden
        ipc = h.ipc_per_socket[0]
        assert h.tlb_walks_per_cycle[0] == pytest.approx(
            12 * ipc * 3.0 / 1000.0, rel=1e-6
        )

    def test_vector_width_passthrough(self):
        char = Characterization(vector_width=4)
        assert evaluate(char, OP24, 1, CFG).hidden.vector_width == 4

    def test_remote_traffic_fraction(self):
        char = get_workload("bwaves").phases(24)[0].characterization
        h = evaluate(char, OP24, 24, CFG).hidden
        total = h.dram_read_bytes_per_s[0] + h.dram_write_bytes_per_s[0]
        assert h.remote_bytes_per_s[0] == pytest.approx(
            total * char.numa_remote_frac, rel=1e-6
        )


class TestPropertyInvariants:
    @given(
        ipc=st.floats(0.1, 3.9),
        load=st.floats(0.01, 0.4),
        l1m=st.floats(0.001, 0.3),
        l2m=st.floats(0.05, 0.9),
        l3m=st.floats(0.05, 0.9),
        cov=st.floats(0.05, 0.95),
        threads=st.integers(0, 24),
    )
    @settings(max_examples=60, deadline=None)
    def test_rates_finite_nonnegative_everywhere(
        self, ipc, load, l1m, l2m, l3m, cov, threads
    ):
        char = Characterization(
            ipc_base=ipc,
            load_frac=load,
            l1d_load_miss_rate=l1m,
            l2_miss_ratio=l2m,
            l3_miss_ratio=l3m,
            prefetch_coverage=cov,
        )
        s = evaluate(char, OP24, threads, CFG)
        assert np.all(np.isfinite(s.counter_rates))
        assert np.all(s.counter_rates >= 0.0)
        # PRF_DM + demand misses = all DRAM fills; both bounded by L3
        # accesses.
        assert s.rate("L3_TCM") <= s.rate("L3_TCA") + 1e-12
