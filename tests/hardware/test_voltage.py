"""Unit tests for the per-core voltage telemetry."""

import numpy as np
import pytest

from repro.hardware import HASWELL_EP_CONFIG, HASWELL_EP_CURVE, VoltageTelemetry

CFG = HASWELL_EP_CONFIG
OP = HASWELL_EP_CURVE.operating_point(2400)


class TestTrueVoltage:
    def test_nominal_at_idle(self):
        t = VoltageTelemetry(CFG)
        assert t.true_voltage(OP, 0) == pytest.approx(OP.voltage_v)

    def test_load_bump_under_full_load(self):
        t = VoltageTelemetry(CFG, load_bump_frac=0.008)
        full = t.true_voltage(OP, CFG.total_cores)
        assert full == pytest.approx(OP.voltage_v * 1.008)

    def test_bump_monotone_in_load(self):
        t = VoltageTelemetry(CFG)
        volts = [t.true_voltage(OP, n) for n in (0, 6, 12, 24)]
        assert all(b >= a for a, b in zip(volts, volts[1:]))

    def test_out_of_range_cores(self):
        t = VoltageTelemetry(CFG)
        with pytest.raises(ValueError):
            t.true_voltage(OP, 25)
        with pytest.raises(ValueError):
            t.true_voltage(OP, -1)


class TestReadout:
    def test_average_near_truth(self):
        t = VoltageTelemetry(CFG)
        reading = t.read_average(OP, 12, 1000, np.random.default_rng(0))
        assert reading == pytest.approx(t.true_voltage(OP, 12), abs=0.002)

    def test_quantized_to_vid_step(self):
        t = VoltageTelemetry(CFG, read_noise_v=0.0)
        reading = t.read_average(OP, 12, 1, np.random.default_rng(0))
        assert reading % t.VID_STEP == pytest.approx(0.0, abs=1e-9)

    def test_more_samples_less_spread(self):
        t = VoltageTelemetry(CFG)
        few = np.std(
            [t.read_average(OP, 12, 2, np.random.default_rng(i)) for i in range(200)]
        )
        many = np.std(
            [t.read_average(OP, 12, 500, np.random.default_rng(i)) for i in range(200)]
        )
        assert many < few

    def test_requires_samples(self):
        t = VoltageTelemetry(CFG)
        with pytest.raises(ValueError):
            t.read_average(OP, 12, 0, np.random.default_rng(0))
