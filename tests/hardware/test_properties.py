"""Property-based tests on the simulated platform's physics.

These pin the qualitative physical laws the statistical results rest
on: power monotonicity in activity, voltage and frequency; counter
identities under arbitrary characterizations; sane bounds everywhere.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hardware import (
    HASWELL_EP_CONFIG,
    HASWELL_EP_CURVE,
    HASWELL_EP_POWER_PARAMS,
    compute_power,
    evaluate,
)
from repro.workloads import Characterization

CFG = HASWELL_EP_CONFIG


def _char(ipc, load, store, branch, l1m, l2r, l3r, cov, wb):
    return Characterization(
        ipc_base=ipc,
        load_frac=load,
        store_frac=store,
        branch_frac=branch,
        l1d_load_miss_rate=l1m,
        l2_miss_ratio=l2r,
        l3_miss_ratio=l3r,
        prefetch_coverage=cov,
        writeback_ratio=wb,
    )


char_strategy = st.builds(
    _char,
    ipc=st.floats(0.1, 3.8),
    load=st.floats(0.02, 0.4),
    store=st.floats(0.01, 0.3),
    branch=st.floats(0.02, 0.25),
    l1m=st.floats(0.001, 0.3),
    l2r=st.floats(0.05, 0.9),
    l3r=st.floats(0.05, 0.9),
    cov=st.floats(0.05, 0.95),
    wb=st.floats(0.01, 1.0),
).filter(
    lambda c: c.load_frac + c.store_frac + c.branch_frac <= 0.95
)


class TestPowerPhysicsProperties:
    @given(char=char_strategy, threads=st.integers(1, 24))
    @settings(max_examples=50, deadline=None)
    def test_power_positive_and_bounded(self, char, threads):
        op = HASWELL_EP_CURVE.operating_point(2400)
        hidden = evaluate(char, op, threads, CFG).hidden
        p = compute_power(hidden, op, CFG, HASWELL_EP_POWER_PARAMS)
        assert 20.0 < p.measured_w < 500.0
        assert all(t < 120.0 for t in p.temperature_c)

    @given(char=char_strategy)
    @settings(max_examples=40, deadline=None)
    def test_power_monotone_in_threads(self, char):
        op = HASWELL_EP_CURVE.operating_point(2400)
        powers = []
        for threads in (1, 8, 16, 24):
            hidden = evaluate(char, op, threads, CFG).hidden
            powers.append(
                compute_power(hidden, op, CFG, HASWELL_EP_POWER_PARAMS).measured_w
            )
        assert all(b >= a - 1e-6 for a, b in zip(powers, powers[1:]))

    @given(char=char_strategy, threads=st.integers(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_power_monotone_in_frequency(self, char, threads):
        powers = []
        for f in (1200, 2000, 2600):
            op = HASWELL_EP_CURVE.operating_point(f)
            hidden = evaluate(char, op, threads, CFG).hidden
            powers.append(
                compute_power(hidden, op, CFG, HASWELL_EP_POWER_PARAMS).measured_w
            )
        assert all(b >= a - 1e-6 for a, b in zip(powers, powers[1:]))

    @given(char=char_strategy, threads=st.integers(0, 24))
    @settings(max_examples=50, deadline=None)
    def test_counter_identities_universal(self, char, threads):
        op = HASWELL_EP_CURVE.operating_point(2000)
        s = evaluate(char, op, threads, CFG)
        assert s.rate("L1_TCM") == pytest.approx(
            s.rate("L1_DCM") + s.rate("L1_ICM"), rel=1e-9, abs=1e-12
        )
        assert s.rate("BR_CN") == pytest.approx(
            s.rate("BR_MSP") + s.rate("BR_PRC"), rel=1e-9, abs=1e-12
        )
        assert s.rate("L3_TCM") <= s.rate("L3_TCA") + 1e-12
        assert np.all(s.counter_rates >= 0.0)
        assert np.all(np.isfinite(s.counter_rates))

    @given(char=char_strategy)
    @settings(max_examples=30, deadline=None)
    def test_ipc_never_exceeds_issue_width(self, char):
        op = HASWELL_EP_CURVE.operating_point(2400)
        hidden = evaluate(char, op, 24, CFG).hidden
        assert all(0.0 <= ipc <= CFG.issue_width for ipc in hidden.ipc_per_socket)

    @given(char=char_strategy, threads=st.integers(1, 24))
    @settings(max_examples=30, deadline=None)
    def test_bandwidth_never_exceeds_peak(self, char, threads):
        op = HASWELL_EP_CURVE.operating_point(2600)
        hidden = evaluate(char, op, threads, CFG).hidden
        for s in range(CFG.sockets):
            gbs = (
                hidden.dram_read_bytes_per_s[s]
                + hidden.dram_write_bytes_per_s[s]
            ) / 1e9
            assert gbs <= CFG.peak_dram_bw_gbs * 1.01
