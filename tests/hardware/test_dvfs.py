"""Unit tests for DVFS states and the V/f curve."""

import pytest

from repro.hardware import (
    HASWELL_EP_CURVE,
    PAPER_FREQUENCIES_MHZ,
    SELECTION_FREQUENCY_MHZ,
    OperatingPoint,
    PState,
    VoltageFrequencyCurve,
)


class TestPState:
    def test_valid(self):
        p = PState(2400, 0.97)
        assert p.frequency_mhz == 2400

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            PState(0, 0.9)

    def test_rejects_implausible_voltage(self):
        with pytest.raises(ValueError):
            PState(2400, 2.0)
        with pytest.raises(ValueError):
            PState(2400, 0.1)


class TestCurve:
    def test_paper_frequencies_supported(self):
        for f in PAPER_FREQUENCIES_MHZ:
            v = HASWELL_EP_CURVE.voltage_at(f)
            assert 0.6 < v < 1.1

    def test_five_paper_frequencies(self):
        # "5 distinct operating frequencies between 1200 and 2600 MHz".
        assert len(PAPER_FREQUENCIES_MHZ) == 5
        assert min(PAPER_FREQUENCIES_MHZ) == 1200
        assert max(PAPER_FREQUENCIES_MHZ) == 2600
        assert SELECTION_FREQUENCY_MHZ in PAPER_FREQUENCIES_MHZ

    def test_voltage_monotone_in_frequency(self):
        volts = [
            HASWELL_EP_CURVE.voltage_at(f)
            for f in range(1200, 2601, 100)
        ]
        assert all(b >= a for a, b in zip(volts, volts[1:]))

    def test_interpolation_between_anchors(self):
        v_mid = HASWELL_EP_CURVE.voltage_at(1400)
        v_lo = HASWELL_EP_CURVE.voltage_at(1200)
        v_hi = HASWELL_EP_CURVE.voltage_at(1600)
        assert v_mid == pytest.approx((v_lo + v_hi) / 2)

    def test_anchor_exact(self):
        assert HASWELL_EP_CURVE.voltage_at(2400) == pytest.approx(0.97)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside supported range"):
            HASWELL_EP_CURVE.voltage_at(800)
        with pytest.raises(ValueError):
            HASWELL_EP_CURVE.voltage_at(3000)

    def test_operating_point(self):
        op = HASWELL_EP_CURVE.operating_point(2000)
        assert isinstance(op, OperatingPoint)
        assert op.frequency_hz == pytest.approx(2.0e9)
        assert op.frequency_ghz == pytest.approx(2.0)

    def test_construction_validation(self):
        with pytest.raises(ValueError, match="at least two"):
            VoltageFrequencyCurve((PState(1200, 0.7),))
        with pytest.raises(ValueError, match="duplicate"):
            VoltageFrequencyCurve((PState(1200, 0.7), PState(1200, 0.8)))
        with pytest.raises(ValueError, match="non-decreasing"):
            VoltageFrequencyCurve((PState(1200, 0.9), PState(2400, 0.7)))

    def test_pstates_sorted(self):
        curve = VoltageFrequencyCurve(
            (PState(2400, 0.97), PState(1200, 0.70))
        )
        freqs = [p.frequency_mhz for p in curve.pstates]
        assert freqs == sorted(freqs)
