"""Unit tests for the ARM platform and the latent-sensitivity knob."""

import numpy as np
import pytest

from repro.hardware import (
    CORTEX_A15_CONFIG,
    CORTEX_A15_CURVE,
    CORTEX_A15_POWER_PARAMS,
    HASWELL_EP_CONFIG,
    Platform,
    compute_power,
    evaluate,
)
from repro.hardware.power import PowerModelParams
from repro.workloads import Characterization, get_workload


class TestArmPlatform:
    def test_board_scale_power(self):
        p = Platform(CORTEX_A15_CONFIG, CORTEX_A15_POWER_PARAMS, power_offset_sigma_w=0.05)
        idle = p.execute(get_workload("idle"), 600, 1)
        busy = p.execute(get_workload("compute"), 1800, 4)
        assert 1.0 < idle.phases[0].power_breakdown.measured_w < 4.0
        assert 4.0 < busy.phases[0].power_breakdown.measured_w < 12.0

    def test_single_cluster(self):
        assert CORTEX_A15_CONFIG.sockets == 1
        assert CORTEX_A15_CONFIG.total_cores == 4
        with pytest.raises(ValueError):
            Platform(CORTEX_A15_CONFIG, CORTEX_A15_POWER_PARAMS).execute(
                get_workload("compute"), 1800, 8
            )

    def test_a15_pmu_has_six_slots(self):
        assert CORTEX_A15_CONFIG.programmable_slots == 6

    def test_dvfs_range(self):
        assert CORTEX_A15_CURVE.min_frequency_mhz == 600
        assert CORTEX_A15_CURVE.max_frequency_mhz == 1800

    def test_memory_wall_much_harsher(self):
        """LPDDR3 at 10.5 GB/s: four streaming cores saturate easily."""
        char = get_workload("memory_read").phases(4)[0].characterization
        op = CORTEX_A15_CURVE.operating_point(1800)
        h = evaluate(char, op, 4, CORTEX_A15_CONFIG).hidden
        assert h.bw_utilization[0] == pytest.approx(1.0)


class TestLatentSensitivity:
    def _dyn(self, sensitivity, latent):
        params = PowerModelParams(latent_sensitivity=sensitivity)
        char = Characterization(ipc_base=2.0, latent_efficiency=latent)
        op = Platform().cfg.curve.operating_point(2400)
        hidden = evaluate(char, op, 12, HASWELL_EP_CONFIG).hidden
        return compute_power(hidden, op, HASWELL_EP_CONFIG, params).dynamic_core_w[0]

    def test_full_sensitivity_passes_latent_through(self):
        assert self._dyn(1.0, 1.2) == pytest.approx(
            1.2 * self._dyn(1.0, 1.0), rel=1e-9
        )

    def test_reduced_sensitivity_dampens_latent(self):
        full = self._dyn(1.0, 1.2) / self._dyn(1.0, 1.0)
        damped = self._dyn(0.3, 1.2) / self._dyn(0.3, 1.0)
        assert damped == pytest.approx(1.06, rel=1e-6)
        assert damped < full

    def test_zero_sensitivity_ignores_latent(self):
        assert self._dyn(0.0, 1.3) == pytest.approx(
            self._dyn(0.0, 0.8), rel=1e-9
        )

    def test_arm_sensitivity_is_reduced(self):
        assert CORTEX_A15_POWER_PARAMS.latent_sensitivity < 0.5
