"""Unit tests for the ground-truth bottom-up power model."""

import pytest

from repro.hardware import (
    HASWELL_EP_CONFIG,
    HASWELL_EP_CURVE,
    HASWELL_EP_POWER_PARAMS,
    PowerModelParams,
    compute_power,
    evaluate,
)
from repro.workloads import Characterization, get_workload

CFG = HASWELL_EP_CONFIG


def _power(workload_name, freq_mhz, threads, params=HASWELL_EP_POWER_PARAMS):
    w = get_workload(workload_name)
    char = w.phases(max(threads, 1))[0].characterization
    op = HASWELL_EP_CURVE.operating_point(freq_mhz)
    hidden = evaluate(char, op, threads, CFG).hidden
    return compute_power(hidden, op, CFG, params)


class TestRange:
    def test_idle_power_plausible(self):
        p = _power("idle", 1200, 0)
        assert 30.0 < p.measured_w < 80.0

    def test_full_load_plausible(self):
        p = _power("compute", 2600, 24)
        assert 120.0 < p.measured_w < 350.0

    def test_idle_below_any_load(self):
        idle = _power("idle", 2400, 0).measured_w
        for w in ("busywait", "compute", "memory_read", "matmul"):
            assert _power(w, 2400, 24).measured_w > idle + 20.0


class TestMonotonicity:
    def test_increases_with_threads(self):
        prev = 0.0
        for threads in (1, 4, 8, 16, 24):
            cur = _power("compute", 2400, threads).measured_w
            assert cur > prev
            prev = cur

    def test_increases_with_frequency(self):
        prev = 0.0
        for f in (1200, 1600, 2000, 2400, 2600):
            cur = _power("compute", f, 24).measured_w
            assert cur > prev
            prev = cur

    def test_superlinear_in_frequency(self):
        """Dynamic power ∝ V²f with V rising in f ⇒ superlinear."""
        p12 = _power("compute", 1200, 24).measured_w
        p26 = _power("compute", 2600, 24).measured_w
        idle12 = _power("idle", 1200, 0).measured_w
        idle26 = _power("idle", 2600, 0).measured_w
        dyn_ratio = (p26 - idle26) / (p12 - idle12)
        assert dyn_ratio > 2600 / 1200  # more than linear


class TestDecomposition:
    def test_components_sum_to_socket_power(self):
        p = _power("md", 2400, 24)
        for s in range(CFG.sockets):
            total = (
                p.dynamic_core_w[s]
                + p.uncore_w[s]
                + p.static_w[s]
                + p.board_w[s]
            )
            assert total == pytest.approx(p.per_socket_w[s], rel=1e-9)

    def test_measured_is_socket_sum(self):
        p = _power("md", 2400, 24)
        assert p.measured_w == pytest.approx(sum(p.per_socket_w))

    def test_idle_has_no_meaningful_core_dynamic(self):
        p = _power("idle", 2400, 0)
        assert p.dynamic_core_w[0] < 1.0

    def test_memory_workload_has_large_uncore(self):
        mem = _power("memory_read", 2400, 24)
        cpu = _power("busywait", 2400, 24)
        assert mem.uncore_w[0] > cpu.uncore_w[0] + 5.0

    def test_temperature_rises_with_load(self):
        idle = _power("idle", 2400, 0)
        busy = _power("compute", 2600, 24)
        assert busy.temperature_c[0] > idle.temperature_c[0] + 5.0
        # Leakage follows temperature.
        assert busy.static_w[0] > idle.static_w[0]


class TestLatentEffects:
    def test_latent_efficiency_scales_dynamic_power(self):
        base = Characterization(ipc_base=2.0, latent_efficiency=1.0)
        hot = base.with_updates(latent_efficiency=1.2)
        op = HASWELL_EP_CURVE.operating_point(2400)
        p_base = compute_power(evaluate(base, op, 24, CFG).hidden, op, CFG)
        p_hot = compute_power(evaluate(hot, op, 24, CFG).hidden, op, CFG)
        assert p_hot.dynamic_core_w[0] == pytest.approx(
            1.2 * p_base.dynamic_core_w[0], rel=0.02
        )

    def test_vector_width_superlinear(self):
        """AVX at the same FP op rate costs more than 2x SSE per op."""
        op = HASWELL_EP_CURVE.operating_point(2400)
        sse = Characterization(ipc_base=2.0, fp_frac=0.5, vector_width=2)
        avx = sse.with_updates(vector_width=4)
        p_sse = compute_power(evaluate(sse, op, 24, CFG).hidden, op, CFG)
        p_avx = compute_power(evaluate(avx, op, 24, CFG).hidden, op, CFG)
        assert p_avx.dynamic_core_w[0] > p_sse.dynamic_core_w[0]

    def test_saturation_penalty_applies(self):
        params_no_pen = PowerModelParams(saturation_penalty=0.0)
        with_pen = _power("memory_read", 2400, 24).measured_w
        without = _power("memory_read", 2400, 24, params_no_pen).measured_w
        assert with_pen > without


class TestParams:
    def test_rejects_bad_vr_efficiency(self):
        with pytest.raises(ValueError):
            PowerModelParams(vr_efficiency=0.3)

    def test_rejects_bad_vref(self):
        with pytest.raises(ValueError):
            PowerModelParams(v_ref=-1.0)
