"""Unit tests for the randomized workload generator."""

import pytest

from repro.workloads import (
    DEFAULT_SPACE,
    WIDE_SPACE,
    GeneratorSpace,
    generate_workloads,
)


class TestGenerator:
    def test_count_and_names(self):
        ws = generate_workloads(5)
        assert len(ws) == 5
        assert [w.name for w in ws] == [f"gen{i:03d}" for i in range(5)]

    def test_deterministic_in_seed(self):
        a = generate_workloads(4, seed=1)
        b = generate_workloads(4, seed=1)
        for wa, wb in zip(a, b):
            assert wa.characterization == wb.characterization

    def test_seed_changes_output(self):
        a = generate_workloads(4, seed=1)
        b = generate_workloads(4, seed=2)
        assert any(
            wa.characterization != wb.characterization for wa, wb in zip(a, b)
        )

    def test_characterizations_within_space(self):
        ws = generate_workloads(50, space=DEFAULT_SPACE, seed=3)
        for w in ws:
            c = w.characterization
            lo, hi = DEFAULT_SPACE.ipc_base
            assert lo <= c.ipc_base <= hi
            lo, hi = DEFAULT_SPACE.l3_miss_ratio
            assert lo <= c.l3_miss_ratio <= hi
            assert c.vector_width in (1, 2, 4)

    def test_instruction_mix_always_feasible(self):
        for w in generate_workloads(100, seed=9):
            c = w.characterization
            assert c.load_frac + c.store_frac + c.branch_frac <= 0.951

    def test_wide_space_spans_latents(self):
        ws = generate_workloads(200, space=WIDE_SPACE, seed=5)
        latents = [w.characterization.latent_efficiency for w in ws]
        assert min(latents) < 0.9 and max(latents) > 1.1

    def test_suite_tag_and_threads(self):
        w = generate_workloads(1, thread_counts=(2, 4))[0]
        assert w.suite == "synthetic"
        assert w.default_thread_counts == (2, 4)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            generate_workloads(0)

    def test_custom_space(self):
        space = GeneratorSpace(ipc_base=(2.0, 2.1))
        ws = generate_workloads(10, space=space, seed=0)
        assert all(2.0 <= w.characterization.ipc_base <= 2.1 for w in ws)
