"""Unit tests for the roco2 and SPEC OMP2012 workload suites."""

import numpy as np
import pytest

from repro.workloads import (
    EXCLUDED_BENCHMARKS,
    ROCO2_KERNELS,
    ROCO2_THREAD_COUNTS,
    SPEC_OMP2012_BENCHMARKS,
    IdleWorkload,
    all_workloads,
    get_workload,
    roco2_suite,
    spec_omp2012_suite,
    suite,
)


class TestRoco2:
    def test_ten_kernels_incl_idle(self):
        names = [w.name for w in ROCO2_KERNELS]
        assert len(names) == 10
        assert "idle" in names
        for expected in ("busywait", "compute", "sinus", "sqrt", "matmul",
                         "memory_read", "memory_write", "memory_copy", "addpd"):
            assert expected in names

    def test_all_tagged_roco2(self):
        assert all(w.suite == "roco2" for w in ROCO2_KERNELS)

    def test_single_phase_kernels(self):
        for w in ROCO2_KERNELS:
            assert len(w.phases(8)) == 1

    def test_idle_always_zero_active(self):
        idle = IdleWorkload()
        for threads in (1, 8):
            assert idle.phases(threads)[0].active_threads == 0

    def test_thread_sweep_defined(self):
        assert ROCO2_THREAD_COUNTS[0] == 1
        assert ROCO2_THREAD_COUNTS[-1] == 24
        busy = get_workload("busywait")
        assert busy.default_thread_counts == ROCO2_THREAD_COUNTS

    def test_memory_kernels_are_memory_bound(self):
        mem = get_workload("memory_read").phases(1)[0].characterization
        cpu = get_workload("compute").phases(1)[0].characterization
        assert mem.l3_miss_ratio > 5 * cpu.l3_miss_ratio
        assert mem.l1d_load_miss_rate > 10 * cpu.l1d_load_miss_rate


class TestSpec:
    def test_ten_benchmarks(self):
        # OMP2012 has 14; the paper excludes 4 that failed to build.
        assert len(SPEC_OMP2012_BENCHMARKS) == 10
        assert len(EXCLUDED_BENCHMARKS) == 4

    def test_excluded_not_present(self):
        names = {w.name for w in SPEC_OMP2012_BENCHMARKS}
        assert not names & set(EXCLUDED_BENCHMARKS)

    def test_paper_benchmarks_present(self):
        names = {w.name for w in SPEC_OMP2012_BENCHMARKS}
        assert {"md", "nab", "ilbdc", "swim", "bwaves"} <= names

    def test_phase_structure_multi_phase(self):
        for w in SPEC_OMP2012_BENCHMARKS:
            phases = w.phases(24)
            assert len(phases) >= 3
            assert sum(p.duration_s for p in phases) > 30.0

    def test_phases_deterministic(self):
        a = get_workload("md").phases(24)
        # A fresh object must regenerate the identical structure.
        fresh = [w for w in spec_omp2012_suite() if w.name == "md"][0]
        b = fresh.phases(24)
        assert len(a) == len(b)
        for pa, pb in zip(a, b):
            assert pa.duration_s == pb.duration_s
            assert pa.characterization == pb.characterization

    def test_internal_variability(self):
        """Phases of one benchmark differ (the Fig. 5b variability)."""
        phases = get_workload("mgrid331").phases(24)
        ipcs = {p.characterization.ipc_base for p in phases}
        assert len(ipcs) > 1

    def test_latents_per_benchmark_constant_across_phases(self):
        for w in SPEC_OMP2012_BENCHMARKS:
            latents = {p.characterization.latent_efficiency for p in w.phases(24)}
            assert len(latents) == 1

    def test_md_nab_low_latent_efficiency(self):
        """The Fig. 5a overestimation mechanism."""
        by_name = {w.name: w for w in SPEC_OMP2012_BENCHMARKS}
        assert by_name["md"].base.latent_efficiency < 0.95
        assert by_name["nab"].base.latent_efficiency < 0.95

    def test_suites_span_wider_latent_range_than_roco2(self):
        spec_latents = [
            w.base.latent_efficiency for w in SPEC_OMP2012_BENCHMARKS
        ]
        roco_latents = [
            w.characterization.latent_efficiency
            for w in ROCO2_KERNELS
            if hasattr(w, "characterization")
        ]
        assert np.ptp(spec_latents) > 2 * np.ptp(roco_latents)


class TestRegistry:
    def test_all_workloads_is_both_suites(self):
        assert len(all_workloads()) == 20

    def test_get_workload(self):
        assert get_workload("sqrt").name == "sqrt"
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("doom")

    def test_suite_lookup(self):
        assert len(suite("roco2")) == 10
        assert len(suite("spec_omp2012")) == 10
        with pytest.raises(KeyError):
            suite("parsec")

    def test_names_globally_unique(self):
        names = [w.name for w in all_workloads()]
        assert len(set(names)) == len(names)
