"""Unit tests for workload abstractions and characterizations."""

import pytest

from repro.workloads import Characterization, PhaseSpec, StaticWorkload


class TestCharacterization:
    def test_defaults_valid(self):
        Characterization()

    def test_rejects_out_of_range_fractions(self):
        with pytest.raises(ValueError):
            Characterization(load_frac=1.5)
        with pytest.raises(ValueError):
            Characterization(branch_mispred_rate=-0.1)

    def test_rejects_infeasible_mix(self):
        with pytest.raises(ValueError, match="exceed 1"):
            Characterization(load_frac=0.5, store_frac=0.4, branch_frac=0.3)

    def test_rejects_ipc_above_issue_width(self):
        with pytest.raises(ValueError):
            Characterization(ipc_base=4.5)

    def test_rejects_bad_vector_width(self):
        with pytest.raises(ValueError):
            Characterization(vector_width=3)

    def test_rejects_implausible_latent(self):
        with pytest.raises(ValueError):
            Characterization(latent_efficiency=0.1)
        with pytest.raises(ValueError):
            Characterization(uop_expansion=5.0)

    def test_with_updates_validates(self):
        c = Characterization()
        updated = c.with_updates(ipc_base=2.0)
        assert updated.ipc_base == 2.0
        assert c.ipc_base == 1.0  # original untouched
        with pytest.raises(ValueError):
            c.with_updates(l3_miss_ratio=2.0)

    def test_frozen(self):
        c = Characterization()
        with pytest.raises(Exception):
            c.ipc_base = 3.0


class TestBlend:
    def test_weighted_average(self):
        a = Characterization(ipc_base=1.0, load_frac=0.2)
        b = Characterization(ipc_base=3.0, load_frac=0.4)
        mixed = Characterization.blend([(a, 1.0), (b, 1.0)])
        assert mixed.ipc_base == pytest.approx(2.0)
        assert mixed.load_frac == pytest.approx(0.3)

    def test_vector_width_from_heaviest(self):
        a = Characterization(vector_width=1)
        b = Characterization(vector_width=4)
        assert Characterization.blend([(a, 0.9), (b, 0.1)]).vector_width == 1
        assert Characterization.blend([(a, 0.1), (b, 0.9)]).vector_width == 4

    def test_empty_or_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            Characterization.blend([])
        with pytest.raises(ValueError):
            Characterization.blend([(Characterization(), 0.0)])


class TestPhaseSpec:
    def test_valid(self):
        PhaseSpec("p", 1.0, Characterization(), 4)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            PhaseSpec("p", 0.0, Characterization(), 4)

    def test_rejects_negative_threads(self):
        with pytest.raises(ValueError):
            PhaseSpec("p", 1.0, Characterization(), -1)


class TestStaticWorkload:
    def test_single_phase(self):
        w = StaticWorkload("k", Characterization(), duration_s=5.0)
        phases = w.phases(8)
        assert len(phases) == 1
        assert phases[0].active_threads == 8
        assert phases[0].duration_s == 5.0
        assert phases[0].name == "k.loop"

    def test_validate_threads(self):
        w = StaticWorkload("k", Characterization())
        w.validate_threads(24, 24)
        with pytest.raises(ValueError):
            w.validate_threads(25, 24)
        with pytest.raises(ValueError):
            w.validate_threads(0, 24)
