"""Fixtures for the fault-injection suite.

The CI ``chaos`` job re-runs this suite with several values of
``REPRO_FAULT_SEED`` (distinct fault streams over the same physics), so
tests written against the ``fault_seed`` fixture must hold for *any*
seed — only tests that pin a specific scenario hard-code one.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def fault_seed() -> int:
    """Fault-stream seed; overridden by the CI chaos matrix."""
    return int(os.environ.get("REPRO_FAULT_SEED", "0"))
