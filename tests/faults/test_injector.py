"""FaultInjector + watchdog: every fault class is injected
deterministically and detected by physical plausibility alone."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    AcquisitionError,
    FaultInjector,
    FaultPlan,
    FaultyPlatform,
    OVERFLOW_RATE_PER_S,
    PLAUSIBLE_MAX_RATE_PER_S,
    RunFailure,
    STUCK_RUN_LENGTH,
    validate_profiles,
    validate_trace,
)
from repro.hardware import EventSet, FIXED_COUNTERS
from repro.hardware.sensors import SensorCalibration, PowerSensor, SensorFaults
from repro.tracing import haecsim_profiles, trace_run
from repro.workloads import get_workload

EVENTS = EventSet(events=tuple(FIXED_COUNTERS) + ("PRF_DM",))


@pytest.fixture(scope="module")
def clean_trace(platform):
    run = platform.execute(get_workload("compute"), 2400, 8)
    return run, trace_run(platform, run, EVENTS, sampling_interval_s=0.1)


def _corrupted(trace, plan, seed, attempt=0):
    return FaultInjector(plan, seed).corrupt_trace(trace, attempt=attempt)


class TestDeterminism:
    def test_same_seed_same_decisions(self, fault_seed):
        plan = FaultPlan(run_failure_rate=0.3, fault_seed=fault_seed)
        a = FaultInjector(plan, 7)
        b = FaultInjector(plan, 7)
        for run_index in range(50):
            crashed_a = crashed_b = False
            try:
                a.check_run("w", 2400, 8, run_index)
            except RunFailure:
                crashed_a = True
            try:
                b.check_run("w", 2400, 8, run_index)
            except RunFailure:
                crashed_b = True
            assert crashed_a == crashed_b

    def test_same_seed_bit_identical_corruption(self, clean_trace, fault_seed):
        _, trace = clean_trace
        plan = FaultPlan.chaos(0.8, fault_seed=fault_seed)
        t1 = _corrupted(trace, plan, 7)
        t2 = _corrupted(trace, plan, 7)
        assert set(t1.metrics) == set(t2.metrics)
        for name in t1.metrics:
            np.testing.assert_array_equal(
                t1.metrics[name].values, t2.metrics[name].values
            )

    def test_fault_seed_decorrelates(self, clean_trace):
        _, trace = clean_trace
        t1 = _corrupted(trace, FaultPlan.chaos(0.8, fault_seed=1), 7)
        t2 = _corrupted(trace, FaultPlan.chaos(0.8, fault_seed=2), 7)
        same = all(
            t1.metrics[n].values.shape == t2.metrics[n].values.shape
            and np.array_equal(
                t1.metrics[n].values, t2.metrics[n].values, equal_nan=True
            )
            for n in t1.metrics
            if n in t2.metrics
        )
        assert not same

    def test_retries_are_fresh_draws(self, fault_seed):
        # With a 50% crash rate some cell must crash on attempt 0 and
        # succeed on attempt 1 — retries draw independently.
        plan = FaultPlan(run_failure_rate=0.5, fault_seed=fault_seed)
        injector = FaultInjector(plan, 7)
        recovered = 0
        for run_index in range(100):
            try:
                injector.check_run("w", 2400, 8, run_index, attempt=0)
            except RunFailure:
                try:
                    injector.check_run("w", 2400, 8, run_index, attempt=1)
                    recovered += 1
                except RunFailure:
                    pass
        assert recovered > 0


class TestRunFaults:
    def test_kill_cells_match_every_attempt(self):
        plan = FaultPlan(kill_cells=("compute:2400:*",))
        injector = FaultInjector(plan, 7)
        for attempt in range(5):
            with pytest.raises(RunFailure) as exc_info:
                injector.check_run("compute", 2400, 8, 0, attempt=attempt)
            assert exc_info.value.kind == "cell-killed"
        # A different frequency does not match.
        injector.check_run("compute", 1200, 8, 0)

    def test_zero_rate_never_crashes(self):
        injector = FaultInjector(FaultPlan(), 7)
        for run_index in range(20):
            injector.check_run("w", 2400, 8, run_index)
        assert injector.fault_counts() == {}

    def test_dead_node_rate(self, fault_seed):
        plan = FaultPlan(dead_node_rate=0.5, fault_seed=fault_seed)
        injector = FaultInjector(plan, 7)
        dead = [injector.node_is_dead(i) for i in range(200)]
        assert 0 < sum(dead) < 200
        # Decision is stable per node.
        again = FaultInjector(plan, 7)
        assert dead == [again.node_is_dead(i) for i in range(200)]


class TestTraceCorruption:
    def test_input_trace_not_mutated(self, clean_trace):
        _, trace = clean_trace
        before = {n: s.values.copy() for n, s in trace.metrics.items()}
        _corrupted(trace, FaultPlan.chaos(1.0), 7)
        for name, values in before.items():
            np.testing.assert_array_equal(trace.metrics[name].values, values)

    def test_nan_samples_detected(self, clean_trace):
        _, trace = clean_trace
        bad = _corrupted(trace, FaultPlan(nan_sample_rate=0.2), 7)
        assert np.isnan(bad.metrics["power"].values).any()
        with pytest.raises(AcquisitionError) as exc_info:
            validate_trace(bad)
        assert exc_info.value.kind == "sensor-dropout"

    def test_stuck_sensor_detected(self, clean_trace):
        _, trace = clean_trace
        bad = _corrupted(trace, FaultPlan(sensor_stuck_rate=1.0), 7)
        values = bad.metrics["power"].values
        tail = values[-STUCK_RUN_LENGTH:]
        assert np.all(tail == tail[0])
        with pytest.raises(AcquisitionError) as exc_info:
            validate_trace(bad)
        assert exc_info.value.kind == "sensor-stuck"

    def test_counter_overflow_detected(self, clean_trace):
        _, trace = clean_trace
        bad = _corrupted(trace, FaultPlan(counter_overflow_rate=1.0), 7)
        peaks = [
            float(s.values.max())
            for n, s in bad.metrics.items()
            if n.startswith("papi:")
        ]
        assert max(peaks) == OVERFLOW_RATE_PER_S
        assert OVERFLOW_RATE_PER_S > PLAUSIBLE_MAX_RATE_PER_S
        with pytest.raises(AcquisitionError) as exc_info:
            validate_trace(bad)
        assert exc_info.value.kind == "counter-overflow"

    def test_truncation_detected_as_phase_loss(self, clean_trace):
        run, trace = clean_trace
        bad = _corrupted(trace, FaultPlan(trace_truncation_rate=1.0), 7)
        assert bad.duration_s < trace.duration_s
        validate_trace(bad)  # streams themselves are plausible
        with pytest.raises(AcquisitionError) as exc_info:
            validate_profiles(haecsim_profiles(bad), run)
        assert exc_info.value.kind == "phase-loss"

    def test_clean_trace_validates(self, clean_trace):
        run, trace = clean_trace
        validate_trace(trace)
        validate_profiles(haecsim_profiles(trace), run)

    def test_inactive_plan_is_identity(self, clean_trace):
        _, trace = clean_trace
        assert _corrupted(trace, FaultPlan(), 7) is trace


class TestSensorFaults:
    def _sensor(self):
        return PowerSensor(
            SensorCalibration(gain=1.0, offset_w=0.0), sample_rate_hz=100.0
        )

    def test_stuck_channel_flat_lines(self, rng):
        raw = self._sensor().sample(
            100.0, 2.0, rng, faults=SensorFaults(stuck=True)
        )
        tail = raw[-STUCK_RUN_LENGTH:]
        assert np.all(tail == tail[0])

    def test_dropout_produces_nan_block(self, rng):
        raw = self._sensor().sample(
            100.0, 2.0, rng, faults=SensorFaults(dropout=True)
        )
        assert np.isnan(raw).any()

    def test_no_faults_matches_faultless_call(self):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        clean = self._sensor().sample(100.0, 2.0, rng_a)
        inert = self._sensor().sample(
            100.0, 2.0, rng_b, faults=SensorFaults()
        )
        np.testing.assert_array_equal(clean, inert)

    def test_nan_rate_validated(self):
        with pytest.raises(ValueError):
            SensorFaults(nan_rate=1.5)


class TestFaultyPlatform:
    def test_physics_identical_to_base(self, platform):
        faulty = FaultyPlatform(platform, FaultPlan())
        base_run = platform.execute(get_workload("compute"), 2400, 8)
        faulty_run = faulty.execute(get_workload("compute"), 2400, 8)
        assert base_run.total_duration_s == faulty_run.total_duration_s
        assert (
            base_run.phases[0].power_breakdown.measured_w
            == faulty_run.phases[0].power_breakdown.measured_w
        )

    def test_crashes_per_plan(self, platform):
        faulty = FaultyPlatform(
            platform, FaultPlan(kill_cells=("compute:*",))
        )
        with pytest.raises(RunFailure):
            faulty.execute(get_workload("compute"), 2400, 8)
        faulty.execute(get_workload("idle"), 2400, 1)
