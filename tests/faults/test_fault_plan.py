"""FaultPlan: validation, composition, scaling."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan


class TestValidation:
    def test_default_plan_inactive(self):
        plan = FaultPlan()
        assert not plan.any_active
        assert not plan.corrupts_traces

    def test_rates_bounded(self):
        with pytest.raises(ValueError, match="run_failure_rate"):
            FaultPlan(run_failure_rate=1.5)
        with pytest.raises(ValueError, match="nan_sample_rate"):
            FaultPlan(nan_sample_rate=-0.1)

    def test_kill_cells_alone_is_active(self):
        plan = FaultPlan(kill_cells=("compute:*",))
        assert plan.any_active
        assert not plan.corrupts_traces

    def test_trace_corruption_classification(self):
        assert FaultPlan(trace_truncation_rate=0.1).corrupts_traces
        assert FaultPlan(nan_sample_rate=0.1).corrupts_traces
        assert not FaultPlan(run_failure_rate=0.5).corrupts_traces
        assert not FaultPlan(dead_node_rate=0.5).corrupts_traces


class TestComposition:
    def test_scaled_multiplies_and_caps(self):
        plan = FaultPlan(run_failure_rate=0.4, nan_sample_rate=0.6)
        half = plan.scaled(0.5)
        assert half.run_failure_rate == pytest.approx(0.2)
        capped = plan.scaled(10.0)
        assert capped.nan_sample_rate == pytest.approx(1.0)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            FaultPlan().scaled(-1.0)

    def test_combine_takes_max_and_unions_kills(self):
        a = FaultPlan(run_failure_rate=0.1, kill_cells=("a:*",))
        b = FaultPlan(run_failure_rate=0.3, sensor_stuck_rate=0.2,
                      kill_cells=("a:*", "b:*"))
        c = a.combine(b)
        assert c.run_failure_rate == pytest.approx(0.3)
        assert c.sensor_stuck_rate == pytest.approx(0.2)
        assert c.kill_cells == ("a:*", "b:*")

    def test_chaos_exercises_every_class(self):
        plan = FaultPlan.chaos(0.1)
        assert plan.any_active and plan.corrupts_traces
        assert plan.run_failure_rate == pytest.approx(0.1)
        assert 0.0 < plan.dead_node_rate <= 1.0

    def test_describe_names_active_faults(self):
        text = FaultPlan(sensor_stuck_rate=0.25).describe()
        assert "sensor_stuck_rate=0.25" in text
        assert FaultPlan().describe() == "FaultPlan(inactive)"
