"""Unit tests for the PowerDataset container."""

import numpy as np
import pytest

from repro.acquisition import PowerDataset
from repro.hardware import COUNTER_NAMES


def _dataset(n=6):
    rng = np.random.default_rng(0)
    return PowerDataset(
        counters=rng.uniform(0.0, 1.0, size=(n, 54)),
        power_w=rng.uniform(50.0, 250.0, size=n),
        voltage_v=np.full(n, 0.97),
        frequency_mhz=np.array([1200, 1200, 2400, 2400, 2400, 2600][:n], dtype=float),
        threads=np.array([1, 24, 1, 24, 24, 8][:n]),
        workloads=tuple(["a", "a", "a", "b", "b", "c"][:n]),
        suites=tuple(["roco2", "roco2", "roco2", "spec_omp2012", "spec_omp2012", "roco2"][:n]),
        phase_names=tuple(f"p{i}" for i in range(n)),
    )


class TestConstruction:
    def test_valid(self):
        ds = _dataset()
        assert ds.n_samples == 6

    def test_rejects_wrong_counter_width(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            PowerDataset(
                counters=ds.counters[:, :10],
                power_w=ds.power_w,
                voltage_v=ds.voltage_v,
                frequency_mhz=ds.frequency_mhz,
                threads=ds.threads,
                workloads=ds.workloads,
                suites=ds.suites,
                phase_names=ds.phase_names,
            )

    def test_rejects_row_mismatch(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            PowerDataset(
                counters=ds.counters,
                power_w=ds.power_w[:3],
                voltage_v=ds.voltage_v,
                frequency_mhz=ds.frequency_mhz,
                threads=ds.threads,
                workloads=ds.workloads,
                suites=ds.suites,
                phase_names=ds.phase_names,
            )

    def test_rejects_nonpositive_power(self):
        ds = _dataset()
        bad_power_w = ds.power_w.copy()
        bad_power_w[0] = 0.0
        with pytest.raises(ValueError, match="positive"):
            PowerDataset(
                counters=ds.counters,
                power_w=bad_power_w,
                voltage_v=ds.voltage_v,
                frequency_mhz=ds.frequency_mhz,
                threads=ds.threads,
                workloads=ds.workloads,
                suites=ds.suites,
                phase_names=ds.phase_names,
            )


class TestAccess:
    def test_column_by_name(self):
        ds = _dataset()
        idx = COUNTER_NAMES.index("PRF_DM")
        assert np.array_equal(ds.column("PRF_DM"), ds.counters[:, idx])

    def test_counter_matrix_order(self):
        ds = _dataset()
        m = ds.counter_matrix(["BR_MSP", "PRF_DM"])
        assert np.array_equal(m[:, 0], ds.column("BR_MSP"))
        assert np.array_equal(m[:, 1], ds.column("PRF_DM"))

    def test_frequency_hz(self):
        ds = _dataset()
        assert ds.frequency_hz[0] == pytest.approx(1.2e9)


class TestFilterSubset:
    def test_filter_by_suite(self):
        ds = _dataset()
        roco = ds.filter(suite="roco2")
        assert roco.n_samples == 4
        assert all(s == "roco2" for s in roco.suites)

    def test_filter_by_frequency(self):
        ds = _dataset()
        assert ds.filter(frequency_mhz=2400).n_samples == 3

    def test_filter_by_workloads(self):
        ds = _dataset()
        sub = ds.filter(workloads=["b", "c"])
        assert set(sub.workloads) == {"b", "c"}

    def test_combined_filters(self):
        ds = _dataset()
        sub = ds.filter(suite="roco2", frequency_mhz=1200)
        assert sub.n_samples == 2

    def test_subset_by_bool_mask(self):
        ds = _dataset()
        sub = ds.subset(ds.threads == 24)
        assert sub.n_samples == 3

    def test_subset_by_indices(self):
        ds = _dataset()
        sub = ds.subset(np.array([0, 5]))
        assert sub.workloads == ("a", "c")

    def test_bad_mask_length(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            ds.subset(np.ones(3, dtype=bool))


class TestCombinators:
    def test_concat(self):
        a, b = _dataset(3), _dataset(4)
        both = PowerDataset.concat([a, b])
        assert both.n_samples == 7
        assert both.workloads == a.workloads + b.workloads

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            PowerDataset.concat([])

    def test_experiment_keys(self):
        ds = _dataset()
        keys = ds.experiment_keys()
        assert ("a", 1200, 1) in keys
        assert len(keys) == len(set(keys))

    def test_experiment_averages(self):
        ds = _dataset()
        avg = ds.experiment_averages()
        assert avg.n_samples == len(ds.experiment_keys())
        # Averaging a single-row experiment is the identity.
        key = ("c", 2600, 8)
        i_avg = avg.experiment_keys().index(key)
        assert avg.power_w[i_avg] == pytest.approx(ds.power_w[5])


class TestPersistence:
    def test_npz_roundtrip(self, tmp_path):
        ds = _dataset()
        path = tmp_path / "ds.npz"
        ds.save_npz(path)
        back = PowerDataset.load_npz(path)
        assert back.n_samples == ds.n_samples
        assert np.allclose(back.counters, ds.counters)
        assert np.allclose(back.power_w, ds.power_w)
        assert back.workloads == ds.workloads
        assert back.suites == ds.suites
        assert back.counter_names == ds.counter_names


class TestSharedMemoryHandle:
    def test_share_resolve_roundtrip_is_bitwise(self):
        from repro.parallel import SharedArena

        ds = _dataset()
        with SharedArena() as arena:
            back = ds.share(arena).resolve()
            assert np.array_equal(back.counters, ds.counters, equal_nan=True)
            assert np.array_equal(back.power_w, ds.power_w)
            assert np.array_equal(back.voltage_v, ds.voltage_v)
            assert np.array_equal(back.frequency_mhz, ds.frequency_mhz)
            assert np.array_equal(back.threads, ds.threads)
            assert back.workloads == ds.workloads
            assert back.suites == ds.suites
            assert back.phase_names == ds.phase_names
            assert back.counter_names == ds.counter_names

    def test_resolution_memoized_per_handle(self):
        from repro.parallel import SharedArena

        ds = _dataset()
        with SharedArena() as arena:
            handle = ds.share(arena)
            assert handle.resolve() is handle.resolve()

    def test_handle_pickles_small(self):
        import pickle

        from repro.parallel import SharedArena

        ds = _dataset()
        with SharedArena() as arena:
            handle = ds.share(arena)
            assert len(pickle.dumps(handle)) < 2000
