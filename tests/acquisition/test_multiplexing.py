"""Tests for time-division multiplexing (single-run acquisition)."""

import numpy as np
import pytest

from repro.acquisition import Campaign, CampaignPlan
from repro.hardware import (
    COUNTER_NAMES,
    FIXED_COUNTERS,
    HASWELL_EP_CONFIG,
    PMU,
    evaluate,
)
from repro.hardware.dvfs import HASWELL_EP_CURVE
from repro.workloads import Characterization, get_workload

CFG = HASWELL_EP_CONFIG


@pytest.fixture()
def rates():
    op = HASWELL_EP_CURVE.operating_point(2400)
    return evaluate(Characterization(), op, 12, CFG).counter_rates


class TestCountMultiplexed:
    def test_all_events_from_one_run(self, rates, rng):
        pmu = PMU(CFG)
        counts = pmu.count_multiplexed(COUNTER_NAMES, rates, 2.4e9, 10.0, rng)
        assert set(counts) == set(COUNTER_NAMES)

    def test_unbiased_on_average(self, rates):
        pmu = PMU(CFG)
        idx = COUNTER_NAMES.index("TOT_INS")
        expected = rates[idx] * 2.4e9 * 10.0
        vals = [
            pmu.count_multiplexed(
                COUNTER_NAMES, rates, 2.4e9, 10.0, np.random.default_rng(i)
            )["TOT_INS"]
            for i in range(300)
        ]
        assert np.mean(vals) == pytest.approx(expected, rel=0.01)

    def test_noisier_than_dedicated_counting(self, rates):
        """Extrapolation noise must exceed dedicated-run noise."""
        pmu = PMU(CFG)
        from repro.hardware import EventSet

        es = EventSet(events=tuple(FIXED_COUNTERS) + ("PRF_DM",))
        dedicated = [
            pmu.count(es, rates, 2.4e9, 10.0, np.random.default_rng(i))["PRF_DM"]
            for i in range(200)
        ]
        multiplexed = [
            pmu.count_multiplexed(
                COUNTER_NAMES, rates, 2.4e9, 10.0, np.random.default_rng(i)
            )["PRF_DM"]
            for i in range(200)
        ]
        assert np.std(multiplexed) > 2.0 * np.std(dedicated)

    def test_fixed_counters_not_penalized(self, rates):
        """Fixed counters count continuously even under multiplexing."""
        pmu = PMU(CFG)
        vals = [
            pmu.count_multiplexed(
                COUNTER_NAMES, rates, 2.4e9, 10.0, np.random.default_rng(i)
            )["TOT_CYC"]
            for i in range(200)
        ]
        rel_std = np.std(vals) / np.mean(vals)
        assert rel_std < 0.015  # read noise only

    def test_validation(self, rates, rng):
        pmu = PMU(CFG)
        with pytest.raises(KeyError):
            pmu.count_multiplexed(["NOPE"], rates, 2.4e9, 1.0, rng)
        with pytest.raises(ValueError):
            pmu.count_multiplexed(COUNTER_NAMES, rates[:5], 2.4e9, 1.0, rng)
        with pytest.raises(ValueError):
            PMU(CFG, multiplex_noise_sigma=-1.0)


class TestTdmCampaign:
    def test_single_run_per_experiment(self, platform):
        plan = CampaignPlan(
            workloads=(get_workload("compute"),),
            frequencies_mhz=(2400,),
            thread_counts_override=(8,),
            multiplexing="time-division",
        )
        campaign = Campaign(platform, plan)
        assert campaign.runs_per_experiment == 1
        ds = campaign.run()
        assert ds.n_samples == 1
        assert ds.counters.shape[1] == 54

    def test_tdm_dataset_close_to_multirun(self, platform):
        workloads = (get_workload("compute"), get_workload("memory_read"))
        kwargs = dict(
            workloads=workloads,
            frequencies_mhz=(2400,),
            thread_counts_override=(24,),
        )
        multi = Campaign(platform, CampaignPlan(**kwargs)).run()
        tdm = Campaign(
            platform, CampaignPlan(multiplexing="time-division", **kwargs)
        ).run()
        # Same experiments, same physics: rates agree within noise.
        assert np.allclose(tdm.counters, multi.counters, rtol=0.2, atol=1e-6)
        assert np.allclose(tdm.power_w, multi.power_w, rtol=0.05)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="multiplexing"):
            CampaignPlan(
                workloads=(get_workload("idle"),),
                frequencies_mhz=(2400,),
                multiplexing="quantum",
            )
