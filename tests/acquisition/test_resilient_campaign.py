"""Fault-tolerant campaigns: retry, quarantine, checkpoint/resume,
graceful degradation.

The seed-parametrized tests must hold for any ``REPRO_FAULT_SEED`` (the
CI chaos matrix runs three); only tests pinning a specific scenario
hard-code a fault seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition import (
    Campaign,
    CampaignPlan,
    ResilientCampaign,
    RetryPolicy,
    run_campaign,
    run_resilient_campaign,
)
from repro.faults import FaultPlan, RunFailure
from repro.hardware import COUNTER_NAMES, FIXED_COUNTERS
from repro.workloads import get_workload

#: Small event list → 2 PMU event sets (3 fixed ride along in both).
PROG = tuple(c for c in COUNTER_NAMES if c not in FIXED_COUNTERS)[:8]
EVENTS = tuple(FIXED_COUNTERS) + PROG


def small_plan(**overrides):
    defaults = dict(
        workloads=(get_workload("compute"), get_workload("idle")),
        frequencies_mhz=(2400,),
        events=EVENTS,
        thread_counts_override=(8,),
    )
    defaults.update(overrides)
    return CampaignPlan(**defaults)


@pytest.fixture(scope="module")
def fault_seed():
    import os

    return int(os.environ.get("REPRO_FAULT_SEED", "0"))


def datasets_equal(a, b):
    if a is None or b is None:
        return a is None and b is None
    return (
        a.counter_names == b.counter_names
        and a.workloads == b.workloads
        and a.phase_names == b.phase_names
        and np.array_equal(a.counters, b.counters)
        and np.array_equal(a.power_w, b.power_w)
        and np.array_equal(a.voltage_v, b.voltage_v)
    )


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base_s=1.0, backoff_factor=2.0,
            backoff_max_s=3.0,
        )
        assert policy.delay_s(0) == pytest.approx(1.0)
        assert policy.delay_s(1) == pytest.approx(2.0)
        assert policy.delay_s(2) == pytest.approx(3.0)  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestRetryCompletion:
    def test_flaky_campaign_completes_and_matches_clean(
        self, platform, fault_seed
    ):
        # A campaign with a 10% per-run crash rate completes via
        # retries and yields the *same dataset* as a fault-free one:
        # crashes only delay a run, they never change its physics.
        plan = small_plan(
            workloads=(get_workload("compute"), get_workload("memory_read")),
            frequencies_mhz=(1200, 2400),
            thread_counts_override=(4, 8),
        )
        faults = FaultPlan(run_failure_rate=0.1, fault_seed=fault_seed)
        campaign = ResilientCampaign(
            platform, plan, faults=faults, retry=RetryPolicy(max_attempts=6)
        )
        result = campaign.run()
        assert result.report.completed_cells == result.report.total_cells
        assert not result.report.quarantined
        clean = Campaign(platform, plan).run()
        assert datasets_equal(result.dataset, clean)

    def test_retries_observed_at_pinned_seed(self, platform):
        # Pinned fault stream: verified locally to crash at least once.
        plan = small_plan(
            workloads=(get_workload("compute"), get_workload("memory_read")),
            frequencies_mhz=(1200, 2400),
            thread_counts_override=(4, 8),
        )
        faults = FaultPlan(run_failure_rate=0.2, fault_seed=0)
        campaign = ResilientCampaign(
            platform, plan, faults=faults, retry=RetryPolicy(max_attempts=6)
        )
        result = campaign.run()
        assert result.report.retries > 0
        assert result.report.faults_observed.get("run-crash", 0) > 0

    def test_backoff_sleeps_through_injected_fn(self, platform):
        sleeps = []
        # Pinned serial: the recorder must observe sleeps in-process and
        # in deterministic cell order.
        campaign = ResilientCampaign(
            platform,
            small_plan(),
            faults=FaultPlan(kill_cells=("compute:*",)),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.5),
            sleep_fn=sleeps.append,
            parallel="serial",
        )
        campaign.run()
        # 2 compute cells × 2 inter-attempt delays each.
        assert sleeps == [0.5, 1.0, 0.5, 1.0]


class TestQuarantine:
    def test_dead_experiment_is_quarantined_not_fatal(self, platform):
        campaign = ResilientCampaign(
            platform,
            small_plan(),
            faults=FaultPlan(kill_cells=("compute:*",)),
        )
        result = campaign.run()
        report = result.report
        assert len(report.quarantined) == 2  # both compute event-set runs
        assert all("compute" in desc for desc, _ in report.quarantined)
        assert report.faults_observed["cell-killed"] == 2 * 3  # × attempts
        # The surviving workload still produced a full-rank dataset.
        assert result.dataset is not None
        assert set(result.dataset.workloads) == {"idle"}
        assert "quarantined" in report.summary()

    def test_strict_campaign_would_have_died(self, platform):
        from repro.faults import FaultyPlatform

        faulty = FaultyPlatform(platform, FaultPlan(kill_cells=("compute:*",)))
        with pytest.raises(RunFailure):
            Campaign(faulty, small_plan()).run()


class TestGracefulDegradation:
    def test_partial_run_drops_low_coverage_counters(self, platform):
        # Kill only run 1 (second event set) of the compute experiment:
        # compute phases lack that set's programmable counters.
        campaign = ResilientCampaign(
            platform,
            small_plan(),
            faults=FaultPlan(kill_cells=("compute:2400:8:1",)),
        )
        result = campaign.run()
        report = result.report
        set1 = PROG[4:]
        assert report.dropped_counters == set1
        for c in set1:
            assert report.counter_coverage[c] < 0.75
        for c in tuple(FIXED_COUNTERS) + PROG[:4]:
            assert report.counter_coverage[c] == pytest.approx(1.0)
        # Columns were dropped, rows kept: both workloads survive.
        assert result.dataset is not None
        assert set(result.dataset.workloads) == {"compute", "idle"}
        assert result.dataset.counter_names == tuple(FIXED_COUNTERS) + PROG[:4]
        assert report.degraded_phases == 0

    def test_zero_threshold_drops_rows_instead(self, platform):
        campaign = ResilientCampaign(
            platform,
            small_plan(),
            faults=FaultPlan(kill_cells=("compute:2400:8:1",)),
            min_counter_coverage=0.0,
        )
        result = campaign.run()
        assert result.report.dropped_counters == ()
        assert result.report.degraded_phases > 0
        assert result.dataset is not None
        assert set(result.dataset.workloads) == {"idle"}
        assert result.dataset.counter_names == EVENTS

    def test_total_loss_yields_none_with_explanation(self, platform):
        campaign = ResilientCampaign(
            platform,
            small_plan(),
            faults=FaultPlan(kill_cells=("*",)),
        )
        result = campaign.run()
        assert result.dataset is None
        assert result.report.completed_cells == 0
        assert len(result.report.quarantined) == result.report.total_cells
        assert all(
            v == pytest.approx(0.0)
            for v in result.report.counter_coverage.values()
        )

    def test_clean_campaign_reports_clean(self, platform):
        result = ResilientCampaign(platform, small_plan()).run()
        assert result.report.clean
        assert "clean campaign" in result.report.summary()


class TestCheckpointResume:
    def _campaign(self, platform, tmp_path, fault_seed, **kwargs):
        # Pinned serial: the interrupt-mid-campaign test depends on the
        # reference loop's strictly interleaved progress/checkpointing.
        kwargs.setdefault("parallel", "serial")
        return ResilientCampaign(
            platform,
            small_plan(
                workloads=(get_workload("compute"), get_workload("idle"),
                           get_workload("memory_read")),
            ),
            faults=FaultPlan(run_failure_rate=0.1, fault_seed=fault_seed),
            retry=RetryPolicy(max_attempts=6),
            checkpoint_dir=tmp_path / "ckpt",
            **kwargs,
        )

    def test_interrupted_campaign_resumes_bit_identical(
        self, platform, tmp_path, fault_seed
    ):
        uninterrupted = ResilientCampaign(
            platform,
            small_plan(
                workloads=(get_workload("compute"), get_workload("idle"),
                           get_workload("memory_read")),
            ),
            faults=FaultPlan(run_failure_rate=0.1, fault_seed=fault_seed),
            retry=RetryPolicy(max_attempts=6),
        ).run()

        calls = []

        def interrupting(msg):
            calls.append(msg)
            if len(calls) == 4:
                raise KeyboardInterrupt

        first = self._campaign(platform, tmp_path, fault_seed)
        with pytest.raises(KeyboardInterrupt):
            first.run(progress=interrupting)

        second = self._campaign(platform, tmp_path, fault_seed)
        result = second.run()
        assert result.report.resumed_cells == 3
        assert result.report.completed_cells == result.report.total_cells
        assert datasets_equal(result.dataset, uninterrupted.dataset)

    def test_corrupt_cell_during_resume_is_regenerated(
        self, platform, tmp_path, fault_seed
    ):
        first = self._campaign(platform, tmp_path, fault_seed)
        full = first.run()
        assert first.checkpoint is not None
        stored = first.checkpoint.completed_cells()
        assert stored
        # Bit-rot one stored cell: resume must discard and re-execute
        # it, not crash or trust garbage.
        victim = first.checkpoint.cell_path(stored[0])
        victim.write_bytes(b"not a zip archive")

        second = self._campaign(platform, tmp_path, fault_seed)
        result = second.run()
        assert result.report.resumed_cells == len(stored) - 1
        assert datasets_equal(result.dataset, full.dataset)

    def test_changed_configuration_resets_checkpoint(
        self, platform, tmp_path, fault_seed
    ):
        first = self._campaign(platform, tmp_path, fault_seed)
        first.run()
        assert first.checkpoint.completed_cells()
        # Different fault plan ⇒ different fingerprint ⇒ stored cells
        # from the old configuration must not leak into this one.
        different = ResilientCampaign(
            platform,
            small_plan(
                workloads=(get_workload("compute"), get_workload("idle"),
                           get_workload("memory_read")),
            ),
            faults=FaultPlan(run_failure_rate=0.5, fault_seed=fault_seed),
            retry=RetryPolicy(max_attempts=6),
            checkpoint_dir=tmp_path / "ckpt",
        )
        assert different.checkpoint.completed_cells() == []
        result = different.run()
        assert result.report.resumed_cells == 0


class TestFaultDeterminism:
    def test_same_seed_same_plan_bit_identical(self, platform, fault_seed):
        plan = small_plan()
        faults = FaultPlan.chaos(0.3, fault_seed=fault_seed)

        def run_once():
            return ResilientCampaign(platform, plan, faults=faults).run()

        a, b = run_once(), run_once()
        assert datasets_equal(a.dataset, b.dataset)
        assert dict(a.report.faults_observed) == dict(b.report.faults_observed)
        assert a.report.retries == b.report.retries
        assert a.report.quarantined == b.report.quarantined
        assert dict(a.report.counter_coverage) == dict(
            b.report.counter_coverage
        )

    def test_different_fault_seed_same_physics(self, platform):
        # Fault streams with different seeds inject different faults,
        # but whatever survives is drawn from the same simulated truth:
        # any (workload, phase) row present in both runs is identical.
        plan = small_plan()
        a = ResilientCampaign(
            platform, plan,
            faults=FaultPlan(run_failure_rate=0.3, fault_seed=1),
            retry=RetryPolicy(max_attempts=8),
        ).run()
        b = ResilientCampaign(
            platform, plan,
            faults=FaultPlan(run_failure_rate=0.3, fault_seed=2),
            retry=RetryPolicy(max_attempts=8),
        ).run()
        assert a.dataset is not None and b.dataset is not None
        rows_a = {
            (w, p): a.dataset.power_w[i]
            for i, (w, p) in enumerate(
                zip(a.dataset.workloads, a.dataset.phase_names)
            )
        }
        for i, (w, p) in enumerate(
            zip(b.dataset.workloads, b.dataset.phase_names)
        ):
            if (w, p) in rows_a:
                assert b.dataset.power_w[i] == rows_a[(w, p)]


class TestProgressHooks:
    def test_raising_observer_is_recorded_not_fatal(self, platform):
        # Telemetry must never kill acquisition: a crashing progress
        # hook is warned about, logged on the report, and the campaign
        # still completes every cell.
        def bad_observer(msg):
            raise RuntimeError("dashboard fell over")

        campaign = ResilientCampaign(platform, small_plan())
        with pytest.warns(RuntimeWarning, match="progress hook raised"):
            result = campaign.run(progress=bad_observer)
        assert result.report.completed_cells == result.report.total_cells
        assert result.report.hook_errors
        assert any(
            "RuntimeError" in err for err in result.report.hook_errors
        )

    def test_keyboard_interrupt_still_propagates(self, platform):
        # Ctrl-C is the operator, not telemetry — it must abort.
        def interrupting(msg):
            raise KeyboardInterrupt

        campaign = ResilientCampaign(platform, small_plan())
        with pytest.raises(KeyboardInterrupt):
            campaign.run(progress=interrupting)

    def test_hook_errors_reset_between_runs(self, platform):
        calls = []

        def flaky_once(msg):
            if not calls:
                calls.append(msg)
                raise RuntimeError("only the first call crashes")

        campaign = ResilientCampaign(platform, small_plan())
        with pytest.warns(RuntimeWarning):
            first = campaign.run(progress=flaky_once)
        assert first.report.hook_errors
        second = campaign.run()
        assert second.report.hook_errors == ()


class TestPlumbing:
    def test_run_campaign_forwards_events(self, platform):
        ds = run_campaign(
            platform,
            [get_workload("idle")],
            [2400],
            events=EVENTS,
            thread_counts=[8],
        )
        assert ds.counter_names == EVENTS
        assert ds.counters.shape[1] == len(EVENTS)

    def test_run_campaign_forwards_multiplexing(self, platform):
        ds = run_campaign(
            platform,
            [get_workload("idle")],
            [2400],
            events=EVENTS,
            thread_counts=[8],
            multiplexing="time-division",
        )
        assert ds.counter_names == EVENTS

    def test_bad_multiplexing_rejected(self, platform):
        with pytest.raises(ValueError, match="multiplexing"):
            run_campaign(
                platform,
                [get_workload("idle")],
                [2400],
                multiplexing="nonsense",
            )

    def test_run_resilient_campaign_wrapper(self, platform, fault_seed):
        result = run_resilient_campaign(
            platform,
            [get_workload("idle")],
            [2400],
            events=EVENTS,
            thread_counts=[8],
            faults=FaultPlan(run_failure_rate=0.1, fault_seed=fault_seed),
            retry=RetryPolicy(max_attempts=6),
        )
        assert result.dataset is not None
        assert result.report.total_cells == 2
