"""Tests for campaigns and the multi-run merge (post-processing)."""

import numpy as np
import pytest

from repro.acquisition import Campaign, CampaignPlan, build_dataset, merge_runs, run_campaign
from repro.hardware import COUNTER_NAMES
from repro.tracing import PhaseProfile
from repro.workloads import get_workload


class TestCampaignPlan:
    def test_experiments_enumeration(self):
        plan = CampaignPlan(
            workloads=(get_workload("compute"), get_workload("idle")),
            frequencies_mhz=(1200, 2400),
        )
        exps = plan.experiments()
        # compute has 8 default thread counts, idle has 1; x2 freqs.
        assert len(exps) == (8 + 1) * 2

    def test_thread_override(self):
        plan = CampaignPlan(
            workloads=(get_workload("compute"),),
            frequencies_mhz=(2400,),
            thread_counts_override=(4, 8),
        )
        assert len(plan.experiments()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignPlan(workloads=(), frequencies_mhz=(2400,))
        with pytest.raises(ValueError):
            CampaignPlan(
                workloads=(get_workload("idle"),), frequencies_mhz=()
            )


class TestCampaignRun:
    def test_runs_per_experiment_is_pmu_bound(self, platform):
        plan = CampaignPlan(
            workloads=(get_workload("idle"),), frequencies_mhz=(2400,)
        )
        campaign = Campaign(platform, plan)
        # 51 programmable events / 4 slots = 13 runs.
        assert campaign.runs_per_experiment == 13

    def test_dataset_complete(self, small_dataset):
        # Every row carries all 54 counters (merge succeeded).
        assert small_dataset.counters.shape[1] == 54
        assert np.all(np.isfinite(small_dataset.counters))

    def test_dataset_covers_all_experiments(self, small_dataset):
        # 3 kernels x 3 thread counts x 2 freqs + md phases.
        keys = small_dataset.experiment_keys()
        workload_names = {k[0] for k in keys}
        assert workload_names == {"idle", "compute", "memory_read", "md"}

    def test_power_and_voltage_plausible(self, small_dataset):
        assert np.all(small_dataset.power_w > 30.0)
        assert np.all(small_dataset.power_w < 350.0)
        assert np.all(small_dataset.voltage_v > 0.6)
        assert np.all(small_dataset.voltage_v < 1.1)

    def test_progress_callback(self, platform):
        messages = []
        run_campaign(
            platform,
            [get_workload("idle")],
            [2400],
            progress=messages.append,
        )
        assert messages and "idle" in messages[0]

    def test_deterministic(self, platform, small_dataset):
        again = run_campaign(
            platform,
            [get_workload("idle"), get_workload("compute"),
             get_workload("memory_read"), get_workload("md")],
            [1200, 2400],
            thread_counts=[1, 8, 24],
        )
        # Row order may legitimately match; values must.
        assert np.allclose(again.power_w, small_dataset.power_w)
        assert np.allclose(again.counters, small_dataset.counters)


def _profile(run_index, counters, power_w=100.0, phase="k.loop", threads=8):
    return PhaseProfile(
        workload="k",
        suite="roco2",
        frequency_mhz=2400,
        threads=threads,
        run_index=run_index,
        phase_name=phase,
        start_s=0.0,
        end_s=10.0,
        active_threads=threads,
        power_w=power_w,
        voltage_v=0.97,
        counter_rates_per_s=counters,
    )


class TestMerge:
    def test_power_averaged_across_runs(self):
        merged = merge_runs(
            [
                _profile(0, {"TOT_CYC": 1e9}, power_w=100.0),
                _profile(1, {"PRF_DM": 1e6}, power_w=104.0),
            ]
        )
        assert len(merged) == 1
        assert merged[0].power_w == pytest.approx(102.0)
        assert set(merged[0].counter_rates_per_s) == {"TOT_CYC", "PRF_DM"}

    def test_fixed_counter_averaged(self):
        merged = merge_runs(
            [
                _profile(0, {"TOT_CYC": 1.0e9}),
                _profile(1, {"TOT_CYC": 1.1e9}),
            ]
        )
        assert merged[0].counter_rates_per_s["TOT_CYC"] == pytest.approx(1.05e9)

    def test_inconsistent_counter_rejected(self):
        with pytest.raises(ValueError, match="disagrees"):
            merge_runs(
                [
                    _profile(0, {"TOT_CYC": 1.0e9}),
                    _profile(1, {"TOT_CYC": 2.0e9}),
                ]
            )

    def test_inconsistent_thread_count_rejected(self):
        a = _profile(0, {"TOT_CYC": 1e9})
        b = PhaseProfile(
            workload="k", suite="roco2", frequency_mhz=2400, threads=8,
            run_index=1, phase_name="k.loop", start_s=0.0, end_s=10.0,
            active_threads=4, power_w=100.0, voltage_v=0.97,
            counter_rates_per_s={"TOT_CYC": 1e9},
        )
        with pytest.raises(ValueError, match="thread counts"):
            merge_runs([a, b])

    def test_distinct_phases_stay_separate(self):
        merged = merge_runs(
            [
                _profile(0, {"TOT_CYC": 1e9}, phase="p0"),
                _profile(0, {"TOT_CYC": 1e9}, phase="p1"),
            ]
        )
        assert len(merged) == 2

    def test_phase_set_mismatch_rejected_by_default(self):
        # Run 1 lost phase p1 (truncated trace): the merged p1 would
        # silently lack run 1's counters — strict mode refuses.
        profiles = [
            _profile(0, {"TOT_CYC": 1e9}, phase="p0"),
            _profile(0, {"TOT_CYC": 1e9}, phase="p1"),
            _profile(1, {"PRF_DM": 1e6}, phase="p0"),
        ]
        with pytest.raises(ValueError, match="phase sets differ"):
            merge_runs(profiles)

    def test_phase_set_mismatch_recorded(self):
        profiles = [
            _profile(0, {"TOT_CYC": 1e9}, phase="p0"),
            _profile(0, {"TOT_CYC": 1e9}, phase="p1"),
            _profile(1, {"PRF_DM": 1e6}, phase="p0"),
        ]
        issues = []
        merged = merge_runs(
            profiles, on_phase_mismatch="record", issues=issues
        )
        assert len(merged) == 2
        assert len(issues) == 1
        assert "run 1 missing ['p1']" in issues[0]

    def test_consistent_phase_sets_not_flagged(self):
        issues = []
        merge_runs(
            [
                _profile(0, {"TOT_CYC": 1e9}, phase="p0"),
                _profile(1, {"PRF_DM": 1e6}, phase="p0"),
            ],
            on_phase_mismatch="record",
            issues=issues,
        )
        assert issues == []

    def test_counter_disagreement_recorded_keeps_mean(self):
        issues = []
        merged = merge_runs(
            [
                _profile(0, {"TOT_CYC": 1.0e9}),
                _profile(1, {"TOT_CYC": 2.0e9}),
            ],
            on_counter_disagreement="record",
            issues=issues,
        )
        assert merged[0].counter_rates_per_s["TOT_CYC"] == pytest.approx(1.5e9)
        assert len(issues) == 1 and "disagrees" in issues[0]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_phase_mismatch"):
            merge_runs([], on_phase_mismatch="explode")


class TestBuildDataset:
    def _complete_profile(self, run_index=0):
        rates = {c: 1e6 for c in COUNTER_NAMES}
        return _profile(run_index, rates)

    def test_complete_phase_builds(self):
        ds = build_dataset(merge_runs([self._complete_profile()]))
        assert ds.n_samples == 1
        # events/s / (f_clk) → events per cycle.
        assert ds.column("PRF_DM")[0] == pytest.approx(1e6 / 2.4e9)

    def test_incomplete_raises_by_default(self):
        merged = merge_runs([_profile(0, {"TOT_CYC": 1e9})])
        with pytest.raises(ValueError, match="missing"):
            build_dataset(merged)

    def test_incomplete_dropped_when_allowed(self):
        merged = merge_runs(
            [
                _profile(0, {"TOT_CYC": 1e9}, phase="partial"),
                self._complete_profile(),
            ]
        )
        ds = build_dataset(merged, require_complete=False)
        assert ds.n_samples == 1

    def test_nothing_left_raises(self):
        merged = merge_runs([_profile(0, {"TOT_CYC": 1e9})])
        with pytest.raises(ValueError, match="no complete phases"):
            build_dataset(merged, require_complete=False)
