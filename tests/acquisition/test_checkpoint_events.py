"""Checkpoint recovery audit trail: the narrowed-except satellite.

``reset()`` and the corrupt-cell discard used to swallow *every*
``OSError``; now only ``FileNotFoundError`` (a concurrent cleanup — a
benign race) is absorbed, and each absorption lands in the manifest's
``events`` list.  Permission or I/O errors propagate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.acquisition.checkpoint import CampaignCheckpoint, cell_id
from repro.tracing.phases import PhaseProfile

FP = "fingerprint-a"


def profile(power_w=42.0):
    return PhaseProfile(
        workload="compute",
        suite="synthetic",
        frequency_mhz=2400,
        threads=8,
        run_index=0,
        phase_name="main",
        start_s=0.0,
        end_s=1.0,
        active_threads=8,
        power_w=power_w,
        voltage_v=1.05,
        counter_rates_per_s={"TOT_INS": 1e9},
    )


def vanish_cells(monkeypatch):
    """Make every unlink of a cell archive hit the concurrent-cleanup
    race deterministically: the file disappears between discovery and
    deletion."""
    real_unlink = Path.unlink

    def racy_unlink(self, *args, **kwargs):
        if self.name.startswith("cell_"):
            real_unlink(self, *args, **kwargs)  # someone else cleaned up
            raise FileNotFoundError(self)
        return real_unlink(self, *args, **kwargs)

    monkeypatch.setattr(Path, "unlink", racy_unlink)


def manifest_events(directory):
    manifest = json.loads((directory / "manifest.json").read_text())
    return manifest["events"]


class TestResetPath:
    def test_vanished_cell_logged_not_raised(self, tmp_path, monkeypatch):
        ckpt = CampaignCheckpoint(tmp_path, FP)
        cid = cell_id("compute", 2400, 8, 0, ("TOT_INS",))
        ckpt.store(cid, [profile()])

        vanish_cells(monkeypatch)
        ckpt.reset()  # must absorb the race, not crash

        (event,) = ckpt.events()
        assert event["kind"] == "concurrent-cleanup"
        assert "vanished during reset" in event["detail"]
        assert f"cell_{cid}" in event["detail"]
        assert manifest_events(tmp_path) == ckpt.events()

    def test_init_time_reset_events_reach_manifest(
        self, tmp_path, monkeypatch
    ):
        # Fingerprint mismatch → __init__ resets; events raised before
        # the manifest exists are buffered into the first write.
        old = CampaignCheckpoint(tmp_path, "fingerprint-old")
        old.store(cell_id("idle", 2400, 8, 0, ("TOT_INS",)), [profile()])

        vanish_cells(monkeypatch)
        fresh = CampaignCheckpoint(tmp_path, FP)

        kinds = [e["kind"] for e in fresh.events()]
        assert kinds == ["concurrent-cleanup"]
        assert manifest_events(tmp_path) == fresh.events()

    def test_other_oserror_propagates(self, tmp_path, monkeypatch):
        ckpt = CampaignCheckpoint(tmp_path, FP)
        ckpt.store(cell_id("compute", 2400, 8, 0, ("TOT_INS",)), [profile()])

        def denied(self, *args, **kwargs):
            raise PermissionError(self)

        monkeypatch.setattr(Path, "unlink", denied)
        with pytest.raises(PermissionError):
            ckpt.reset()


class TestCorruptDiscardPath:
    def _corrupt(self, ckpt):
        cid = cell_id("compute", 2400, 8, 0, ("TOT_INS",))
        ckpt.cell_path(cid).write_bytes(b"not a zip archive")
        return cid

    def test_corrupt_cell_discard_is_audited(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path, FP)
        cid = self._corrupt(ckpt)

        assert ckpt.load(cid) is None
        assert not ckpt.cell_path(cid).exists()
        (event,) = ckpt.events()
        assert event["kind"] == "corrupt-cell-discarded"
        assert f"cell_{cid}" in event["detail"]
        assert manifest_events(tmp_path) == ckpt.events()

    def test_vanished_during_discard_logged(self, tmp_path, monkeypatch):
        ckpt = CampaignCheckpoint(tmp_path, FP)
        cid = self._corrupt(ckpt)

        vanish_cells(monkeypatch)
        assert ckpt.load(cid) is None

        (event,) = ckpt.events()
        assert event["kind"] == "concurrent-cleanup"
        assert "corrupt-cell discard" in event["detail"]

    def test_discard_permission_error_propagates(self, tmp_path, monkeypatch):
        ckpt = CampaignCheckpoint(tmp_path, FP)
        cid = self._corrupt(ckpt)

        def denied(self, *args, **kwargs):
            if self.name.startswith("cell_"):
                raise PermissionError(self)
            return None

        monkeypatch.setattr(Path, "unlink", denied)
        with pytest.raises(PermissionError):
            ckpt.load(cid)


class TestEventPersistence:
    def test_events_survive_reopen(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path, FP)
        cid = cell_id("compute", 2400, 8, 0, ("TOT_INS",))
        ckpt.cell_path(cid).write_bytes(b"garbage")
        ckpt.load(cid)
        assert len(ckpt.events()) == 1

        reopened = CampaignCheckpoint(tmp_path, FP)
        assert reopened.events() == ckpt.events()

    def test_clean_checkpoint_has_no_events(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path, FP)
        cid = cell_id("compute", 2400, 8, 0, ("TOT_INS",))
        ckpt.store(cid, [profile()])
        assert ckpt.load(cid) is not None
        assert ckpt.events() == []
        assert manifest_events(tmp_path) == []
