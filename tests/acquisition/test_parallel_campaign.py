"""Serial ≡ thread ≡ process: campaigns are bit-identical per backend.

The ISSUE-4 tentpole contract: results are assembled in cell order and
all randomness is keyed per (cell, attempt), so the execution backend
must be unobservable in every output except ``timing``.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.acquisition import Campaign, CampaignPlan, ResilientCampaign, RetryPolicy
from repro.faults import FaultPlan
from repro.hardware import COUNTER_NAMES, FIXED_COUNTERS
from repro.workloads import get_workload

PROG = tuple(c for c in COUNTER_NAMES if c not in FIXED_COUNTERS)[:8]
EVENTS = tuple(FIXED_COUNTERS) + PROG

BACKENDS = ("serial", "thread", "process")


def small_plan(**overrides):
    defaults = dict(
        workloads=(get_workload("compute"), get_workload("idle")),
        frequencies_mhz=(2400,),
        events=EVENTS,
        thread_counts_override=(8,),
    )
    defaults.update(overrides)
    return CampaignPlan(**defaults)


@pytest.fixture(scope="module")
def fault_seed():
    return int(os.environ.get("REPRO_FAULT_SEED", "0"))


def datasets_equal(a, b):
    if a is None or b is None:
        return a is None and b is None
    return (
        a.counter_names == b.counter_names
        and a.workloads == b.workloads
        and a.phase_names == b.phase_names
        and np.array_equal(a.counters, b.counters)
        and np.array_equal(a.power_w, b.power_w)
        and np.array_equal(a.voltage_v, b.voltage_v)
    )


def faulty_campaign(platform, fault_seed, **kwargs):
    return ResilientCampaign(
        platform,
        small_plan(),
        faults=FaultPlan(run_failure_rate=0.1, fault_seed=fault_seed),
        retry=RetryPolicy(max_attempts=6, backoff_base_s=0.0),
        **kwargs,
    )


class TestStrictCampaignBitIdentity:
    def test_all_backends_build_identical_datasets(self, platform):
        reference = Campaign(platform, small_plan(), parallel="serial").run()
        for backend in ("thread", "process"):
            dataset = Campaign(
                platform, small_plan(), parallel=backend, max_workers=2
            ).run()
            assert datasets_equal(dataset, reference), backend


class TestResilientCampaignBitIdentity:
    def test_backends_identical_under_injected_faults(
        self, platform, fault_seed
    ):
        results = {
            backend: faulty_campaign(
                platform, fault_seed, parallel=backend, max_workers=2
            ).run()
            for backend in BACKENDS
        }
        reference = results["serial"]
        ref_report = dataclasses.replace(reference.report, timing=None)
        for backend in ("thread", "process"):
            result = results[backend]
            assert datasets_equal(result.dataset, reference.dataset), backend
            assert (
                dataclasses.replace(result.report, timing=None) == ref_report
            ), backend

    def test_fault_counts_survive_process_boundary(self, platform):
        # Injected faults happen in worker processes; the report must
        # still account for them (counts travel in _CellOutcome.faults,
        # not in the injector's advisory counter).
        result = faulty_campaign(
            platform, 20170529, parallel="process", max_workers=2
        ).run()
        serial = faulty_campaign(platform, 20170529, parallel="serial").run()
        assert dict(result.report.faults_observed) == dict(
            serial.report.faults_observed
        )
        assert result.report.retries == serial.report.retries


class TestTimingReport:
    def test_stages_carry_backend_identity(self, platform, fault_seed):
        result = faulty_campaign(
            platform, fault_seed, parallel="thread", max_workers=2
        ).run()
        timing = result.report.timing
        assert timing is not None
        acq = timing.stage("acquisition")
        assert (acq.parallel, acq.max_workers) == ("thread", 2)
        assert acq.n_items == result.report.total_cells
        assert timing.stage("merge").elapsed_s >= 0.0
        assert "timing:" in result.report.summary()

    def test_serial_timing_recorded_too(self, platform, fault_seed):
        result = faulty_campaign(
            platform, fault_seed, parallel="serial"
        ).run()
        assert result.report.timing.stage("acquisition").parallel == "serial"


class TestParallelCheckpoint:
    def test_parallel_run_checkpoints_and_resumes(
        self, platform, tmp_path, fault_seed
    ):
        first = faulty_campaign(
            platform,
            fault_seed,
            parallel="thread",
            max_workers=2,
            checkpoint_dir=tmp_path / "ckpt",
        ).run()
        second = faulty_campaign(
            platform,
            fault_seed,
            parallel="thread",
            max_workers=2,
            checkpoint_dir=tmp_path / "ckpt",
        ).run()
        assert first.report.resumed_cells == 0
        assert second.report.resumed_cells == first.report.completed_cells
        assert datasets_equal(second.dataset, first.dataset)

    def test_resume_crosses_backends(self, platform, tmp_path, fault_seed):
        # A checkpoint written serially is adopted by a process-backend
        # campaign (and vice versa): the store is backend-agnostic.
        serial = faulty_campaign(
            platform, fault_seed, parallel="serial",
            checkpoint_dir=tmp_path / "ckpt",
        ).run()
        resumed = faulty_campaign(
            platform, fault_seed, parallel="process", max_workers=2,
            checkpoint_dir=tmp_path / "ckpt",
        ).run()
        assert resumed.report.resumed_cells == serial.report.completed_cells
        assert datasets_equal(resumed.dataset, serial.dataset)
