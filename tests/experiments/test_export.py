"""Tests for the CSV/JSON export of the regenerated evaluation."""

import csv
import json

import pytest

from repro.experiments.export import EXPORTERS, export_all
from repro.experiments.runner import main


class TestExport:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory, full_dataset):
        out = tmp_path_factory.mktemp("export")
        export_all(out)
        return out

    def test_every_artifact_exported(self, exported):
        names = {p.name for p in exported.iterdir()}
        for expected in (
            "table1.csv",
            "table1.json",
            "table2.json",
            "table3.csv",
            "table4.csv",
            "fig2.csv",
            "fig3.csv",
            "fig4.json",
            "fig5a.csv",
            "fig5b.csv",
            "fig6.csv",
        ):
            assert expected in names

    def test_table1_csv_contents(self, exported):
        with (exported / "table1.csv").open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) >= 6
        assert rows[0]["mean_vif"] == ""  # n/a on the first step
        assert 0.8 < float(rows[0]["r2"]) < 1.0

    def test_table2_json_structure(self, exported):
        payload = json.loads((exported / "table2.json").read_text())
        assert set(payload["summary"]) == {"R2", "Adj.R2", "MAPE"}
        assert len(payload["fold_mape"]) == 10
        assert payload["summary"]["MAPE"]["min"] <= payload["summary"]["MAPE"]["mean"]

    def test_fig6_covers_all_counters(self, exported):
        with (exported / "fig6.csv").open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 54
        assert all(-1.0 <= float(r["pcc"]) <= 1.0 for r in rows)

    def test_fig5_scatter_columns(self, exported):
        with (exported / "fig5a.csv").open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows
        assert float(rows[0]["actual_w"]) > 0
        assert rows[0]["suite"] == "spec_omp2012"

    def test_registry_matches_runner_artifacts(self):
        assert set(EXPORTERS) == {
            "table1", "table2", "table3", "table4",
            "fig2", "fig3", "fig4", "fig5", "fig6",
        }

    def test_cli_flag(self, tmp_path, capsys, full_dataset):
        assert main(["table3", "--export-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "exported" in out
        assert (tmp_path / "table3.csv").exists()
