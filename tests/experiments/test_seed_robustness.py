"""Seed robustness: the reproduction's shapes must not be artifacts of
one lucky random stream.

These re-run the headline shape checks on a campaign generated from a
*different* root seed (fresh sensor calibrations, fresh noise, fresh
SPEC phase structures are NOT regenerated — workload definitions are
fixed — but every measurement-side random draw differs).
"""

import numpy as np
import pytest

from repro.core import run_all_scenarios, select_events
from repro.core.scenarios import SCENARIO_NAMES
from repro.experiments import data as expdata

ALT_SEED = 424242


@pytest.fixture(scope="module")
def alt_dataset():
    return expdata.full_dataset(seed=ALT_SEED)


@pytest.fixture(scope="module")
def alt_counters(alt_dataset):
    sel = select_events(alt_dataset.filter(frequency_mhz=2400), 6)
    return sel.selected


class TestSeedRobustness:
    def test_selection_reaches_high_r2(self, alt_dataset):
        sel = select_events(alt_dataset.filter(frequency_mhz=2400), 6)
        assert sel.steps[-1].rsquared > 0.98

    def test_anchor_counter_family_stable(self, alt_counters):
        """The first counter must still be a memory-family event."""
        from repro.hardware.counters import describe

        group = describe(alt_counters[0]).group
        assert group in ("coherence", "prefetch", "cache_l3", "cache_l2")

    def test_scenario_ordering_holds(self, alt_dataset, alt_counters):
        scenarios = run_all_scenarios(alt_dataset, alt_counters, seed=ALT_SEED)
        mapes = {name: r.mape for name, r in scenarios.items()}
        s1, s2, s3, s4 = (mapes[n] for n in SCENARIO_NAMES)
        assert s2 == max(mapes.values())
        assert s3 < s1 and s4 < s1

    def test_cv_mape_band_holds(self, alt_dataset, alt_counters):
        scenarios = run_all_scenarios(alt_dataset, alt_counters, seed=ALT_SEED)
        cv = scenarios[SCENARIO_NAMES[2]].mape
        assert 5.0 < cv < 10.0

    def test_scenario2_degradation_holds(self, alt_dataset, alt_counters):
        scenarios = run_all_scenarios(alt_dataset, alt_counters, seed=ALT_SEED)
        ratio = (
            scenarios[SCENARIO_NAMES[1]].mape
            / scenarios[SCENARIO_NAMES[2]].mape
        )
        assert 1.4 < ratio < 3.5

    def test_different_seed_different_numbers(
        self, alt_dataset, full_dataset
    ):
        """Sanity: the alternate campaign is actually different data."""
        assert alt_dataset.n_samples == full_dataset.n_samples
        assert not np.allclose(alt_dataset.power_w, full_dataset.power_w)
