"""The reproduction's acceptance tests: the DESIGN.md shape targets.

Each test asserts one of the paper's qualitative/quantitative claims on
the regenerated evaluation.  These run on the session-cached full
campaign, so they are fast after the first build.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    table1,
    table2,
    table3,
    table4,
)
from repro.hardware.counters import describe


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, selection_dataset):
        return table1.run(selection_dataset)

    def test_six_counters_selected(self, result):
        assert len(result.steps) == 6

    def test_first_counter_is_memory_related(self, result):
        group = describe(result.steps[0].counter).group
        assert group in ("coherence", "prefetch", "cache_l3", "cache_l2")

    def test_r2_reaches_high_value(self, result):
        assert result.steps[-1].rsquared >= 0.985

    def test_vif_of_six_stays_moderate(self, result):
        vifs = [s.mean_vif for s in result.steps[1:]]
        assert max(vifs) <= 6.0

    def test_adj_r2_tracks_r2(self, result):
        for s in result.steps:
            assert s.rsquared - s.rsquared_adj < 0.005

    def test_extended_selection_blows_vif(self, result):
        """The paper's CA_SNP anomaly: a later counter adds little R²
        but pushes the mean VIF past the multicollinearity threshold."""
        pos = result.extended.first_unstable_step()
        assert pos is not None and pos <= 10
        unstable = result.extended.steps[pos - 1]
        before = result.extended.steps[pos - 2]
        assert unstable.mean_vif > 10.0
        assert unstable.rsquared - before.rsquared < 0.01

    def test_render_mentions_paper(self, result):
        text = result.render()
        assert "PRF_DM" in text  # paper column present
        assert "26.42" in text or "VIF" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self, selection_dataset):
        return fig2.run(selection_dataset)

    def test_monotone(self, result):
        assert result.is_monotone()

    def test_adj_gap_small(self, result):
        assert result.max_r2_adj_gap() < 0.01

    def test_series_lengths(self, result):
        assert len(result.r2_series) == 6
        assert len(result.adj_r2_series) == 6


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self, full_dataset, selected_counters):
        return table2.run(full_dataset, counters=selected_counters)

    def test_mape_in_paper_band(self, result):
        mn, mx, mean = result.summary()["MAPE"]
        assert 5.0 < mean < 9.5
        assert mn <= mean <= mx

    def test_r2_high(self, result):
        assert result.summary()["R2"][2] > 0.94

    def test_adj_r2_within_a_hair(self, result):
        # The paper: mean Adj.R² only 0.0004 below mean R².
        assert 0.0 <= result.r2_adj_gap() < 0.002

    def test_folds_stable(self, result):
        mn, mx, _ = result.summary()["R2"]
        assert mx - mn < 0.01


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self, full_dataset, selected_counters):
        return fig3.run(full_dataset, counters=selected_counters)

    def test_all_20_workloads_scored(self, result):
        assert len(result.per_workload_mape) == 20

    def test_spread_at_least_3x(self, result):
        _, worst = result.worst()
        _, best = result.best()
        assert worst > 3.0 * best

    def test_ilbdc_is_worst_spec_benchmark(self, result):
        spec_mapes = {
            w: v
            for w, v in result.per_workload_mape.items()
            if result.suites[w] == "spec_omp2012"
        }
        assert max(spec_mapes, key=spec_mapes.get) == "ilbdc"


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, full_dataset, selected_counters):
        return fig4.run(full_dataset, counters=selected_counters)

    def test_ordering_matches_paper(self, result):
        assert result.ordering_matches_paper()

    def test_scenario2_degradation_factor(self, result):
        # Paper: 15.10 / 7.55 ≈ 2.0.
        assert 1.5 < result.scenario2_over_cv_ratio() < 3.0

    def test_scenario2_mape_band(self, result):
        from repro.core.scenarios import SCENARIO_NAMES

        assert 11.0 < result.mapes[SCENARIO_NAMES[1]] < 20.0


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, full_dataset, selected_counters):
        return fig5.run(full_dataset, counters=selected_counters)

    def test_md_and_nab_overestimated(self, result):
        biased = result.systematic_bias_workloads()
        assert biased.get("md", 0.0) > 0.0
        assert biased.get("nab", 0.0) > 0.0

    def test_scenario3_unbiased_overall(self, result):
        assert abs(result.overall_bias_b()) < 2.0

    def test_heteroscedastic_residuals(self, result):
        assert result.heteroscedasticity_correlation() > 0.1

    def test_scatter_points_per_experiment(self, result, full_dataset):
        spec_experiments = [
            k for k in full_dataset.experiment_keys()
            if full_dataset.filter(workloads=[k[0]]).suites[0] == "spec_omp2012"
        ]
        assert len(result.scatter_a) == len(spec_experiments)


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, selection_dataset, selected_counters):
        return table3.run(selection_dataset, counters=selected_counters)

    def test_first_counter_high_pcc(self, result):
        assert result.first_counter_pcc() > 0.7

    def test_later_counters_weak(self, result):
        # At least half the later counters carry weak individual
        # correlation — they contribute unique information instead.
        weak = result.weak_counters(threshold=0.6)
        assert len(weak) >= 3


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self, selection_dataset, selected_counters):
        return fig6.run(selection_dataset, counters=selected_counters)

    def test_every_counter_scored(self, result):
        assert len(result.pcc) == 54

    def test_selection_is_not_top_pcc_list(self, result):
        ranks = result.selected_rank_by_pcc()
        # If selection were just "take the strongest", all ranks would
        # be 1..6.  At least one selected counter must rank far lower.
        assert max(ranks.values()) > 6

    def test_family_blocks(self, result):
        """Counter families have similar PCC (small within-family
        spread) for at least some families."""
        spreads = result.family_spread()
        assert min(spreads.values()) < 0.1


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self, selection_dataset):
        return table4.run(selection_dataset)

    def test_different_selection_than_all_workloads(self, result):
        assert result.differs_from_all_workloads()

    def test_synthetic_fit_looks_deceptively_good(self, result):
        # Table IV: R² on the homogeneous synthetic data is sky-high.
        assert result.synthetic_selection.steps[-1].rsquared > 0.99

    def test_synthetic_selection_is_unstable_on_real_workloads(
        self, result, full_dataset
    ):
        """The paper's deeper point (Section V / [18]): "a low VIF was
        no guarantee for a stable model".  The synthetic-selected
        counter set fits the synthetic data nearly perfectly yet
        generalizes poorly to SPEC."""
        from repro.core import scenario_cv_all, scenario_synthetic_to_spec

        synth_counters = result.synthetic_selection.selected
        unstable = scenario_synthetic_to_spec(full_dataset, synth_counters)
        baseline = scenario_cv_all(
            full_dataset, result.all_workload_selection.selected
        )
        assert unstable.mape > 1.5 * baseline.mape
