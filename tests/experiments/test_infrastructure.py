"""Tests for the experiment data cache and the CLI runner."""

import numpy as np
import pytest

from repro.experiments import data as expdata
from repro.experiments.runner import EXPERIMENTS, main


class TestDataCache:
    def test_memory_cache_returns_same_object(self):
        a = expdata.full_dataset()
        b = expdata.full_dataset()
        assert a is b

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        expdata.clear_memory_cache()
        try:
            fresh = expdata.full_dataset(frequencies_mhz=(2400,))
            assert (
                len(list(tmp_path.glob("campaign_*.npz"))) == 1
            )
            expdata.clear_memory_cache()
            reloaded = expdata.full_dataset(frequencies_mhz=(2400,))
            assert np.allclose(fresh.power_w, reloaded.power_w)
        finally:
            expdata.clear_memory_cache()

    def test_selection_dataset_is_fixed_frequency(self, selection_dataset):
        assert set(selection_dataset.frequency_mhz) == {2400}

    def test_selected_counters_are_six_valid_names(
        self, selected_counters, full_dataset
    ):
        assert len(selected_counters) == 6
        assert all(c in full_dataset.counter_names for c in selected_counters)


class TestRunnerCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_single_experiment_runs(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "paper" in out

    def test_registry_covers_all_artifacts(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "table3",
            "table4",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "sched",
            "serve",
        }
