"""Corrupt campaign caches must regenerate transparently, never error.

The repository once shipped with two truncated ``.npz`` files in
``.repro-cache/`` that made every fixture-backed test die with
``zipfile.BadZipFile``.  These tests pin the recovery contract:
``full_dataset`` treats any unreadable cache file as a miss — delete,
regenerate, rewrite — and ``save_npz`` publishes atomically so a
killed writer cannot produce such a file in the first place.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import data as expdata
from repro.io.atomic import atomic_savez

#: One cheap configuration: single DVFS state keeps regeneration fast.
FREQS = (1200,)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    expdata.clear_memory_cache()
    yield tmp_path
    expdata.clear_memory_cache()


def _cache_file(cache_dir):
    return expdata._cache_path(expdata.DEFAULT_SEED, FREQS)


def _build(use_disk_cache=True):
    return expdata.full_dataset(
        frequencies_mhz=FREQS, use_disk_cache=use_disk_cache
    )


class TestCorruptionRecovery:
    def _corrupt_and_reload(self, cache_dir, corrupt):
        ds = _build()
        path = _cache_file(cache_dir)
        assert path.exists()
        corrupt(path)
        expdata.clear_memory_cache()
        recovered = _build()
        # Regeneration is bit-reproducible from the root seed.
        np.testing.assert_array_equal(recovered.counters, ds.counters)
        np.testing.assert_array_equal(recovered.power_w, ds.power_w)
        # And the cache was rewritten healthy.
        expdata.clear_memory_cache()
        again = _build()
        assert again.n_samples == ds.n_samples

    def test_truncated_npz_regenerates(self, cache_dir):
        self._corrupt_and_reload(
            cache_dir,
            lambda p: p.write_bytes(p.read_bytes()[: p.stat().st_size // 2]),
        )

    def test_empty_file_regenerates(self, cache_dir):
        self._corrupt_and_reload(cache_dir, lambda p: p.write_bytes(b""))

    def test_partially_written_file_regenerates(self, cache_dir):
        # A file that is valid-prefix garbage: the zip magic followed by
        # noise, as a non-atomic writer killed mid-write would leave.
        self._corrupt_and_reload(
            cache_dir, lambda p: p.write_bytes(b"PK\x03\x04" + b"\x00" * 512)
        )

    def test_missing_key_regenerates(self, cache_dir):
        # A structurally valid npz missing required arrays (e.g. written
        # by an older code revision) is also treated as a cache miss.
        def corrupt(p):
            atomic_savez(p, counters=np.zeros((2, 54)))

        self._corrupt_and_reload(cache_dir, corrupt)


class TestAtomicSave:
    def test_no_temp_debris_after_save(self, cache_dir):
        _build()
        leftovers = [p for p in cache_dir.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_cache_file_is_healthy_npz(self, cache_dir):
        _build()
        from repro.acquisition.dataset import PowerDataset

        ds = PowerDataset.load_npz(_cache_file(cache_dir))
        assert ds.n_samples > 0
