"""Unit tests for deterministic seed derivation."""

import numpy as np
import pytest

from repro.seeding import DEFAULT_SEED, derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_distinct_roots(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_distinct_keys(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, 1) != derive_seed(1, 2)

    def test_no_concatenation_collision(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_type_distinction(self):
        # The string "1" and the int 1 are different key parts.
        assert derive_seed(1, "1") != derive_seed(1, 1)
        assert derive_seed(1, 1.0) != derive_seed(1, 1)

    def test_float_keys(self):
        assert derive_seed(1, 0.1) != derive_seed(1, 0.2)

    def test_bytes_keys(self):
        assert derive_seed(1, b"x") != derive_seed(1, "x")

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            derive_seed(1, ["list"])

    def test_64_bit_range(self):
        s = derive_seed(DEFAULT_SEED, "anything")
        assert 0 <= s < 2**64


class TestDeriveRng:
    def test_same_key_same_stream(self):
        a = derive_rng(5, "x").normal(size=10)
        b = derive_rng(5, "x").normal(size=10)
        assert np.array_equal(a, b)

    def test_different_key_different_stream(self):
        a = derive_rng(5, "x").normal(size=10)
        b = derive_rng(5, "y").normal(size=10)
        assert not np.array_equal(a, b)

    def test_streams_statistically_independent(self):
        a = derive_rng(5, "s", 1).normal(size=5000)
        b = derive_rng(5, "s", 2).normal(size=5000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.05
