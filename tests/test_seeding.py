"""Unit tests for deterministic seed derivation."""

import numpy as np
import pytest

from repro.seeding import (
    DEFAULT_SEED,
    SeedHasher,
    derive_rng,
    derive_seed,
    rng_from_state_words,
    seedseq_state_words,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_distinct_roots(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_distinct_keys(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, 1) != derive_seed(1, 2)

    def test_no_concatenation_collision(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_type_distinction(self):
        # The string "1" and the int 1 are different key parts.
        assert derive_seed(1, "1") != derive_seed(1, 1)
        assert derive_seed(1, 1.0) != derive_seed(1, 1)

    def test_float_keys(self):
        assert derive_seed(1, 0.1) != derive_seed(1, 0.2)

    def test_bytes_keys(self):
        assert derive_seed(1, b"x") != derive_seed(1, "x")

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            derive_seed(1, ["list"])

    def test_64_bit_range(self):
        s = derive_seed(DEFAULT_SEED, "anything")
        assert 0 <= s < 2**64


class TestDeriveRng:
    def test_same_key_same_stream(self):
        a = derive_rng(5, "x").normal(size=10)
        b = derive_rng(5, "x").normal(size=10)
        assert np.array_equal(a, b)

    def test_different_key_different_stream(self):
        a = derive_rng(5, "x").normal(size=10)
        b = derive_rng(5, "y").normal(size=10)
        assert not np.array_equal(a, b)

    def test_streams_statistically_independent(self):
        a = derive_rng(5, "s", 1).normal(size=5000)
        b = derive_rng(5, "s", 2).normal(size=5000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.05


class TestSeedHasher:
    """The incremental hasher must reproduce derive_seed exactly for
    every split of the key into prefix and suffix."""

    KEY = ("plugin", "PowerPlugin", "md", 2400, 24, 1, "phase-3")

    def test_every_prefix_split_matches_derive_seed(self):
        expected = derive_seed(DEFAULT_SEED, *self.KEY)
        for cut in range(len(self.KEY) + 1):
            hasher = SeedHasher(DEFAULT_SEED, *self.KEY[:cut])
            assert hasher.seed(*self.KEY[cut:]) == expected

    def test_hasher_is_reusable_across_suffixes(self):
        hasher = SeedHasher(7, "plugin", "ApapiPlugin")
        for suffix in ("a", "b", "a"):
            assert hasher.seed(suffix) == derive_seed(
                7, "plugin", "ApapiPlugin", suffix
            )

    def test_rng_matches_derive_rng(self):
        a = SeedHasher(5, "x").rng("y").normal(size=8)
        b = derive_rng(5, "x", "y").normal(size=8)
        assert np.array_equal(a, b)

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            SeedHasher(1, ["list"])
        with pytest.raises(TypeError):
            SeedHasher(1).seed(["list"])

    def test_child_extends_the_prefix_exactly(self):
        expected = derive_seed(DEFAULT_SEED, *self.KEY)
        for cut in range(len(self.KEY) + 1):
            for cut2 in range(cut, len(self.KEY) + 1):
                hasher = SeedHasher(DEFAULT_SEED, *self.KEY[:cut]).child(
                    *self.KEY[cut:cut2]
                )
                assert hasher.seed(*self.KEY[cut2:]) == expected

    def test_child_leaves_parent_untouched(self):
        parent = SeedHasher(3, "a")
        before = parent.seed("z")
        parent.child("b", 4)
        assert parent.seed("z") == before

    def test_encoded_paths_match_positional_paths(self):
        blob = SeedHasher.encode("md", 2400, 24, 1)
        tail = SeedHasher.encode("phase-3")
        base = SeedHasher(DEFAULT_SEED, "plugin", "PowerPlugin")
        expected = derive_seed(DEFAULT_SEED, *self.KEY)
        assert base.seed_encoded(blob + tail) == expected
        assert base.child_encoded(blob).seed("phase-3") == expected
        assert base.child_encoded(blob).seed_encoded(tail) == expected
        a = base.child_encoded(blob).rng_encoded(tail).normal(size=8)
        b = derive_rng(DEFAULT_SEED, *self.KEY).normal(size=8)
        assert np.array_equal(a, b)

    def test_encode_is_length_prefixed(self):
        # ("ab", "c") and ("a", "bc") must stay distinguishable.
        assert SeedHasher.encode("ab", "c") != SeedHasher.encode("a", "bc")


class TestSeedseqStateWords:
    """The batched SeedSequence expansion must match numpy bit for bit:
    the fast acquisition path seeds every PCG64 from these words."""

    EDGE_SEEDS = (0, 1, 2**31, 2**32 - 1, 2**32, 2**64 - 1)

    def test_matches_numpy_on_edge_seeds(self):
        words = seedseq_state_words(self.EDGE_SEEDS)
        for seed, row in zip(self.EDGE_SEEDS, words):
            expected = np.random.SeedSequence(seed).generate_state(
                4, np.uint64
            )
            assert np.array_equal(row, expected), seed

    def test_matches_numpy_on_derived_seeds(self):
        seeds = [
            derive_seed(DEFAULT_SEED, "plugin", name, i)
            for name in ("PowerPlugin", "ApapiPlugin")
            for i in range(64)
        ]
        words = seedseq_state_words(seeds)
        assert words.shape == (len(seeds), 4)
        assert words.dtype == np.uint64
        for seed, row in zip(seeds, words):
            expected = np.random.SeedSequence(seed).generate_state(
                4, np.uint64
            )
            assert np.array_equal(row, expected), seed

    def test_empty_batch(self):
        assert seedseq_state_words([]).shape == (0, 4)

    def test_rng_from_state_words_replays_default_rng(self):
        seeds = [0, 1, derive_seed(3, "x"), 2**64 - 1]
        words = seedseq_state_words(seeds)
        for seed, row in zip(seeds, words):
            fast = rng_from_state_words(row)
            ref = np.random.default_rng(seed)
            assert np.array_equal(fast.normal(size=16), ref.normal(size=16))
            assert np.array_equal(
                fast.integers(0, 1000, size=16), ref.integers(0, 1000, size=16)
            )

    def test_shim_rejects_foreign_state_requests(self):
        words = seedseq_state_words([42])
        bitgen = rng_from_state_words(words[0]).bit_generator
        seed_seq = bitgen.seed_seq
        with pytest.raises(ValueError, match="4, uint64"):
            seed_seq.generate_state(2, np.uint64)
        with pytest.raises(ValueError, match="4, uint64"):
            seed_seq.generate_state(4, np.uint32)
