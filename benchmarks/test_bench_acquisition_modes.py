"""Ablation: multi-run campaigns vs time-division multiplexing.

The paper pays for 13 runs per experiment because "multiple runs of the
same application are required due to the hardware limitation on
simultaneous recording of multiple PAPI counters".  The cheap
alternative — PAPI-style time-division multiplexing within one run —
collects everything at once but extrapolates each counter from a 1/13
duty cycle.  This bench quantifies the trade.

Finding on the simulated machine: single-run multiplexing is not only
13× cheaper, it can *win* on model quality — per-counter extrapolation
noise is independent and averages out in the regression, while the
multi-run merge stitches counter columns from 13 *different* executions
whose coherent run-to-run jitter makes the merged feature vector
internally inconsistent.  (The paper's setup had no choice: PAPI
multiplexing interacts badly with Score-P's sampling; but the result
suggests the multi-run cost is a real accuracy liability, not just a
time sink.)
"""

import pytest

from benchmarks.conftest import report
from repro.acquisition import Campaign, CampaignPlan
from repro.core import render_table, scenario_cv_all, select_events
from repro.hardware import PAPER_FREQUENCIES_MHZ, Platform
from repro.workloads import all_workloads


def _study():
    platform = Platform()
    rows = []
    datasets = {}
    for mode in ("multi-run", "time-division"):
        plan = CampaignPlan(
            workloads=tuple(all_workloads()),
            frequencies_mhz=tuple(PAPER_FREQUENCIES_MHZ),
            multiplexing=mode,
        )
        campaign = Campaign(platform, plan)
        ds = campaign.run()
        datasets[mode] = ds
        sel = select_events(ds.filter(frequency_mhz=2400), 6)
        cv = scenario_cv_all(ds, sel.selected)
        rows.append(
            (
                mode,
                campaign.runs_per_experiment,
                ds.n_samples,
                ", ".join(sel.selected[:3]) + ", …",
                cv.mape,
            )
        )
    return rows


def test_bench_acquisition_modes(benchmark):
    rows = benchmark.pedantic(_study, rounds=1, iterations=1)
    report(
        "Ablation — acquisition mode: multi-run vs time-division multiplexing",
        render_table(
            ["mode", "runs/exp", "rows", "first counters", "CV MAPE %"],
            rows,
        ),
    )
    by_mode = {r[0]: r for r in rows}
    # 13x cheaper acquisition…
    assert by_mode["time-division"][1] == 1
    assert by_mode["multi-run"][1] == 13
    # …at comparable (here: even slightly better) model quality —
    # multiplexing noise is independent per counter, whereas the
    # multi-run merge mixes coherently-jittered executions.
    assert (
        0.4 * by_mode["multi-run"][4]
        < by_mode["time-division"][4]
        < 1.6 * by_mode["multi-run"][4]
    )
