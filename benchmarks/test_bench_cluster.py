"""Extension: cluster-scale estimation (the paper's exa-scale outlook).

Builds a simulated cluster with per-die manufacturing variation and
compares deploying one shared model against per-node calibration, for
node-level and aggregate power estimation.
"""

import pytest

from benchmarks.conftest import report
from repro.cluster import build_cluster, estimate_cluster_power
from repro.core import render_table
from repro.workloads import get_workload


def _study():
    cluster = build_cluster(8, seed=11)
    names = (
        "compute", "memory_read", "md", "busywait",
        "swim", "matmul", "nab", "sinus",
    )
    assignment = {
        node.hostname: get_workload(name)
        for node, name in zip(cluster, names)
    }
    training = [
        get_workload(n)
        for n in ("idle", "busywait", "compute", "memory_read", "matmul")
    ]
    counters = ("CA_SNP", "TOT_CYC", "PRF_DM", "STL_ICY")
    shared = estimate_cluster_power(
        cluster, assignment, counters=counters,
        training_workloads=training, strategy="shared",
    )
    per_node = estimate_cluster_power(
        cluster, assignment, counters=counters,
        training_workloads=training, strategy="per-node",
    )
    return shared, per_node


def test_bench_cluster_estimation(benchmark):
    shared, per_node = benchmark.pedantic(_study, rounds=1, iterations=1)
    rows = [
        (
            s.hostname,
            s.workload,
            s.true_power_w,
            s.estimated_w,
            s.ape_percent,
        )
        for s in shared.nodes
    ]
    report(
        "Extension — cluster power estimation (8 nodes, shared model)",
        render_table(
            ["node", "workload", "true W", "est W", "APE %"], rows
        )
        + (
            f"\nshared:   total {shared.estimated_total_w:.0f} W vs "
            f"{shared.true_total_w:.0f} W "
            f"(error {shared.total_error_percent:.2f} %, "
            f"mean node APE {shared.mean_node_ape_percent:.2f} %)"
            f"\nper-node: total error {per_node.total_error_percent:.2f} %, "
            f"mean node APE {per_node.mean_node_ape_percent:.2f} %"
        ),
    )
    # Aggregation cancels per-node bias.
    assert shared.total_error_percent <= shared.mean_node_ape_percent + 1.0
    assert per_node.total_error_percent < 15.0
