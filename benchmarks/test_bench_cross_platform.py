"""Extension: cross-generation transfer (the paper's future work).

"To strengthen the general validity of the approach, more experiments
should be performed on different generations of x86 processors."

The bench trains Equation 1 on the simulated Haswell-EP node and
evaluates it on the simulated Skylake-SP node (and vice versa,
re-running the methodology natively there).  Expected shape: the
*methodology* transfers (native selection + fit works on both
machines) while the *coefficients* do not (cross-machine MAPE is many
times the native CV MAPE).
"""

import pytest

from benchmarks.conftest import report
from repro.acquisition import run_campaign
from repro.core import PowerModel, render_table, scenario_cv_all, select_events
from repro.hardware import Platform, SKYLAKE_SP_CONFIG, SKYLAKE_SP_POWER_PARAMS
from repro.workloads import all_workloads


@pytest.fixture(scope="module")
def skylake_dataset():
    platform = Platform(SKYLAKE_SP_CONFIG, SKYLAKE_SP_POWER_PARAMS)
    return run_campaign(platform, all_workloads(), [1200, 1600, 2000, 2400])


def _transfer_study(full_dataset, skylake_dataset, selected_counters):
    rows = []
    # Native Haswell model.
    hw_model = PowerModel(selected_counters).fit(full_dataset)
    hw_cv = scenario_cv_all(full_dataset, selected_counters)
    rows.append(("haswell -> haswell (CV)", hw_cv.mape))
    # Haswell model applied to Skylake measurements.
    cross = hw_model.evaluate(skylake_dataset)
    rows.append(("haswell -> skylake", cross["mape"]))
    # Methodology re-run natively on Skylake.
    sk_sel = select_events(skylake_dataset.filter(frequency_mhz=2000), 6)
    sk_cv = scenario_cv_all(skylake_dataset, sk_sel.selected)
    rows.append(("skylake -> skylake (CV)", sk_cv.mape))
    sk_model = PowerModel(sk_sel.selected).fit(skylake_dataset)
    back = sk_model.evaluate(full_dataset)
    rows.append(("skylake -> haswell", back["mape"]))
    return rows, sk_sel.selected


def test_bench_cross_platform_transfer(
    benchmark, full_dataset, selected_counters, skylake_dataset
):
    rows, sk_counters = benchmark.pedantic(
        lambda: _transfer_study(full_dataset, skylake_dataset, selected_counters),
        rounds=1,
        iterations=1,
    )
    report(
        "Extension — cross-generation coefficient transfer",
        render_table(["direction", "MAPE %"], rows)
        + f"\nSkylake-native selection: {', '.join(sk_counters)}",
    )
    by_name = dict(rows)
    # Native modeling works on both generations…
    assert by_name["haswell -> haswell (CV)"] < 10.0
    assert by_name["skylake -> skylake (CV)"] < 12.0
    # …but coefficients do not transfer across generations.
    assert by_name["haswell -> skylake"] > 2.0 * by_name["haswell -> haswell (CV)"]
    assert by_name["skylake -> haswell"] > 2.0 * by_name["skylake -> skylake (CV)"]
