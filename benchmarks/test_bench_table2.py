"""Benchmark: regenerate Table II (10-fold cross validation)."""

from benchmarks.conftest import report
from repro.experiments import table2


def test_bench_table2_cross_validation(benchmark, full_dataset, selected_counters):
    result = benchmark.pedantic(
        lambda: table2.run(full_dataset, counters=selected_counters),
        rounds=1,
        iterations=1,
    )
    report("Table II — 10-fold cross validation (ours vs paper)",
           result.render())
    summary = result.summary()
    assert 5.0 < summary["MAPE"][2] < 9.5
    assert summary["R2"][2] > 0.94
