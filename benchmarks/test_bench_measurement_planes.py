"""Ablation: external 12 V sensors vs on-chip RAPL as training target.

The paper invests in calibrated external instrumentation; the cheap
alternative is training the model against RAPL.  This bench quantifies
what that choice costs: the RAPL-trained Equation 1 inherits RAPL's
scope (no VR losses, no board plane), so it under-estimates wall power
by a load-dependent margin even though its *relative* fit is fine.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.acquisition import PowerDataset
from repro.core import PowerModel, render_table
from repro.hardware import Platform
from repro.hardware.rapl import RaplMeter
from repro.stats.metrics import bias, mape
from repro.workloads import get_workload


def _rapl_dataset(platform: Platform, sensor_ds: PowerDataset) -> PowerDataset:
    """Clone a sensor-labelled dataset with RAPL-labelled power.

    Re-executes each experiment and swaps the power column for the
    RAPL reading of the matching phase."""
    meter = RaplMeter(platform)
    from repro.workloads import get_workload as _gw

    rapl_power = np.empty(sensor_ds.n_samples)
    cache = {}
    for i in range(sensor_ds.n_samples):
        key = (
            sensor_ds.workloads[i],
            int(sensor_ds.frequency_mhz[i]),
            int(sensor_ds.threads[i]),
        )
        if key not in cache:
            run = platform.execute(_gw(key[0]), key[1], key[2])
            cache[key] = {
                p.phase.name: meter.measure_phase(p) for p in run.phases
            }
        rapl_power[i] = cache[key][sensor_ds.phase_names[i]]
    return PowerDataset(
        counters=sensor_ds.counters,
        power_w=rapl_power,
        voltage_v=sensor_ds.voltage_v,
        frequency_mhz=sensor_ds.frequency_mhz,
        threads=sensor_ds.threads,
        workloads=sensor_ds.workloads,
        suites=sensor_ds.suites,
        phase_names=sensor_ds.phase_names,
    )


def test_bench_sensor_vs_rapl_training(
    benchmark, full_dataset, selected_counters
):
    platform = Platform()

    def study():
        rapl_ds = _rapl_dataset(platform, full_dataset)
        sensor_model = PowerModel(selected_counters).fit(full_dataset)
        rapl_model = PowerModel(selected_counters).fit(rapl_ds)
        wall = full_dataset.power_w
        rows = [
            (
                "sensor-trained vs wall",
                mape(wall, sensor_model.predict(full_dataset)),
                bias(wall, sensor_model.predict(full_dataset)),
            ),
            (
                "RAPL-trained vs wall",
                mape(wall, rapl_model.predict(full_dataset)),
                bias(wall, rapl_model.predict(full_dataset)),
            ),
            (
                "RAPL-trained vs RAPL",
                mape(rapl_ds.power_w, rapl_model.predict(rapl_ds)),
                bias(rapl_ds.power_w, rapl_model.predict(rapl_ds)),
            ),
        ]
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    report(
        "Ablation — training target: calibrated sensors vs RAPL",
        render_table(["model / reference", "MAPE %", "bias W"], rows),
    )
    by_name = {r[0]: r for r in rows}
    # RAPL-trained is self-consistent…
    assert by_name["RAPL-trained vs RAPL"][1] < 10.0
    # …but under-estimates wall power by the uncovered plane.
    assert by_name["RAPL-trained vs wall"][2] < -5.0
    assert (
        by_name["RAPL-trained vs wall"][1]
        > by_name["sensor-trained vs wall"][1]
    )
