"""Benchmark: regenerate Fig. 2 (R²/Adj.R² selection trajectory)."""

from benchmarks.conftest import report
from repro.experiments import fig2


def test_bench_fig2_trajectory(benchmark, selection_dataset):
    result = benchmark.pedantic(
        lambda: fig2.run(selection_dataset),
        rounds=1,
        iterations=1,
    )
    report("Fig. 2 — R2 / Adj.R2 vs selected counters (ours vs paper)",
           result.render())
    assert result.is_monotone()
    assert result.max_r2_adj_gap() < 0.01
