"""Ablation: how stable is the counter selection under training-set
perturbation?

Section IV discusses "the impact of selected training workloads on
counter selection" and demonstrates one extreme (synthetic-only,
Table IV).  This bench systematizes the question with a jackknife:
re-run Algorithm 1 with four workloads dropped at a time and measure
how often each counter survives, plus the set overlap with the
full-data selection.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core import render_series, render_table, select_events
from repro.seeding import derive_rng


def _jackknife(selection_dataset, n_rounds=8, n_drop=4):
    full = select_events(selection_dataset, 6).selected
    names = list(dict.fromkeys(selection_dataset.workloads))
    counts = {}
    overlaps = []
    for round_idx in range(n_rounds):
        rng = derive_rng(0x4A41434B, "round", round_idx)  # "JACK"
        dropped = set(
            rng.choice(names, size=n_drop, replace=False).tolist()
        )
        subset = selection_dataset.filter(
            workloads=[n for n in names if n not in dropped]
        )
        picked = select_events(subset, 6).selected
        overlaps.append(len(set(picked) & set(full)) / 6.0)
        for c in picked:
            counts[c] = counts.get(c, 0) + 1
    freq = {c: counts[c] / n_rounds for c in sorted(counts, key=counts.get, reverse=True)}
    return full, freq, overlaps


def test_bench_selection_stability(benchmark, selection_dataset):
    full, freq, overlaps = benchmark.pedantic(
        lambda: _jackknife(selection_dataset),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation — counter-selection stability (jackknife, drop 4 workloads)",
        render_series(freq, title="selection frequency per counter", unit="")
        + f"\nfull-data selection: {', '.join(full)}"
        + f"\nmean overlap with full selection: {np.mean(overlaps) * 100:.0f} % "
        f"(min {np.min(overlaps) * 100:.0f} %)",
    )
    # The first counter (the memory-traffic anchor) must be robust…
    assert freq.get(full[0], 0.0) >= 0.75
    # …while the tail of the selection is training-set dependent — the
    # paper's instability observation.
    assert np.mean(overlaps) < 1.0
    assert np.mean(overlaps) > 0.4
