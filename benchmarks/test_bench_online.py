"""Extension: online estimation throughput and fidelity.

Times the streaming estimator's per-sample update (the path a
power-management loop would call at ~10 Hz–1 kHz) and reports how well
the streamed estimate tracks the sensors over a phase-structured run.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core import OnlineEstimator, PowerModel, estimate_run
from repro.hardware import Platform
from repro.workloads import get_workload


def test_bench_online_update_rate(benchmark, full_dataset, selected_counters):
    """Single streaming update — must be microseconds, not millis."""
    fitted = PowerModel(selected_counters).fit(full_dataset)
    estimator = OnlineEstimator(fitted)
    cycles = 2.4e9 * 0.1
    deltas = {
        c: float(full_dataset.column(c)[0]) * cycles
        for c in selected_counters
    }

    result = benchmark(
        lambda: estimator.update(
            deltas, interval_s=0.1, voltage_v=0.97, frequency_mhz=2400
        )
    )
    assert result.power_w > 0


def test_bench_online_timeline_fidelity(
    benchmark, full_dataset, selected_counters
):
    platform = Platform()
    fitted = PowerModel(selected_counters).fit(full_dataset)
    run = platform.execute(get_workload("mgrid331"), 2400, 24)

    timeline = benchmark.pedantic(
        lambda: estimate_run(platform, run, fitted, interval_s=0.5),
        rounds=1,
        iterations=1,
    )
    report(
        "Extension — online estimation vs sensors (mgrid331, 0.5 s cadence)",
        f"samples: {timeline.times_s.size}\n"
        f"streamed MAPE vs sensors: {timeline.mape():.2f} %\n"
        f"tracks phase transitions: {timeline.tracks_phase_changes()}\n"
        f"measured range: {timeline.measured_w.min():.1f} - "
        f"{timeline.measured_w.max():.1f} W",
    )
    assert timeline.mape() < 15.0
    assert timeline.times_s.size > 50
