"""Batched acquisition kernel benchmark → ``BENCH_acquisition.json``.

Records the scalar-reference vs fastsim wall time of a Table-I-shaped
campaign (every registered workload, one frequency, default thread
counts, the full counter list multiplexed across event-set runs) and
asserts the ISSUE-10 acceptance gate: the batched kernel + phase-state
memo + shared-grid tracer must clear ≥3× campaign throughput over the
scalar path, while producing a byte-identical dataset.

The scalar leg (``REPRO_FASTSIM=0``) replays the pre-vectorization
acquisition loop — one ``evaluate``/``compute_power`` call per phase
per run, one sampled grid per metric stream — so the ``before_*`` /
``after_*`` rows keep the optimization's trajectory measurable in CI,
the same before/after contract ``BENCH_parallel.json`` records for the
arena.

Plain pytest is enough (no pytest-benchmark fixture): CI runs this
file directly and uploads the JSON artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.acquisition import Campaign, CampaignPlan
from repro.hardware import Platform
from repro.hardware.fastsim import FASTSIM_ENV
from repro.io.atomic import atomic_write_json
from repro.workloads.registry import all_workloads

from .conftest import report

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_acquisition.json"

#: The acceptance gate: fast-path campaign throughput over scalar.
MIN_SPEEDUP = 3.0

#: Repetitions per leg; min-of-N with a CPU-time clock keeps the gate
#: stable on hosts whose wall clock wobbles under frequency scaling.
REPS = 3


def table1_plan() -> CampaignPlan:
    """The Table-I acquisition shape: all workloads at one frequency,
    default thread counts, full counter list (multi-run mode)."""
    return CampaignPlan(
        workloads=tuple(all_workloads()),
        frequencies_mhz=(2400,),
    )


def run_table1(platform: Platform):
    return Campaign(platform, table1_plan()).run()


def best_of(reps: int):
    """Minimum CPU time over ``reps`` fresh-platform campaign runs.

    ``time.process_time`` ignores scheduler preemption and sleeps;
    min-of-N discards reps that caught a GC pause or a thermal dip.
    Every rep builds its own ``Platform`` so caches never leak across
    repetitions — each measurement is a cold campaign.
    """
    best_s = float("inf")
    dataset = platform = None
    for _ in range(reps):
        platform = Platform()
        t0 = time.process_time()
        dataset = run_table1(platform)
        elapsed = time.process_time() - t0
        best_s = min(best_s, elapsed)
    return best_s, dataset, platform


def test_bench_acquisition_kernel():
    n_cells = len(Campaign(Platform(), table1_plan()).cells())

    # -- before: the scalar reference path (REPRO_FASTSIM=0) ------------
    os.environ[FASTSIM_ENV] = "0"
    try:
        scalar_s, scalar_ds, _ = best_of(REPS)
    finally:
        del os.environ[FASTSIM_ENV]

    # -- after: batched kernel + phase-state memo + shared-grid tracer --
    fast_s, fast_ds, fast_platform = best_of(REPS)

    # Determinism first, speed second: the datasets must be byte-equal.
    assert fast_ds.counter_names == scalar_ds.counter_names
    assert fast_ds.workloads == scalar_ds.workloads
    assert np.array_equal(fast_ds.counters, scalar_ds.counters, equal_nan=True)
    assert np.array_equal(fast_ds.power_w, scalar_ds.power_w)
    assert np.array_equal(fast_ds.voltage_v, scalar_ds.voltage_v)

    speedup = scalar_s / fast_s
    memo = fast_platform._phase_memo
    results = {
        "clock": f"process_time min of {REPS}",
        "campaign": {
            "shape": "table1: all workloads x (2400 MHz) x default threads",
            "n_cells": n_cells,
            "n_samples": fast_ds.n_samples,
            "scalar_s": round(scalar_s, 4),
            "fastsim_s": round(fast_s, 4),
            "before_cells_per_s": round(n_cells / scalar_s, 1),
            "after_cells_per_s": round(n_cells / fast_s, 1),
            "speedup": round(speedup, 2),
            "memo_hits": memo.hits,
            "memo_misses": memo.misses,
        },
        "trajectory": {
            "note": (
                "scalar_s replays the pre-vectorization loop "
                "(REPRO_FASTSIM=0, per-phase evaluate/compute_power, "
                "per-stream sampling grids); fastsim_s is the same "
                "campaign through the batched kernel, the cross-run "
                "phase-state memo and the shared-grid tracer"
            ),
            "before_cells_per_s": round(n_cells / scalar_s, 1),
            "after_cells_per_s": round(n_cells / fast_s, 1),
            "speedup_x": round(speedup, 2),
        },
    }

    atomic_write_json(OUT_PATH, results)
    report("BENCH_acquisition", json.dumps(results, indent=2))

    # Acceptance gate: the batched kernel clears 3x campaign throughput.
    assert speedup >= MIN_SPEEDUP, results["campaign"]
