"""Ablation: how many counters does the model actually need?

The paper fixes #Events = 6 by judgement.  This bench sweeps the
budget from 1 to 10 and reports the selection-frequency fit and the
cross-DVFS CV MAPE at each size — showing the knee the paper's choice
sits on, and that more counters eventually buy nothing (or cost
stability).
"""

import numpy as np

from benchmarks.conftest import report
from repro.core import render_table, scenario_cv_all, select_events


def _study(selection_dataset, full_dataset, max_events=10):
    extended = select_events(selection_dataset, max_events)
    rows = []
    for k in range(1, max_events + 1):
        counters = extended.selected[:k]
        cv = scenario_cv_all(full_dataset, counters)
        step = extended.steps[k - 1]
        rows.append(
            (
                k,
                step.counter,
                step.rsquared,
                step.mean_vif,
                cv.mape,
            )
        )
    return rows


def test_bench_counter_budget(benchmark, selection_dataset, full_dataset):
    rows = benchmark.pedantic(
        lambda: _study(selection_dataset, full_dataset),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation — model quality vs counter budget (#Events)",
        render_table(
            ["#", "adds", "R2@2400", "mean VIF", "CV MAPE %"], rows
        ),
    )
    mapes = [r[4] for r in rows]
    # More counters help a lot early…
    assert mapes[3] < mapes[0]
    # …but the returns flatten: the last four counters together move
    # MAPE by less than the first three did.
    early_gain = mapes[0] - mapes[2]
    late_gain = mapes[5] - mapes[9]
    assert late_gain < early_gain
