"""Reproduce the paper's ARM-vs-x86 accuracy comparison.

Section IV-B: "Compared to the implementation on ARM, which has a MAPE
of 2.8 % and 3.8 %, our results on Intel with the comparable scenario 3
turn out to be less accurate (7.54 %)."

The identical pipeline (acquisition → Algorithm 1 → Equation 1 →
10-fold CV) runs on the simulated Cortex-A15 board and on the simulated
Haswell-EP node; the accuracy ordering and rough ratio must match the
paper's observation, for the paper's reason (less unobserved
power-relevant state on the simple RISC core).
"""

import pytest

from benchmarks.conftest import report
from repro.acquisition import run_campaign
from repro.core import render_table, scenario_cv_all, select_events
from repro.experiments.paper_values import PAPER_ARM_MAPE, PAPER_CV_MAPE
from repro.hardware import CORTEX_A15_CONFIG, CORTEX_A15_POWER_PARAMS, Platform
from repro.workloads import all_workloads


@pytest.fixture(scope="module")
def arm_dataset():
    # Sensor noise floor scaled to the watt-level board.
    platform = Platform(
        CORTEX_A15_CONFIG, CORTEX_A15_POWER_PARAMS, power_offset_sigma_w=0.05
    )
    return run_campaign(
        platform,
        all_workloads(),
        [600, 1000, 1400, 1800],
        thread_counts=[1, 2, 4],
    )


def test_bench_arm_vs_x86_accuracy(
    benchmark, arm_dataset, full_dataset, selected_counters
):
    def run_comparison():
        arm_sel = select_events(arm_dataset.filter(frequency_mhz=1400), 6)
        arm_cv = scenario_cv_all(arm_dataset, arm_sel.selected)
        x86_cv = scenario_cv_all(full_dataset, selected_counters)
        return arm_sel, arm_cv, x86_cv

    arm_sel, arm_cv, x86_cv = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    rows = [
        ("ARM Cortex-A15 (ours)", arm_cv.mape),
        ("ARM (Walker et al., paper)", PAPER_ARM_MAPE[0]),
        ("ARM (Walker et al., paper)", PAPER_ARM_MAPE[1]),
        ("x86 Haswell-EP (ours)", x86_cv.mape),
        ("x86 Haswell-EP (paper)", PAPER_CV_MAPE),
    ]
    report(
        "ARM vs x86 — same methodology, different architectures",
        render_table(["platform", "CV MAPE %"], rows)
        + f"\nARM-selected counters: {', '.join(arm_sel.selected)}",
    )
    # The paper's ordering: ARM clearly more accurate than x86.
    assert arm_cv.mape < 0.7 * x86_cv.mape
    # And in the paper's ARM band (2.8-3.8 %), loosely.
    assert 1.5 < arm_cv.mape < 5.5
