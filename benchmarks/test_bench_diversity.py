"""Ablation: how much training-set diversity is enough?

The paper's central stability finding is that the hand-written
synthetic kernels are "not diverse enough to create a stable model that
can be applied to more realistic benchmarks".  This bench quantifies
the claim with the randomized workload generator: train Equation 1 on
N generated workloads (narrow and wide characterization spaces) and
validate on the SPEC OMP2012 simulation.
"""

import pytest

from benchmarks.conftest import report
from repro.acquisition import run_campaign
from repro.core import PowerModel, render_table
from repro.hardware import Platform
from repro.workloads import DEFAULT_SPACE, WIDE_SPACE, generate_workloads


def _diversity_study(full_dataset, selected_counters):
    platform = Platform()
    spec = full_dataset.filter(suite="spec_omp2012")
    roco = full_dataset.filter(suite="roco2")
    rows = []
    baseline = PowerModel(selected_counters).fit(roco)
    rows.append(
        ("roco2 kernels (10)", baseline.evaluate(spec)["mape"])
    )
    for label, space, n in (
        ("generated narrow (8)", DEFAULT_SPACE, 8),
        ("generated narrow (24)", DEFAULT_SPACE, 24),
        ("generated wide (24)", WIDE_SPACE, 24),
    ):
        workloads = generate_workloads(
            n, space=space, seed=1234, thread_counts=(1, 8, 24)
        )
        train = run_campaign(platform, workloads, [1200, 2000, 2600])
        fitted = PowerModel(selected_counters).fit(train)
        rows.append((label, fitted.evaluate(spec)["mape"]))
    return rows


def test_bench_training_diversity(benchmark, full_dataset, selected_counters):
    rows = benchmark.pedantic(
        lambda: _diversity_study(full_dataset, selected_counters),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation — synthetic training diversity vs SPEC validation MAPE",
        render_table(["training set", "MAPE on SPEC %"], rows),
    )
    by_name = dict(rows)
    # More random workloads beat fewer…
    assert by_name["generated narrow (24)"] <= by_name["generated narrow (8)"] * 1.2
    # …and covering the latent dimensions (wide space) helps further,
    # confirming the paper's diversity conclusion.
    assert by_name["generated wide (24)"] < by_name["roco2 kernels (10)"]
