"""Benchmark: regenerate Fig. 3 (per-workload MAPE across DVFS)."""

from benchmarks.conftest import report
from repro.experiments import fig3


def test_bench_fig3_per_workload_mape(benchmark, full_dataset, selected_counters):
    result = benchmark.pedantic(
        lambda: fig3.run(full_dataset, counters=selected_counters),
        rounds=1,
        iterations=1,
    )
    report("Fig. 3 — per-workload MAPE across DVFS states (ours vs paper)",
           result.render())
    _, worst = result.worst()
    _, best = result.best()
    assert worst > 3.0 * best
