"""Benchmark: regenerate Table IV (synthetic-only counter selection)."""

from benchmarks.conftest import report
from repro.experiments import table4


def test_bench_table4_synthetic_selection(benchmark, selection_dataset):
    result = benchmark.pedantic(
        lambda: table4.run(selection_dataset),
        rounds=1,
        iterations=1,
    )
    report("Table IV — counters selected on synthetic workloads (ours vs paper)",
           result.render())
    assert result.differs_from_all_workloads()
