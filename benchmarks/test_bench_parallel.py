"""Parallel execution layer benchmark → ``BENCH_parallel.json``.

Records the serial vs 2- vs 4-worker wall time of the three fan-out
sites (campaign cells, greedy selection, k-fold CV) plus the asserted
acceptance gate: a latency-bound campaign must reach ≥1.5× at 4
workers.

The campaign benchmark uses a platform whose ``execute`` dwells like a
real acquisition run (a simulated run on real hardware blocks on the
workload's wall time, not on CPU), so the thread backend's overlap is
measured honestly even on a single-core CI runner.  The selection and
CV rows are CPU-bound and recorded without a speedup assertion — on a
1-core box they legitimately show ~1×.

Plain pytest is enough (no pytest-benchmark fixture): CI runs this
file directly and uploads the JSON artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.acquisition import Campaign, CampaignPlan
from repro.core import select_events
from repro.experiments import data as expdata
from repro.hardware import COUNTER_NAMES, FIXED_COUNTERS, Platform
from repro.io.atomic import atomic_write_json
from repro.parallel import MONOTONIC_CLOCK
from repro.stats import cross_validate
from repro.workloads import get_workload

from .conftest import report

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

DWELL_S = 0.05
PROG = tuple(c for c in COUNTER_NAMES if c not in FIXED_COUNTERS)[:8]
EVENTS = tuple(FIXED_COUNTERS) + PROG


class DwellPlatform(Platform):
    """A platform whose runs take wall time, as real acquisition does.

    The simulator computes a run's samples in microseconds; real
    hardware blocks for the workload's duration.  A fixed dwell restores
    that latency-bound profile so overlap across cells is measurable.
    """

    def execute(self, *args, **kwargs):
        run = super().execute(*args, **kwargs)
        time.sleep(DWELL_S)
        return run


def bench_plan():
    return CampaignPlan(
        workloads=tuple(
            get_workload(n)
            for n in ("compute", "idle", "memory_read", "memory_write")
        ),
        frequencies_mhz=(2400,),
        events=EVENTS,
        thread_counts_override=(8,),
    )


def timed(fn):
    t0 = MONOTONIC_CLOCK()
    value = fn()
    return MONOTONIC_CLOCK() - t0, value


def run_campaign_with(backend, workers):
    campaign = Campaign(
        DwellPlatform(), bench_plan(), parallel=backend, max_workers=workers
    )
    elapsed, dataset = timed(campaign.run)
    return elapsed, dataset


def test_bench_parallel_layers():
    results = {"clock": "perf_counter", "dwell_s": DWELL_S}

    # -- campaign cells (latency-bound, thread backend) -----------------
    serial_s, reference = run_campaign_with("serial", 1)
    thread2_s, ds2 = run_campaign_with("thread", 2)
    thread4_s, ds4 = run_campaign_with("thread", 4)
    # Determinism first, speed second.
    for ds in (ds2, ds4):
        assert np.array_equal(ds.counters, reference.counters, equal_nan=True)
        assert np.array_equal(ds.power_w, reference.power_w)
    n_cells = len(Campaign(DwellPlatform(), bench_plan()).cells())
    results["campaign"] = {
        "n_cells": n_cells,
        "backend": "thread",
        "serial_s": round(serial_s, 4),
        "workers2_s": round(thread2_s, 4),
        "workers4_s": round(thread4_s, 4),
        "speedup_2": round(serial_s / thread2_s, 2),
        "speedup_4": round(serial_s / thread4_s, 2),
    }

    # -- greedy selection (CPU-bound, process backend) ------------------
    selection = expdata.selection_dataset()
    pool = tuple(selection.counter_names[:12])
    sel_serial_s, sel_ref = timed(
        lambda: select_events(selection, 3, candidates=pool, parallel="serial")
    )
    sel2_s, sel2 = timed(
        lambda: select_events(
            selection, 3, candidates=pool, parallel="process", max_workers=2
        )
    )
    sel4_s, sel4 = timed(
        lambda: select_events(
            selection, 3, candidates=pool, parallel="process", max_workers=4
        )
    )
    assert sel2.selected == sel_ref.selected == sel4.selected
    results["selection"] = {
        "n_candidates": len(pool),
        "n_events": 3,
        "backend": "process",
        "serial_s": round(sel_serial_s, 4),
        "workers2_s": round(sel2_s, 4),
        "workers4_s": round(sel4_s, 4),
        "speedup_2": round(sel_serial_s / sel2_s, 2),
        "speedup_4": round(sel_serial_s / sel4_s, 2),
    }

    # -- k-fold CV (CPU-bound, process backend) -------------------------
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2000, 8))
    y = 80 + x @ rng.normal(size=8) + rng.normal(size=2000)
    cv_serial_s, cv_ref = timed(
        lambda: cross_validate(y, x, n_splits=10, parallel="serial")
    )
    cv2_s, cv2 = timed(
        lambda: cross_validate(
            y, x, n_splits=10, parallel="process", max_workers=2
        )
    )
    cv4_s, cv4 = timed(
        lambda: cross_validate(
            y, x, n_splits=10, parallel="process", max_workers=4
        )
    )
    assert cv2.folds == cv_ref.folds == cv4.folds
    results["crossval"] = {
        "n_samples": 2000,
        "n_splits": 10,
        "backend": "process",
        "serial_s": round(cv_serial_s, 4),
        "workers2_s": round(cv2_s, 4),
        "workers4_s": round(cv4_s, 4),
        "speedup_2": round(cv_serial_s / cv2_s, 2),
        "speedup_4": round(cv_serial_s / cv4_s, 2),
    }

    atomic_write_json(OUT_PATH, results)
    report("BENCH_parallel", json.dumps(results, indent=2))

    # Acceptance gate: the latency-bound campaign overlaps cells.
    assert results["campaign"]["speedup_4"] >= 1.5, results["campaign"]
