"""Parallel execution layer benchmark → ``BENCH_parallel.json``.

Records the serial vs 2- vs 4-worker wall time of the three fan-out
sites (campaign cells, greedy selection, k-fold CV) and asserts the
acceptance gates: the latency-bound campaign must reach ≥1.5× at 4
workers, and process-backend selection and CV must reach ≥2× at 4
workers through the shared-memory arena.

Every stage is measured **latency-bound**, the profile of a real
acquisition/evaluation run: a fixed dwell per work item (a simulated
run on real hardware blocks on the workload's wall time; a real
candidate evaluation blocks on the fit, which one CI core cannot
overlap).  The dwell makes overlap measurable on a single-core runner,
so what the process rows actually grade is the dispatch machinery —
payload size, batching, reduce — not the box's core count.  That is
exactly what ISSUE 9 fixed: per-item pickled payloads produced the
0.11×/0.62× "speedups" of the pre-arena process backend, and the
``pickled_*`` rows (``REPRO_ARENA=0``) keep that before/after
trajectory measurable next to the arena rows.

Plain pytest is enough (no pytest-benchmark fixture): CI runs this
file directly and uploads the JSON artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.acquisition import Campaign, CampaignPlan, PowerDataset
from repro.core import select_events
from repro.hardware import COUNTER_NAMES, FIXED_COUNTERS, Platform
from repro.io.atomic import atomic_write_json
from repro.parallel import MONOTONIC_CLOCK, ProcessExecutor, shutdown_pools
from repro.parallel.arena import ARENA_ENV
from repro.stats import cross_validate
from repro.stats.ols import fit_ols
from repro.stats.selection_criteria import CRITERIA
from repro.workloads import get_workload

from .conftest import report

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

DWELL_S = 0.05
PROG = tuple(c for c in COUNTER_NAMES if c not in FIXED_COUNTERS)[:8]
EVENTS = tuple(FIXED_COUNTERS) + PROG

#: Per-work-item dwell of the latency-bound selection/CV stages.
EVAL_DWELL_S = 0.02
FOLD_DWELL_S = 0.03

#: Synthetic wide selection problem: enough candidates that the
#: small-task guard grants 4 workers (>= 16 items each), with a payload
#: big enough that per-item pickling visibly costs what it cost before
#: the arena.
N_ROWS = 8000
N_CANDIDATES = 72


class DwellPlatform(Platform):
    """A platform whose runs take wall time, as real acquisition does.

    The simulator computes a run's samples in microseconds; real
    hardware blocks for the workload's duration.  A fixed dwell restores
    that latency-bound profile so overlap across cells is measurable.
    """

    def execute(self, *args, **kwargs):
        run = super().execute(*args, **kwargs)
        time.sleep(DWELL_S)
        return run


def _dwell_r2(result):
    """``r2`` with the wall-time profile of a real candidate fit."""
    time.sleep(EVAL_DWELL_S)
    return result.rsquared


# Registered at import time: forked pool workers inherit the registry,
# so the criterion resolves on both sides of the fan-out.
CRITERIA["bench_dwell_r2"] = _dwell_r2


def dwell_fit(y, x):
    """Fold fit with the wall-time profile of a real per-fold fit."""
    time.sleep(FOLD_DWELL_S)
    return fit_ols(y, x, cov_type="HC3")


def bench_plan():
    return CampaignPlan(
        workloads=tuple(
            get_workload(n)
            for n in ("compute", "idle", "memory_read", "memory_write")
        ),
        frequencies_mhz=(2400,),
        events=EVENTS,
        thread_counts_override=(8,),
    )


def wide_selection_dataset():
    """A wide synthetic selection problem (``N_CANDIDATES`` counters)."""
    rng = np.random.default_rng(20170529)
    counters = rng.lognormal(sigma=0.6, size=(N_ROWS, N_CANDIDATES)) * 1e-2
    voltage = rng.uniform(0.9, 1.1, N_ROWS)
    frequency = np.full(N_ROWS, 2400.0)
    v2f = voltage * voltage * frequency
    weights = np.abs(rng.normal(size=6)) + 0.5
    power = (
        40.0
        + (counters[:, :6] @ weights) * v2f / 2400.0
        + rng.normal(scale=0.5, size=N_ROWS)
    )
    n = N_ROWS
    return PowerDataset(
        counters=counters,
        power_w=np.abs(power) + 1.0,
        voltage_v=voltage,
        frequency_mhz=frequency,
        threads=np.full(n, 8, dtype=np.int64),
        workloads=("bench",) * n,
        suites=("bench",) * n,
        phase_names=("phase",) * n,
        counter_names=tuple(f"bench_ev_{i:02d}" for i in range(N_CANDIDATES)),
    )


def timed(fn):
    t0 = MONOTONIC_CLOCK()
    value = fn()
    return MONOTONIC_CLOCK() - t0, value


def _pool_probe(i):
    return i


def warm_pool(workers):
    """Spin the cached pool up outside the timed region."""
    ProcessExecutor(workers).map(_pool_probe, range(workers))


def run_campaign_with(backend, workers):
    campaign = Campaign(
        DwellPlatform(), bench_plan(), parallel=backend, max_workers=workers
    )
    elapsed, dataset = timed(campaign.run)
    return elapsed, dataset


def selection_results_equal(a, b):
    return (
        a.selected == b.selected
        and a.warnings == b.warnings
        and [s.criterion_value for s in a.steps]
        == [s.criterion_value for s in b.steps]
    )


def test_bench_parallel_layers():
    results = {
        "clock": "perf_counter",
        "dwell_s": DWELL_S,
        "eval_dwell_s": EVAL_DWELL_S,
        "fold_dwell_s": FOLD_DWELL_S,
    }

    # -- campaign cells (latency-bound, thread backend) -----------------
    serial_s, reference = run_campaign_with("serial", 1)
    thread2_s, ds2 = run_campaign_with("thread", 2)
    thread4_s, ds4 = run_campaign_with("thread", 4)
    # Determinism first, speed second.
    for ds in (ds2, ds4):
        assert np.array_equal(ds.counters, reference.counters, equal_nan=True)
        assert np.array_equal(ds.power_w, reference.power_w)
    n_cells = len(Campaign(DwellPlatform(), bench_plan()).cells())
    results["campaign"] = {
        "n_cells": n_cells,
        "backend": "thread",
        "serial_s": round(serial_s, 4),
        "workers2_s": round(thread2_s, 4),
        "workers4_s": round(thread4_s, 4),
        "speedup_2": round(serial_s / thread2_s, 2),
        "speedup_4": round(serial_s / thread4_s, 2),
    }

    # -- greedy selection (latency-bound, process backend + arena) ------
    wide = wide_selection_dataset()
    sel_kwargs = dict(criterion="bench_dwell_r2", fast=False)
    sel_serial_s, sel_ref = timed(
        lambda: select_events(wide, 2, parallel="serial", **sel_kwargs)
    )
    warm_pool(2)
    sel2_s, sel2 = timed(
        lambda: select_events(
            wide, 2, parallel="process", max_workers=2, **sel_kwargs
        )
    )
    warm_pool(4)
    sel4_s, sel4 = timed(
        lambda: select_events(
            wide, 2, parallel="process", max_workers=4, **sel_kwargs
        )
    )
    # The before-arena trajectory: identical fan-out, pickled payloads,
    # per-item dispatch (the REPRO_ARENA=0 escape hatch).
    os.environ[ARENA_ENV] = "0"
    try:
        selp_s, selp = timed(
            lambda: select_events(
                wide, 2, parallel="process", max_workers=4, **sel_kwargs
            )
        )
    finally:
        del os.environ[ARENA_ENV]
    for other in (sel2, sel4, selp):
        assert selection_results_equal(other, sel_ref)
    results["selection"] = {
        "n_candidates": N_CANDIDATES,
        "n_rows": N_ROWS,
        "n_events": 2,
        "backend": "process",
        "serial_s": round(sel_serial_s, 4),
        "workers2_s": round(sel2_s, 4),
        "workers4_s": round(sel4_s, 4),
        "speedup_2": round(sel_serial_s / sel2_s, 2),
        "speedup_4": round(sel_serial_s / sel4_s, 2),
        "pickled_workers4_s": round(selp_s, 4),
        "pickled_speedup_4": round(sel_serial_s / selp_s, 2),
    }

    # -- k-fold CV (latency-bound, process backend + arena) -------------
    rng = np.random.default_rng(0)
    x = rng.normal(size=(20000, 8))
    y = 80 + x @ rng.normal(size=8) + rng.normal(size=20000)
    cv_kwargs = dict(n_splits=40, fit_fn=dwell_fit)
    cv_serial_s, cv_ref = timed(
        lambda: cross_validate(y, x, parallel="serial", **cv_kwargs)
    )
    warm_pool(2)
    cv2_s, cv2 = timed(
        lambda: cross_validate(
            y, x, parallel="process", max_workers=2, **cv_kwargs
        )
    )
    warm_pool(4)
    cv4_s, cv4 = timed(
        lambda: cross_validate(
            y, x, parallel="process", max_workers=4, **cv_kwargs
        )
    )
    os.environ[ARENA_ENV] = "0"
    try:
        cvp_s, cvp = timed(
            lambda: cross_validate(
                y, x, parallel="process", max_workers=4, **cv_kwargs
            )
        )
    finally:
        del os.environ[ARENA_ENV]
    assert cv2.folds == cv_ref.folds
    assert cv4.folds == cv_ref.folds
    assert cvp.folds == cv_ref.folds
    results["crossval"] = {
        "n_samples": 20000,
        "n_splits": 40,
        "backend": "process",
        "serial_s": round(cv_serial_s, 4),
        "workers2_s": round(cv2_s, 4),
        "workers4_s": round(cv4_s, 4),
        "speedup_2": round(cv_serial_s / cv2_s, 2),
        "speedup_4": round(cv_serial_s / cv4_s, 2),
        "pickled_workers4_s": round(cvp_s, 4),
        "pickled_speedup_4": round(cv_serial_s / cvp_s, 2),
    }

    results["trajectory"] = {
        "note": (
            "pickled_* rows replay the pre-arena dispatch "
            "(REPRO_ARENA=0, per-item payloads); the arena rows are "
            "the same fan-out through shared-memory handles and "
            "batched candidates"
        ),
        "selection_before_x": results["selection"]["pickled_speedup_4"],
        "selection_after_x": results["selection"]["speedup_4"],
        "crossval_before_x": results["crossval"]["pickled_speedup_4"],
        "crossval_after_x": results["crossval"]["speedup_4"],
    }

    shutdown_pools()
    atomic_write_json(OUT_PATH, results)
    report("BENCH_parallel", json.dumps(results, indent=2))

    # Acceptance gates: the latency-bound campaign overlaps cells, and
    # the arena-backed process fan-outs clear 2x at 4 workers.
    assert results["campaign"]["speedup_4"] >= 1.5, results["campaign"]
    assert results["selection"]["speedup_4"] >= 2.0, results["selection"]
    assert results["crossval"]["speedup_4"] >= 2.0, results["crossval"]
