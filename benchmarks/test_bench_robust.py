"""Extension: robust (Huber-IRLS) fitting vs OLS under contamination.

Times `fit_robust` against `fit_ols` on the full campaign design and
reports the accuracy gap when a small fraction of the power readings is
corrupted by gross outliers — the sensor-glitch scenario the robust
estimation layer (DESIGN.md §10) exists for.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core import PowerModel
from repro.core.features import design_matrix
from repro.stats import fit_ols, fit_robust, mape


def _contaminated_power(dataset, fraction=0.05, magnitude_w=150.0, seed=99):
    rng = np.random.default_rng(seed)
    power_w = dataset.power_w.copy()
    n_bad = max(int(round(fraction * power_w.size)), 1)
    idx = rng.choice(power_w.size, size=n_bad, replace=False)
    power_w[idx] += magnitude_w
    return power_w, idx


def test_bench_robust_fit_cost(benchmark, full_dataset, selected_counters):
    """IRLS costs a handful of weighted OLS passes — report the factor."""
    x = design_matrix(full_dataset, selected_counters)
    y = full_dataset.power_w

    res = benchmark(lambda: fit_robust(y, x, intercept=False))
    assert res.diagnostics.converged


def test_bench_robust_vs_ols_under_outliers(
    benchmark, full_dataset, selected_counters
):
    """5% gross sensor outliers: compare clean-data MAPE of both fits."""
    x = design_matrix(full_dataset, selected_counters)
    y_clean = full_dataset.power_w
    y_bad, idx = _contaminated_power(full_dataset)
    clean_mask = np.ones(y_clean.size, dtype=bool)
    clean_mask[idx] = False

    robust = benchmark.pedantic(
        lambda: fit_robust(y_bad, x, intercept=False),
        rounds=1,
        iterations=1,
    )
    ols = fit_ols(y_bad, x, intercept=False)
    mape_robust = mape(y_clean[clean_mask], robust.predict(x)[clean_mask])
    mape_ols = mape(y_clean[clean_mask], ols.predict(x)[clean_mask])
    oracle = PowerModel(selected_counters).fit(full_dataset)

    report(
        "Extension — Huber-IRLS vs OLS with 5% gross power outliers",
        f"contaminated rows: {idx.size} of {y_clean.size} "
        f"(+150 W each)\n"
        f"clean-row MAPE, OLS on contaminated data:   {mape_ols:.2f} %\n"
        f"clean-row MAPE, Huber on contaminated data: {mape_robust:.2f} %\n"
        f"reference MAPE, OLS on clean data:          "
        f"{mape(y_clean, oracle.predict(full_dataset)):.2f} %\n"
        f"IRLS iterations: {robust.diagnostics.n_iter} "
        f"(converged: {robust.diagnostics.converged})",
    )
    assert mape_robust < mape_ols
