"""Benchmark: regenerate Fig. 4 (the four training scenarios)."""

from benchmarks.conftest import report
from repro.experiments import fig4


def test_bench_fig4_scenarios(benchmark, full_dataset, selected_counters):
    result = benchmark.pedantic(
        lambda: fig4.run(full_dataset, counters=selected_counters),
        rounds=1,
        iterations=1,
    )
    report("Fig. 4 — MAPE per training scenario (ours vs paper)",
           result.render())
    assert result.ordering_matches_paper()
    assert 1.5 < result.scenario2_over_cv_ratio() < 3.0
