"""Benchmark: regenerate Table III (PCC of selected counters)."""

from benchmarks.conftest import report
from repro.experiments import table3


def test_bench_table3_pcc(benchmark, selection_dataset, selected_counters):
    result = benchmark.pedantic(
        lambda: table3.run(selection_dataset, counters=selected_counters),
        rounds=1,
        iterations=1,
    )
    report("Table III — PCC of selected counters with power (ours vs paper)",
           result.render())
    assert result.first_counter_pcc() > 0.7
