"""Performance benchmarks of the pipeline itself.

These time the actual hot paths — the simulated acquisition campaign
(platform execution + tracing + phase profiling + merging) and the OLS
machinery the greedy selection hammers — so regressions in the
substrate's throughput are visible.
"""

import numpy as np

from repro.acquisition import run_campaign
from repro.core import PowerModel
from repro.hardware import Platform
from repro.stats import fit_ols, mean_vif
from repro.workloads import get_workload


def test_bench_campaign_throughput(benchmark):
    """One full experiment (13 multiplexed runs, traced and merged)."""
    platform = Platform()
    workload = get_workload("compute")

    def one_experiment():
        return run_campaign(platform, [workload], [2400], thread_counts=[24])

    ds = benchmark.pedantic(one_experiment, rounds=3, iterations=1)
    assert ds.n_samples == 1


def test_bench_equation1_fit(benchmark, full_dataset, selected_counters):
    """A single Equation 1 OLS fit with HC3 — the greedy inner loop."""
    model = PowerModel(selected_counters)
    fitted = benchmark(lambda: model.fit(full_dataset))
    assert fitted.rsquared > 0.9


def test_bench_hc3_ols(benchmark):
    """Raw OLS+HC3 on a selection-sized problem (650 x 10)."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(650, 10))
    y = x @ rng.normal(size=10) + rng.normal(size=650)
    res = benchmark(lambda: fit_ols(y, x, cov_type="HC3"))
    assert res.nobs == 650


def test_bench_mean_vif(benchmark, full_dataset, selected_counters):
    """The stage-2 VIF sweep on the selected rate columns."""
    matrix = full_dataset.counter_matrix(list(selected_counters))
    value = benchmark(lambda: mean_vif(matrix))
    assert value >= 1.0
