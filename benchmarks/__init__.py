"""Benchmark harness package (pytest-benchmark)."""
