"""Gram-cache fast-fit benchmark → ``BENCH_fastfit.json``.

Times Algorithm 1 selection (40 candidates × 6 steps, plain and
VIF-guarded) and the Table II cross validation with the fast-fit
kernels on and off, on the paper's own selection/full datasets.

Acceptance gates (the perf contract of DESIGN.md §12):

* serial greedy selection ≥ 5× faster with the Gram cache;
* the 10-fold CV scenario ≥ 2× faster with the fold downdate solver;
* the selected counter sequences and warnings are identical either
  way — a fast path that changes the selection is a bug, not a win.

Wall times are best-of-``REPS`` on the monotonic clock, which is noise
discipline enough for the coarse (≥2×/≥5×) gates on a shared CI box.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core import select_events
from repro.core.features import design_matrix
from repro.core.scenarios import cv_out_of_fold_predictions
from repro.io.atomic import atomic_write_json
from repro.parallel import MONOTONIC_CLOCK
from repro.stats import cross_validate

from .conftest import report

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastfit.json"

N_CANDIDATES = 40
N_EVENTS = 6
REPS = 5

SELECTION_SPEEDUP_GATE = 5.0
CV_SPEEDUP_GATE = 2.0


def best_of(fn, reps=REPS):
    best_s = float("inf")
    value = None
    for _ in range(reps):
        t0 = MONOTONIC_CLOCK()
        value = fn()
        best_s = min(best_s, MONOTONIC_CLOCK() - t0)
    return best_s, value


def assert_same_selection(slow, fast):
    assert slow.selected == fast.selected, (slow.selected, fast.selected)
    assert slow.warnings == fast.warnings
    for a, b in zip(slow.steps, fast.steps):
        assert a.counter == b.counter and a.warnings == b.warnings
        np.testing.assert_allclose(
            a.criterion_value, b.criterion_value, rtol=1e-9
        )


def test_bench_fastfit(selection_dataset, full_dataset):
    pool = tuple(selection_dataset.counter_names[:N_CANDIDATES])
    results = {
        "clock": "perf_counter",
        "reps": REPS,
        "gates": {
            "selection_speedup": SELECTION_SPEEDUP_GATE,
            "cv_speedup": CV_SPEEDUP_GATE,
        },
    }

    # -- greedy selection, plain and VIF-guarded ------------------------
    for label, kwargs in (
        ("selection", {}),
        ("selection_vif_guarded", {"max_vif": 5.0}),
    ):
        slow_s, slow = best_of(
            lambda kw=kwargs: select_events(
                selection_dataset, N_EVENTS, candidates=pool,
                fast=False, **kw,
            )
        )
        fast_s, fast = best_of(
            lambda kw=kwargs: select_events(
                selection_dataset, N_EVENTS, candidates=pool,
                fast=True, **kw,
            )
        )
        assert_same_selection(slow, fast)
        results[label] = {
            "n_candidates": N_CANDIDATES,
            "n_events": N_EVENTS,
            "selected": list(fast.selected),
            "slow_s": round(slow_s, 4),
            "fast_s": round(fast_s, 4),
            "speedup": round(slow_s / fast_s, 2),
        }

    # -- Table II cross validation --------------------------------------
    counters = tuple(results["selection"]["selected"])
    cv_slow_s, cv_slow = best_of(
        lambda: cv_out_of_fold_predictions(
            full_dataset, counters, fast=False
        )
    )
    cv_fast_s, cv_fast = best_of(
        lambda: cv_out_of_fold_predictions(
            full_dataset, counters, fast=True
        )
    )
    np.testing.assert_allclose(cv_slow[0], cv_fast[0], rtol=1e-9)
    np.testing.assert_allclose(cv_slow[1], cv_fast[1], rtol=1e-9)
    results["cv_scenario"] = {
        "n_samples": full_dataset.n_samples,
        "n_splits": 10,
        "slow_s": round(cv_slow_s, 4),
        "fast_s": round(cv_fast_s, 4),
        "speedup": round(cv_slow_s / cv_fast_s, 2),
    }

    x = design_matrix(full_dataset, list(counters))[:, :-1]
    y = full_dataset.power_w
    raw_slow_s, raw_slow = best_of(
        lambda: cross_validate(y, x, fast=False)
    )
    raw_fast_s, raw_fast = best_of(
        lambda: cross_validate(y, x, fast=True)
    )
    for a, b in zip(raw_slow.folds, raw_fast.folds):
        np.testing.assert_allclose(
            [a.rsquared, a.rsquared_adj, a.mape],
            [b.rsquared, b.rsquared_adj, b.mape],
            rtol=1e-9,
        )
    results["cv_cross_validate"] = {
        "n_samples": int(y.size),
        "n_splits": 10,
        "slow_s": round(raw_slow_s, 4),
        "fast_s": round(raw_fast_s, 4),
        "speedup": round(raw_slow_s / raw_fast_s, 2),
    }

    atomic_write_json(OUT_PATH, results)
    report("BENCH_fastfit", json.dumps(results, indent=2))

    # Acceptance gates.
    assert results["selection"]["speedup"] >= SELECTION_SPEEDUP_GATE, (
        results["selection"]
    )
    assert results["cv_scenario"]["speedup"] >= CV_SPEEDUP_GATE, (
        results["cv_scenario"]
    )
