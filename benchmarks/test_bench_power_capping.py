"""Extension: model-driven power capping (the motivation, closed-loop).

Sweeps the power cap and reports how much performance (frequency) the
governor retains and how well it holds the cap on a heavy workload —
the "balance performance and power consumption" use case the paper's
introduction motivates PMC models with.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core import PowerModel, render_table
from repro.core.governor import govern_workload
from repro.hardware import Platform
from repro.workloads import get_workload


def _sweep(full_dataset, selected_counters):
    platform = Platform()
    fitted = PowerModel(selected_counters).fit(full_dataset)
    workload = get_workload("compute")
    uncapped = govern_workload(
        platform, workload, 24, fitted, cap_w=10_000.0
    )
    rows = [
        (
            "uncapped",
            uncapped.mean_frequency_mhz(),
            float(uncapped.true_power_w.mean()),
            0.0,
        )
    ]
    for cap in (200.0, 170.0, 140.0, 110.0):
        tl = govern_workload(platform, workload, 24, fitted, cap_w=cap)
        rows.append(
            (
                f"cap {cap:.0f} W",
                tl.mean_frequency_mhz(),
                float(tl.true_power_w[1:].mean()),
                tl.violation_fraction(tolerance_w=5.0),
            )
        )
    return rows


def test_bench_power_capping(benchmark, full_dataset, selected_counters):
    rows = benchmark.pedantic(
        lambda: _sweep(full_dataset, selected_counters),
        rounds=1,
        iterations=1,
    )
    report(
        "Extension — model-driven power capping (compute, 24 threads)",
        render_table(
            ["cap", "mean f [MHz]", "mean power [W]", "violations"],
            rows,
        ),
    )
    freqs = [r[1] for r in rows]
    powers = [r[2] for r in rows]
    # Tighter caps: monotonically lower frequency and power.
    assert all(b <= a + 1e-9 for a, b in zip(freqs, freqs[1:]))
    assert all(b <= a + 2.0 for a, b in zip(powers, powers[1:]))
    # Caps mostly held (steady state).
    assert all(r[3] < 0.25 for r in rows[1:])
