"""Fleet serving benchmark → ``BENCH_serve.json``.

Three measurements:

* **batched vs single-stream throughput** — node-steps/sec of one
  vectorized ``FleetEstimator.step_batch`` over a 10k-node fleet
  against the serial loop of per-node ``OnlineEstimator.step`` calls
  it is bit-identical to.  The gate is the tentpole's reason to exist:
  batched must be at least 5x serial;
* **tick latency** — p50/p99 wall latency of a full-fleet batched
  step over repeated ticks;
* **overload shedding** — a 2x burst against a fleet-sized bounded
  queue under ``shed-oldest``: depth must never exceed the cap and
  every shed sample must be counted.

Plain pytest (no pytest-benchmark fixture): CI runs this file directly
and uploads the JSON artifact.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.model import FittedPowerModel
from repro.core.online import OnlineEstimator, PowerEnvelope
from repro.io.atomic import atomic_write_json
from repro.parallel import MONOTONIC_CLOCK
from repro.serve import FleetEstimator, FleetService, NodeSample, make_batch
from repro.stats.ols import OLSResult

from .conftest import report

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

COUNTERS = ("instructions", "cache-misses", "branches")
N_NODES = 10_000
ESTIMATOR_KW = dict(
    smoothing=0.5,
    envelope=PowerEnvelope(5.0, 150.0),
    breaker_threshold=3,
    recovery_threshold=2,
    drift_window=20,
    drift_tolerance=0.5,
)


def synthetic_model():
    names = tuple(f"alpha:{c}" for c in COUNTERS) + (
        "beta:V2f", "gamma:V", "delta:Z",
    )
    params = np.array([8.0, 25.0, 3.5, 12.0, 4.0, 18.0])
    k = len(params)
    ols = OLSResult(
        params=params, bse=np.ones(k), cov_params=np.eye(k),
        rsquared=0.99, rsquared_adj=0.99, nobs=100, df_model=k - 1,
        df_resid=100 - k, cov_type="HC3", fitted_values=np.zeros(100),
        residuals=np.zeros(100), exog_names=names, has_intercept=False,
    )
    return FittedPowerModel(counters=COUNTERS, ols=ols, cov_type="HC3")


def tick_samples(node_ids, tick, rng):
    return [
        NodeSample(
            node_id=nid,
            counter_deltas={
                c: float(rng.uniform(0.0, 2e7)) for c in COUNTERS
            },
            interval_s=0.5,
            voltage_v=float(rng.uniform(0.9, 1.2)),
            frequency_mhz=float(rng.uniform(1200.0, 2600.0)),
            time_s=0.5 * (tick + 1),
        )
        for nid in node_ids
    ]


def test_bench_serve():
    model = synthetic_model()
    node_ids = [f"node-{i:05d}" for i in range(N_NODES)]
    results = {"clock": "perf_counter", "n_nodes": N_NODES}

    # Pre-generate identical streams so timing measures stepping only.
    # Tick 0 registers all 10k nodes (a one-time allocation on both
    # paths) and is timed separately; throughput is steady-state.
    rng = np.random.default_rng(20170529)
    ticks = [tick_samples(node_ids, t, rng) for t in range(6)]

    # -- single-stream baseline: the serial loop ------------------------
    serial = {nid: OnlineEstimator(model, **ESTIMATOR_KW) for nid in node_ids}

    def serial_tick(samples):
        for s in samples:
            serial[s.node_id].step(
                s.counter_deltas,
                interval_s=s.interval_s,
                voltage_v=s.voltage_v,
                frequency_mhz=s.frequency_mhz,
                time_s=s.time_s,
            )

    serial_tick(ticks[0])
    n_serial_ticks = 2
    t0 = MONOTONIC_CLOCK()
    for samples in ticks[1 : 1 + n_serial_ticks]:
        serial_tick(samples)
    serial_s = MONOTONIC_CLOCK() - t0
    serial_steps_per_s = n_serial_ticks * N_NODES / serial_s

    # -- batched: vectorized step_batch (conversion included) -----------
    fleet = FleetEstimator(model, **ESTIMATOR_KW)
    t0 = MONOTONIC_CLOCK()
    fleet.step_batch(make_batch(ticks[0], COUNTERS))
    registration_s = MONOTONIC_CLOCK() - t0
    latencies_s = []
    for samples in ticks[1:]:
        t0 = MONOTONIC_CLOCK()
        batch = make_batch(samples, COUNTERS)
        fleet.step_batch(batch)
        latencies_s.append(MONOTONIC_CLOCK() - t0)
    batched_s = sum(latencies_s)
    batched_steps_per_s = len(latencies_s) * N_NODES / batched_s

    speedup = batched_steps_per_s / serial_steps_per_s
    results["throughput"] = {
        "serial_ticks": n_serial_ticks,
        "serial_node_steps_per_s": round(serial_steps_per_s, 1),
        "batched_ticks": len(latencies_s),
        "batched_node_steps_per_s": round(batched_steps_per_s, 1),
        "registration_tick_ms": round(registration_s * 1e3, 3),
        "speedup": round(speedup, 2),
    }
    results["tick_latency"] = {
        "p50_ms": round(float(np.percentile(latencies_s, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(latencies_s, 99)) * 1e3, 3),
        "max_ms": round(float(np.max(latencies_s)) * 1e3, 3),
    }
    # The gate: vectorization must pay for itself at fleet scale.
    assert speedup >= 5.0, results["throughput"]

    # Spot-check identity held on this stream (first/last node).
    for nid in (node_ids[0], node_ids[-1]):
        probe = OnlineEstimator(model, **ESTIMATOR_KW)
        for samples in ticks:
            for s in samples:
                if s.node_id == nid:
                    probe.step(
                        s.counter_deltas,
                        interval_s=s.interval_s,
                        voltage_v=s.voltage_v,
                        frequency_mhz=s.frequency_mhz,
                        time_s=s.time_s,
                    )
        assert probe.drift_report() == fleet.drift_report(nid)

    # -- overload: 2x burst against a bounded queue ----------------------
    service = FleetService(
        model,
        envelope=ESTIMATOR_KW["envelope"],
        n_shards=8,
        queue_capacity=N_NODES,
        policy="shed-oldest",
        seed=7,
    )
    burst = ticks[0] + ticks[1]  # 2x the fleet in one submission
    t0 = MONOTONIC_CLOCK()
    service.submit(burst)
    outcome = service.process()
    burst_s = MONOTONIC_CLOCK() - t0
    stats = service.queue.stats()
    assert stats.max_depth <= stats.capacity
    assert stats.shed == len(burst) - N_NODES
    results["overload"] = {
        "burst_rows": len(burst),
        "queue_capacity": stats.capacity,
        "max_depth": stats.max_depth,
        "shed": stats.shed,
        "shed_fraction": round(stats.shed / len(burst), 4),
        "processed_rows": outcome.processed_rows,
        "burst_wall_s": round(burst_s, 4),
    }

    atomic_write_json(OUT_PATH, results)
    report(
        "serve: fleet estimation benchmark",
        "\n".join(
            [
                f"serial: {serial_steps_per_s:,.0f} node-steps/s, "
                f"batched: {batched_steps_per_s:,.0f} node-steps/s "
                f"({speedup:.1f}x)",
                f"tick latency p99: {results['tick_latency']['p99_ms']} ms "
                f"over {N_NODES:,} nodes",
                f"2x burst: shed {stats.shed} of {len(burst)} "
                f"(depth cap {stats.capacity} never exceeded)",
            ]
        ),
    )
