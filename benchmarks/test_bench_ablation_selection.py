"""Ablation: alternative selection criteria (the paper's future work).

Section VI: "The future work of this project will focus on analyzing
different statistical algorithms and heuristic criterions for selecting
PMC events".  This bench runs the greedy driver with each registered
criterion plus a VIF-constrained variant and compares the resulting
counter sets by cross-validated MAPE on the full campaign.
"""

from benchmarks.conftest import report
from repro.core import render_table, scenario_cv_all, select_events
from repro.stats.selection_criteria import CRITERIA


def _ablation(selection_dataset, full_dataset):
    rows = []
    for criterion in sorted(CRITERIA):
        sel = select_events(selection_dataset, 6, criterion=criterion)
        cv = scenario_cv_all(full_dataset, sel.selected)
        rows.append(
            (
                criterion,
                ", ".join(sel.selected),
                sel.steps[-1].rsquared,
                sel.steps[-1].mean_vif,
                cv.mape,
            )
        )
    sel = select_events(selection_dataset, 6, criterion="r2", max_vif=5.0)
    cv = scenario_cv_all(full_dataset, sel.selected)
    rows.append(
        (
            "r2+vif<=5",
            ", ".join(sel.selected),
            sel.steps[-1].rsquared,
            sel.steps[-1].mean_vif,
            cv.mape,
        )
    )
    # Embedded selection via the lasso path (no greedy wrapper).
    from repro.core import select_events_lasso

    sel = select_events_lasso(selection_dataset, 6)
    cv = scenario_cv_all(full_dataset, sel.selected)
    rows.append(
        (
            "lasso-path",
            ", ".join(sel.selected),
            sel.steps[-1].rsquared,
            sel.steps[-1].mean_vif,
            cv.mape,
        )
    )
    return rows


def test_bench_selection_criteria_ablation(
    benchmark, selection_dataset, full_dataset
):
    rows = benchmark.pedantic(
        lambda: _ablation(selection_dataset, full_dataset),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation — selection criterion vs resulting model quality",
        render_table(
            ["criterion", "selected counters", "R2@2400", "mean VIF", "CV MAPE %"],
            rows,
        ),
    )
    by_name = {r[0]: r for r in rows}
    # Every criterion must produce a healthy model.
    for name, row in by_name.items():
        assert row[4] < 12.0, f"criterion {name} produced a bad model"
    # The VIF-constrained variant must respect its bound.
    assert by_name["r2+vif<=5"][3] <= 5.0
