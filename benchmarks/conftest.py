"""Benchmark fixtures.

The benchmarks time the *analysis* stage of each artifact (selection,
cross validation, correlation …) on the shared cached campaign, and
print the regenerated table/figure next to the paper's published
values.  Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
reports inline.
"""

from __future__ import annotations

import pytest

from repro.experiments import data as expdata


@pytest.fixture(scope="session")
def full_dataset():
    return expdata.full_dataset()


@pytest.fixture(scope="session")
def selection_dataset():
    return expdata.selection_dataset()


@pytest.fixture(scope="session")
def selected_counters():
    return expdata.selected_counters()


def report(name: str, text: str) -> None:
    """Print a regenerated artifact under a clear banner."""
    print()
    print("=" * 72)
    print(name)
    print("=" * 72)
    print(text)
