"""Benchmark: regenerate Fig. 6 (PCC of all PAPI counters)."""

from benchmarks.conftest import report
from repro.experiments import fig6


def test_bench_fig6_all_counter_pcc(benchmark, selection_dataset, selected_counters):
    result = benchmark.pedantic(
        lambda: fig6.run(selection_dataset, counters=selected_counters),
        rounds=1,
        iterations=1,
    )
    report("Fig. 6 — PCC of all PAPI counters with power", result.render())
    assert len(result.pcc) == 54
    assert max(result.selected_rank_by_pcc().values()) > 6
