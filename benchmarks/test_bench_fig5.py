"""Benchmark: regenerate Fig. 5 (actual vs estimated power scatters)."""

from benchmarks.conftest import report
from repro.experiments import fig5


def test_bench_fig5_scatters(benchmark, full_dataset, selected_counters):
    result = benchmark.pedantic(
        lambda: fig5.run(full_dataset, counters=selected_counters),
        rounds=1,
        iterations=1,
    )
    report("Fig. 5 — actual vs estimated power (ours vs paper)",
           result.render())
    biased = result.systematic_bias_workloads()
    assert biased.get("md", 0.0) > 0.0 and biased.get("nab", 0.0) > 0.0
    assert result.heteroscedasticity_correlation() > 0.1
