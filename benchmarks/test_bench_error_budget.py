"""Error budget: which mechanism causes which error?  (Simulation-only.)

The paper can only report *that* its model reaches 7.54 % CV MAPE and
15.1 % on the synthetic→SPEC scenario; a simulated substrate can ask
*why*.  This bench re-runs the evaluation with individual error
mechanisms switched off in the ground truth, holding the counter set
fixed to the baseline selection so the comparison isolates the error
source, and reports both the CV MAPE and the scenario-2 MAPE.

Measured decomposition (asserted below):

* **CV error** is dominated by *model-form error* — the thermal
  feedback, bandwidth-saturation and issue-width nonlinearities that
  six linear counter terms cannot express.  Removing latents or
  measurement noise barely moves it.
* **Scenario-2 error** splits two ways: the latent efficiency shift
  between suites contributes a measurable share, but the larger part
  is *structural extrapolation* — SPEC workloads exercise counter-space
  regions (TLB walks, flushes, NUMA traffic, saturation regimes) that
  the roco2 training set never pins down, so the coefficients are
  wrong there even with every latent channel closed.  That is exactly
  the paper's conclusion: "only using a limited set of micro workloads
  is not sufficient […] Such limited workloads do not cover the vast
  range of states a complex modern architecture comprises."
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.acquisition import run_campaign
from repro.core import (
    render_table,
    scenario_cv_all,
    scenario_synthetic_to_spec,
    select_events,
)
from repro.hardware import PAPER_FREQUENCIES_MHZ, Platform
from repro.hardware.power import PowerModelParams
from repro.workloads import all_workloads


def _evaluate(platform, counters):
    ds = run_campaign(platform, all_workloads(), PAPER_FREQUENCIES_MHZ)
    cv = scenario_cv_all(ds, counters).mape
    s2 = scenario_synthetic_to_spec(ds, counters).mape
    return cv, s2


def _study(selected_counters):
    configs = [
        ("full simulation (baseline)", Platform()),
        (
            "- latent efficiency off",
            Platform(power_params=PowerModelParams(latent_sensitivity=0.0)),
        ),
        (
            "- measurement noise off",
            Platform(
                run_jitter_sigma=0.0,
                power_jitter_sigma=0.0,
                power_offset_sigma_w=0.0,
            ),
        ),
        (
            "- both off (model-form error only)",
            Platform(
                power_params=PowerModelParams(latent_sensitivity=0.0),
                run_jitter_sigma=0.0,
                power_jitter_sigma=0.0,
                power_offset_sigma_w=0.0,
            ),
        ),
    ]
    rows = []
    for label, platform in configs:
        cv, s2 = _evaluate(platform, selected_counters)
        rows.append((label, cv, s2))
    return rows


def test_bench_error_budget(benchmark, selected_counters):
    rows = benchmark.pedantic(
        lambda: _study(selected_counters), rounds=1, iterations=1
    )
    report(
        "Error budget — what causes the CV error vs the scenario-2 error?",
        render_table(
            ["configuration", "CV MAPE %", "scen2 MAPE %"], rows
        ),
    )
    by_name = {r[0]: (r[1], r[2]) for r in rows}
    base_cv, base_s2 = by_name["full simulation (baseline)"]
    nl_cv, nl_s2 = by_name["- latent efficiency off"]
    nn_cv, nn_s2 = by_name["- measurement noise off"]
    floor_cv, floor_s2 = by_name["- both off (model-form error only)"]

    # CV error: model-form dominated — removing latents or noise moves
    # it by far less than its absolute size.
    assert abs(base_cv - nl_cv) < 0.4 * base_cv
    assert abs(base_cv - nn_cv) < 0.4 * base_cv
    assert floor_cv > 0.6 * base_cv
    # Scenario 2: latents contribute measurably…
    assert nl_s2 < base_s2 - 1.0
    # …measurement noise does not…
    assert abs(nn_s2 - base_s2) < 1.0
    # …and the dominant share is structural extrapolation: even with
    # every stochastic channel closed, synthetic-only training remains
    # far worse than CV (the paper's coverage conclusion).
    assert floor_s2 > 1.5 * floor_cv
