"""Cluster scheduler benchmark → ``BENCH_sched.json``.

Three measurements:

* **placement scaling** — virtual-clock cells/sec of the placement
  core as the cluster grows (the poll loop itself runs in wall-time
  milliseconds, so the virtual makespan is the honest number);
* **resume cost vs shard count** — shard files actually read when a
  resume needs 4 of 64 checkpointed cells, for several shard counts
  (the point of sharding: reads scale with dirty cells, not campaign
  size);
* **acceptance** — at zero faults, a scheduled campaign on a 16-node
  cluster must match or beat the local 4-worker pool's cells/sec: the
  placement layer may add only virtual time, never wall time.

Plain pytest (no pytest-benchmark fixture): CI runs this file directly
and uploads the JSON artifact.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.acquisition import CampaignPlan, ResilientCampaign, RetryPolicy
from repro.acquisition.checkpoint import ShardedManifest, cell_id
from repro.cluster.nodes import build_cluster
from repro.hardware import COUNTER_NAMES, FIXED_COUNTERS, Platform
from repro.io.atomic import atomic_write_json
from repro.parallel import MONOTONIC_CLOCK
from repro.sched import ClusterScheduler, ScheduledCampaign
from repro.tracing.phases import PhaseProfile
from repro.workloads import get_workload

from .conftest import report

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sched.json"

DWELL_S = 0.05
PROG = tuple(c for c in COUNTER_NAMES if c not in FIXED_COUNTERS)[:8]
EVENTS = tuple(FIXED_COUNTERS) + PROG


class DwellPlatform(Platform):
    """Runs take wall time, as on real hardware (see bench_parallel)."""

    def execute(self, *args, **kwargs):
        run = super().execute(*args, **kwargs)
        time.sleep(DWELL_S)
        return run


def bench_plan():
    return CampaignPlan(
        workloads=tuple(
            get_workload(n)
            for n in ("compute", "idle", "memory_read", "memory_write")
        ),
        frequencies_mhz=(2400,),
        events=EVENTS,
        thread_counts_override=(8,),
    )


def timed(fn):
    t0 = MONOTONIC_CLOCK()
    value = fn()
    return MONOTONIC_CLOCK() - t0, value


def profile():
    return PhaseProfile(
        workload="compute", suite="synthetic", frequency_mhz=2400,
        threads=8, run_index=0, phase_name="main", start_s=0.0, end_s=1.0,
        active_threads=8, power_w=42.0, voltage_v=1.05,
        counter_rates_per_s={"TOT_INS": 1e9},
    )


def test_bench_sched(tmp_path):
    results = {"clock": "perf_counter", "dwell_s": DWELL_S}

    # -- placement scaling: virtual cells/sec vs node count -------------
    n_cells = 200
    costs = [1.0] * n_cells
    scaling = {}
    for n_nodes in (2, 4, 8, 16):
        nodes = build_cluster(n_nodes, slots_per_node=2)
        wall_s, trace = timed(lambda: ClusterScheduler(nodes, costs).schedule())
        scaling[str(n_nodes)] = {
            "virtual_makespan_s": round(trace.makespan_s, 3),
            "virtual_cells_per_s": round(n_cells / trace.makespan_s, 3),
            "placement_wall_s": round(wall_s, 4),
        }
    results["placement_scaling"] = scaling
    # Placement throughput must actually scale with the cluster.
    assert (
        scaling["16"]["virtual_cells_per_s"]
        > 4 * scaling["2"]["virtual_cells_per_s"]
    )

    # -- resume cost vs shard count --------------------------------------
    resume = {}
    dirty_cells = 4
    for n_shards in (1, 4, 16, 64):
        root = tmp_path / f"shards_{n_shards}"
        store = ShardedManifest(root, "bench", n_shards=n_shards)
        ids = [
            cell_id("compute", 2400, 8, i, ("TOT_INS",)) for i in range(64)
        ]
        for cid in ids:
            store.store(cid, [profile()])
        fresh = ShardedManifest(root, "bench", n_shards=n_shards)
        wall_s, _ = timed(lambda: [fresh.load(c) for c in ids[:dirty_cells]])
        resume[str(n_shards)] = {
            "stored_cells": len(ids),
            "dirty_cells": dirty_cells,
            "shard_reads": fresh.shard_reads,
            "resume_wall_s": round(wall_s, 4),
        }
    results["resume_cost"] = resume
    # Sharding bounds a resume by its dirty cells, not the store size.
    assert resume["64"]["shard_reads"] <= dirty_cells
    assert resume["1"]["shard_reads"] == 1  # one giant file every time

    # -- acceptance: scheduled vs local 4-worker pool, zero faults ------
    pool_s, pool_result = timed(
        ResilientCampaign(
            DwellPlatform(), bench_plan(), parallel="thread", max_workers=4
        ).run
    )
    sched_s, sched_result = timed(
        ScheduledCampaign(
            DwellPlatform(),
            bench_plan(),
            build_cluster(16),
            retry=RetryPolicy(max_attempts=4),
            parallel="thread",
            max_workers=8,
        ).run
    )
    assert np.array_equal(
        sched_result.dataset.power_w, pool_result.dataset.power_w
    )
    total = pool_result.report.total_cells
    pool_cps = total / pool_s
    sched_cps = total / sched_s
    results["acceptance"] = {
        "n_cells": total,
        "pool_workers": 4,
        "pool_s": round(pool_s, 4),
        "pool_cells_per_s": round(pool_cps, 3),
        "sched_nodes": 16,
        "sched_s": round(sched_s, 4),
        "sched_cells_per_s": round(sched_cps, 3),
        "sched_ge_pool": bool(sched_cps >= pool_cps),
    }
    # The 16-node cluster exposes more lanes than the 4-worker pool;
    # placement itself is virtual-time and adds only milliseconds.
    assert sched_cps >= pool_cps

    atomic_write_json(OUT_PATH, results)
    report(
        "sched: cluster scheduler benchmark",
        "\n".join(
            [
                f"placement 16 nodes: "
                f"{scaling['16']['virtual_cells_per_s']} cells/s (virtual), "
                f"{scaling['16']['placement_wall_s']} s wall",
                f"resume 4/64 cells at 64 shards: "
                f"{resume['64']['shard_reads']} shard reads",
                f"acceptance: sched {results['acceptance']['sched_cells_per_s']}"
                f" vs pool {results['acceptance']['pool_cells_per_s']} cells/s",
            ]
        ),
    )
