"""Benchmark: regenerate Table I (counter selection on all workloads).

Times Algorithm 1's greedy selection — the computational core of the
methodology: O(#candidates × #selected) Equation 1 fits plus the VIF
sweep per accepted counter.
"""

from benchmarks.conftest import report
from repro.experiments import table1


def test_bench_table1_selection(benchmark, selection_dataset):
    result = benchmark.pedantic(
        lambda: table1.run(selection_dataset),
        rounds=1,
        iterations=1,
    )
    report("Table I — selected performance counters (ours vs paper)",
           result.render())
    assert len(result.steps) == 6
    assert result.steps[-1].rsquared > 0.985
